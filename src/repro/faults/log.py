"""The append-only fault event log.

Every fault the injector applies (and every process failure it routes)
is recorded here with its simulated timestamp.  The log is the
subsystem's determinism contract: the same schedule under the same seed
must yield a **bit-identical** log, which :meth:`FaultLog.digest` makes
checkable in one comparison.  Serialization is canonical JSON lines
(sorted keys, `repr`-exact floats), so the digest is stable across
processes and platforms.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List

__all__ = ["FaultEvent", "FaultLog"]


@dataclass(frozen=True)
class FaultEvent:
    """One applied fault (or routed failure) at one simulated instant."""

    time: float
    kind: str
    target: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"time": self.time, "kind": self.kind, "target": self.target,
                "detail": dict(self.detail)}


class FaultLog:
    """Append-only record of everything the injector did.

    Events only ever append (never mutate, never reorder), so a log is a
    faithful trace of the fault plane's actions; tests and the chaos CLI
    compare logs via :meth:`digest`.
    """

    def __init__(self):
        self._events: List[FaultEvent] = []

    def append(self, time: float, kind: str, target: str,
               **detail: Any) -> FaultEvent:
        event = FaultEvent(time=time, kind=kind, target=target,
                           detail=detail)
        self._events.append(event)
        return event

    @property
    def events(self) -> tuple:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def kinds(self) -> Dict[str, int]:
        """Event counts by kind (for summaries and smoke assertions)."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def to_jsonl(self) -> str:
        """Canonical one-line-per-event JSON (sorted keys, exact floats)."""
        return "\n".join(
            json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
            for event in self._events)

    def digest(self) -> str:
        """SHA-256 over the canonical serialization -- the determinism
        fingerprint two same-seed runs must share."""
        return hashlib.sha256(self.to_jsonl().encode()).hexdigest()

    def __repr__(self) -> str:
        return f"<FaultLog {len(self._events)} events>"
