"""Named chaos scenarios: whole-system runs under injected faults.

Each scenario builds a fresh cluster from a seed, arms a
:class:`~repro.faults.injector.FaultInjector` with a schedule, drives a
probe workload through the cache while the faults land, and returns a
:class:`ChaosReport` -- the fault log, a metrics snapshot, and a small
summary.  Scenarios are pure functions of the seed: `python -m repro
chaos <name>` and the determinism tests both go through
:func:`run_scenario`.

The scenarios cover the §6 robustness matrix:

* ``spot-churn``   -- Poisson evictions + hard kills against a backed
  cache with retries and auto-recovery (migrate / re-populate path);
* ``spot-evict-programs`` -- notice-based evictions while dependent
  GETs run as one-RTT verb programs: live migration vs the CAS-guarded
  chase (zero lost acked writes, clean abort/fallback accounting);
* ``evict-primary`` -- hard-kill the primary of a 2-way
  :class:`~repro.core.replication.ReplicatedCache` (failover path);
* ``link-flap``    -- transient QP error storms the retry policy must
  ride out;
* ``slow-node``    -- a throttled server plus a fabric latency spike
  (degradation, not failure);
* ``conn-storm-rebalance`` -- a connection storm lands while a member
  kill forces an emergency rebalance: pooled sessions against the
  corpse must reclaim fast, the storm against survivors must complete,
  and no acknowledged write may be lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core import Slo
from repro.core.client import RetryPolicy
from repro.core.replication import ReplicatedCache
from repro.faults.injector import FaultInjector
from repro.faults.log import FaultLog
from repro.faults.spec import (
    FaultSchedule,
    LatencySpike,
    LinkDown,
    SlowNode,
    VmKill,
)
from repro.obs.metrics import MetricsRegistry
from repro.workloads.scenarios import build_cluster

__all__ = ["SCENARIOS", "ChaosReport", "churn_run", "run_scenario"]

REGION = 1 << 20
CAPACITY = 4 * REGION
SLO = Slo(max_latency=1e-3, min_throughput=1e5, record_size=512)
PROBE_BYTES = 64


@dataclass
class ChaosReport:
    """Everything one chaos run produced."""

    scenario: str
    seed: int
    log: FaultLog
    metrics: Dict[str, dict]
    summary: Dict[str, float]
    sim_now: float


class _ProbeStats:
    """Availability bookkeeping for a stream of probe reads.

    An *unavailability window* opens at the first failed probe after a
    success and closes at the next success -- the client-visible outage,
    which is what §6.2's migrate-vs-replicate trade is about.
    """

    def __init__(self, slo_latency_s: float):
        self.slo_latency_s = slo_latency_s
        self.probes = 0
        self.failures = 0
        self.violations = 0
        self.latencies: List[float] = []
        self.windows: List[float] = []
        self._down_since = None

    def record(self, now: float, result) -> None:
        self.probes += 1
        if result.ok:
            self.latencies.append(result.latency)
            if result.latency > self.slo_latency_s:
                self.violations += 1
            if self._down_since is not None:
                self.windows.append(now - self._down_since)
                self._down_since = None
        else:
            self.failures += 1
            self.violations += 1
            if self._down_since is None:
                self._down_since = now

    def close(self, now: float) -> None:
        if self._down_since is not None:
            self.windows.append(now - self._down_since)
            self._down_since = None

    def summary(self) -> Dict[str, float]:
        ordered = sorted(self.latencies)
        p99 = ordered[int(0.99 * (len(ordered) - 1))] if ordered else 0.0
        return {
            "probes": self.probes,
            "failed_probes": self.failures,
            "slo_violations": self.violations,
            "slo_violation_rate": (self.violations / self.probes
                                   if self.probes else 0.0),
            "unavailability_windows": len(self.windows),
            "unavailable_s": sum(self.windows),
            "max_unavailable_s": max(self.windows, default=0.0),
            "read_p99_s": p99,
        }


def _probe_loop(env, read_fn: Callable, stats: _ProbeStats, *,
                interval_s: float, until: float):
    while env.now < until:
        result = yield read_fn()
        stats.record(env.now, result)
        yield env.timeout(interval_s)
    stats.close(env.now)


def _finish(name: str, seed: int, harness, injector: FaultInjector,
            registry: MetricsRegistry, stats: _ProbeStats,
            extra_summary: Dict[str, float] = None) -> ChaosReport:
    summary = stats.summary()
    if extra_summary:
        summary.update(extra_summary)
    summary["faults_injected"] = float(len(injector.log))
    return ChaosReport(scenario=name, seed=seed, log=injector.log,
                       metrics=registry.snapshot(), summary=summary,
                       sim_now=harness.env.now)


def _backing(capacity: int) -> bytes:
    return bytes(range(256)) * (capacity // 256)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

def churn_run(seed: int, *, rate_per_s: float = 1.0,
              duration_s: float = 6.0, kill_fraction: float = 0.25,
              notice_s: float = 0.5, provisioning_delay_s: float = 0.25,
              probe_interval_s: float = 5e-3) -> ChaosReport:
    """Poisson spot churn against one backed cache (§6.2 repopulate).

    The parametric core of the ``spot-churn`` scenario: the availability
    ablation sweeps ``rate_per_s`` through it to trace SLO-violation
    rate and unavailability against fault intensity.
    """
    registry = MetricsRegistry()
    harness = build_cluster(seed=seed,
                            provisioning_delay_s=provisioning_delay_s,
                            metrics=registry)
    env = harness.env
    client = harness.redy_client("chaos-app")
    cache = client.create(
        CAPACITY, SLO, duration_s=3600.0,  # finite => spot VMs (§6.1)
        region_bytes=REGION, file=_backing(CAPACITY),
        retry_policy=RetryPolicy(max_attempts=4, attempt_timeout_s=50e-3),
        auto_recover=True)
    injector = FaultInjector(env, allocator=harness.allocator,
                             fabric=harness.fabric)
    injector.install_failure_hook()
    rng = harness.rngs.stream("faults")
    draw = lambda: FaultSchedule.poisson_evictions(  # noqa: E731
        rate_per_s=rate_per_s, duration_s=duration_s, rng=rng,
        start_at=0.5, notice_s=notice_s, kill_fraction=kill_fraction)
    schedule = draw()
    while not len(schedule):
        # A Poisson window can come up empty; redraw from the same
        # stream -- still a pure function of the seed -- so a chaos run
        # always injects something.
        schedule = draw()
    injector.arm(schedule, cache=cache)

    stats = _ProbeStats(SLO.max_latency)
    horizon = max(duration_s + 2.0, schedule.horizon + 2.0)
    env.process(_probe_loop(env, lambda: cache.read(4096, PROBE_BYTES),
                            stats, interval_s=probe_interval_s,
                            until=horizon),
                name="chaos-probe")
    env.run(until=horizon + 1.0)
    return _finish("spot-churn", seed, harness, injector, registry, stats,
                   {"churn_rate_per_s": rate_per_s,
                    "migrations": float(len(cache.migrations)),
                    "migration_failures": float(cache.migration_failures)})


def _spot_churn(seed: int) -> ChaosReport:
    """Poisson spot churn against one backed cache (§6.2 repopulate)."""
    return churn_run(seed)


def _spot_evict_programs(seed: int) -> ChaosReport:
    """Spot evictions under one-RTT verb programs (migration safety).

    Notice-based evictions only (no hard kills), so every region
    migrates with its data intact, against a cache running dependent
    GETs as remote-side verb programs.  Each probe writes a uniquely
    tagged record, swings a pointer word at it, then dependent-reads it
    back and verifies the payload byte for byte: a CAS-abort or revoked
    region mid-program must fall back to the classic two-hop path (or a
    client retry) transparently, and no acknowledged write may come
    back wrong or lost.  The report carries program/abort/fallback
    accounting plus the ``lost_acked_writes`` count the chaos test pins
    to zero.
    """
    import struct

    registry = MetricsRegistry()
    harness = build_cluster(seed=seed, provisioning_delay_s=0.25,
                            metrics=registry)
    env = harness.env
    client = harness.redy_client("chaos-programs-app")
    cache = client.create(
        CAPACITY, SLO, duration_s=3600.0, region_bytes=REGION,
        file=_backing(CAPACITY),
        retry_policy=RetryPolicy(max_attempts=4, attempt_timeout_s=50e-3),
        auto_recover=True, use_verb_programs=True)
    injector = FaultInjector(env, allocator=harness.allocator,
                             fabric=harness.fabric)
    injector.install_failure_hook()
    rng = harness.rngs.stream("faults")
    duration_s = 6.0
    draw = lambda: FaultSchedule.poisson_evictions(  # noqa: E731
        rate_per_s=1.0, duration_s=duration_s, rng=rng,
        start_at=0.5, notice_s=0.5, kill_fraction=0.0)
    schedule = draw()
    while not len(schedule):
        schedule = draw()
    injector.arm(schedule, cache=cache)

    record_bytes = 256
    n_regions = CAPACITY // REGION
    counters = {"acked": 0, "verified": 0, "lost": 0, "i": 0}

    def probe():
        """Write -> pointer swing -> dependent read-back, as one probe."""
        done = env.event()

        def body():
            index = counters["i"]
            counters["i"] += 1
            region = index % n_regions
            pointer_addr = region * REGION + 64
            record_addr = region * REGION + 4096
            payload = bytes([(index + j) % 251 for j in range(record_bytes)])
            started = env.now
            wrote = yield cache.write(record_addr, payload)
            if wrote.ok:
                # The pointer word holds the record's *region-local*
                # offset (what the remote chase dereferences).
                swung = yield cache.write(pointer_addr,
                                          struct.pack("<Q", 4096))
                wrote = swung if not swung.ok else wrote
            if not wrote.ok:
                # Never acked: not a lost write, just an unavailable probe.
                done.succeed(type(wrote)(ok=False, error=wrote.error,
                                         latency=env.now - started))
                return
            counters["acked"] += 1
            read = yield cache.dependent_read(pointer_addr, record_bytes)
            if read.ok and read.data == payload:
                counters["verified"] += 1
            else:
                counters["lost"] += 1
                read = type(read)(
                    ok=False,
                    error=read.error or "acked write read back wrong")
            done.succeed(type(read)(ok=read.ok, data=read.data,
                                    error=read.error,
                                    latency=env.now - started))

        env.process(body(), name=f"chaos-programs-probe-{counters['i']}")
        return done

    stats = _ProbeStats(SLO.max_latency)
    horizon = max(duration_s + 2.0, schedule.horizon + 2.0)
    env.process(_probe_loop(env, probe, stats, interval_s=5e-3,
                            until=horizon),
                name="chaos-probe")
    env.run(until=horizon + 1.0)

    def metric(name: str) -> float:
        value = registry.get(name)
        return float(value.value) if value is not None else 0.0

    return _finish(
        "spot-evict-programs", seed, harness, injector, registry, stats,
        {"migrations": float(len(cache.migrations)),
         "migration_failures": float(cache.migration_failures),
         "acked_writes": float(counters["acked"]),
         "verified_reads": float(counters["verified"]),
         "lost_acked_writes": float(counters["lost"]),
         "programs": metric("engine.programs"),
         "program_cas_aborts": metric("engine.program_cas_aborts"),
         "program_fallbacks": metric("engine.program_fallbacks"),
         "two_hop_reads": metric("engine.two_hop_reads")})


def _evict_primary(seed: int) -> ChaosReport:
    """Kill the primary of a replicated cache; reads must fail over."""
    registry = MetricsRegistry()
    harness = build_cluster(seed=seed, provisioning_delay_s=2.0,
                            metrics=registry)
    env = harness.env
    client = harness.redy_client("chaos-repl-app")
    group = ReplicatedCache.create(client, CAPACITY, SLO, n_replicas=2,
                                   region_bytes=REGION)

    def seed_then_probe():
        yield group.write(4096, b"\xa5" * PROBE_BYTES)

    env.run_process(seed_then_probe())
    injector = FaultInjector(env, allocator=harness.allocator,
                             fabric=harness.fabric)
    injector.install_failure_hook()
    kills = FaultSchedule([
        VmKill(at=env.now + 1.0, vm_index=i)
        for i in range(len(group.primary.allocation.vms))
    ])
    injector.arm(kills, cache=group.primary)

    stats = _ProbeStats(SLO.max_latency)
    horizon = env.now + 3.0
    env.process(_probe_loop(env, lambda: group.read(4096, PROBE_BYTES),
                            stats, interval_s=5e-3, until=horizon),
                name="chaos-probe")
    env.run(until=horizon + 1.0)
    failover = registry.get("replication.failover_latency")
    return _finish(
        "evict-primary", seed, harness, injector, registry, stats,
        {"failovers": float(group.failovers),
         "failover_p50_s": failover.p50 if failover is not None else 0.0})


def _link_flap(seed: int) -> ChaosReport:
    """Three transient link faults the retry policy rides out."""
    registry = MetricsRegistry()
    harness = build_cluster(seed=seed, metrics=registry)
    env = harness.env
    client = harness.redy_client("chaos-link-app")
    cache = client.create(
        CAPACITY, SLO, region_bytes=REGION, file=_backing(CAPACITY),
        retry_policy=RetryPolicy(max_attempts=6, base_backoff_s=200e-6,
                                 max_backoff_s=2e-3))
    target = cache.allocation.servers[0].endpoint.name
    injector = FaultInjector(env, allocator=harness.allocator,
                             fabric=harness.fabric)
    injector.install_failure_hook()
    flaps = FaultSchedule([
        LinkDown(at=t, endpoint=target, duration_s=2e-3)
        for t in (1.0, 2.0, 3.0)
    ])
    injector.arm(flaps)

    stats = _ProbeStats(SLO.max_latency)
    env.process(_probe_loop(env, lambda: cache.read(4096, PROBE_BYTES),
                            stats, interval_s=2e-3, until=4.0),
                name="chaos-probe")
    env.run(until=5.0)
    retries = registry.get("client.retries")
    return _finish(
        "link-flap", seed, harness, injector, registry, stats,
        {"retries": retries.value if retries is not None else 0.0})


def _slow_node(seed: int) -> ChaosReport:
    """A throttled server plus a fabric-wide latency spike."""
    registry = MetricsRegistry()
    harness = build_cluster(seed=seed, metrics=registry)
    env = harness.env
    client = harness.redy_client("chaos-slow-app")
    cache = client.create(CAPACITY, SLO, region_bytes=REGION,
                          file=_backing(CAPACITY))
    target = cache.allocation.servers[0].endpoint.name
    injector = FaultInjector(env, allocator=harness.allocator,
                             fabric=harness.fabric)
    injector.install_failure_hook()
    schedule = FaultSchedule([
        SlowNode(at=1.0, endpoint=target, duration_s=1.0, factor=16.0),
        LatencySpike(at=1.5, duration_s=0.5, extra_s=100e-6),
    ])
    injector.arm(schedule)

    stats = _ProbeStats(SLO.max_latency)
    env.process(_probe_loop(env, lambda: cache.read(4096, PROBE_BYTES),
                            stats, interval_s=2e-3, until=3.0),
                name="chaos-probe")
    env.run(until=4.0)
    return _finish("slow-node", seed, harness, injector, registry, stats)


def _shard_churn(seed: int) -> ChaosReport:
    """Hard-kill one member of a replicated shard fleet mid-traffic.

    A 4-shard :class:`~repro.shard.router.ShardRouter` (replication=2)
    serves rotating probes while every VM of one member dies at t=1 s.
    The fault wiring must turn the kill into an emergency ring
    departure whose rebalance streams the lost ranges off surviving
    replicas -- the report carries the rebalance stats and the probe
    availability through the event.
    """
    from repro.shard import ShardRouter

    registry = MetricsRegistry()
    harness = build_cluster(seed=seed, metrics=registry)
    env = harness.env
    client = harness.redy_client("chaos-shard-app")
    capacity = 2 * REGION
    members = {
        f"s{i}": client.create(capacity, SLO, duration_s=3600.0,
                               region_bytes=REGION)
        for i in range(4)
    }
    router = ShardRouter(env, members, slot_bytes=1 << 14, replication=2)
    router.load(0, _backing(capacity))

    injector = FaultInjector(env, allocator=harness.allocator,
                             fabric=harness.fabric)
    injector.install_failure_hook()
    victim = members["s1"]
    kills = FaultSchedule([
        VmKill(at=1.0, vm_index=i)
        for i in range(len(victim.allocation.vms))
    ])
    injector.arm(kills, cache=victim)

    stats = _ProbeStats(SLO.max_latency)
    probe_addrs = [slot * (1 << 14) + 4096 for slot in range(8)]
    cursor = {"i": 0}

    def probe_read():
        addr = probe_addrs[cursor["i"] % len(probe_addrs)]
        cursor["i"] += 1
        return router.read(addr, PROBE_BYTES)

    env.process(_probe_loop(env, probe_read, stats,
                            interval_s=2e-3, until=3.0),
                name="chaos-probe")
    env.run(until=4.0)
    rebalance = router.reports[-1] if router.reports else None
    return _finish(
        "shard-churn", seed, harness, injector, registry, stats,
        {"members_after": float(len(router.members)),
         "rebalances": float(len(router.reports)),
         "rebalance_duration_s": (rebalance.duration if rebalance
                                  else 0.0),
         "rebalance_bytes": (float(rebalance.bytes_moved) if rebalance
                             else 0.0),
         "lost_slots": (float(rebalance.lost_slots) if rebalance
                        else 0.0)})


def _noisy_neighbor(seed: int) -> ChaosReport:
    """An abusive tenant floods the serving tier; a region dies mid-run.

    A 3-member replication=1 fleet serves two tenants through a
    :class:`~repro.tenant.tier.TenantTier`: a quiet ``premium`` tenant
    probed continuously, and a ``scavenger`` tenant offering 10x its
    admitted rate in an open loop.  At t=1 s every VM of one member is
    hard-killed.  The tier must (a) shed the abusive tenant's excess
    deterministically instead of queueing it, (b) keep the premium
    probes answered throughout -- failing open to the backing mirror
    while regions are lost -- and (c) re-promote degraded tenants once
    the ring settles.  The summary carries the probe availability, the
    shed counts, and the degradation round-trips.
    """
    from repro.shard import ShardRouter
    from repro.tenant import TenantSpec, TenantTier

    registry = MetricsRegistry()
    harness = build_cluster(seed=seed, metrics=registry)
    env = harness.env
    client = harness.redy_client("chaos-tenant-app")
    capacity = 2 * REGION
    members = {
        f"s{i}": client.create(capacity, SLO, duration_s=3600.0,
                               region_bytes=REGION)
        for i in range(3)
    }
    router = ShardRouter(env, members, slot_bytes=1 << 14, replication=1)
    tier = TenantTier(env, router)
    namespace = 128 * 1024
    quiet = tier.register(TenantSpec(
        name="quiet", namespace_bytes=namespace, slo_class="premium",
        rate_per_s=200_000.0, burst=64.0, probe_interval_s=5e-3))
    abusive_rate = 20_000.0
    tier.register(TenantSpec(
        name="abusive", namespace_bytes=namespace, slo_class="scavenger",
        rate_per_s=abusive_rate, burst=16.0, max_queue=32,
        probe_interval_s=5e-3))
    seed_bytes = _backing(namespace)
    tier.load("quiet", 0, seed_bytes)
    tier.load("abusive", 0, seed_bytes)

    injector = FaultInjector(env, allocator=harness.allocator,
                             fabric=harness.fabric)
    injector.install_failure_hook()
    victim = members["s1"]
    kills = FaultSchedule([
        VmKill(at=1.0, vm_index=i)
        for i in range(len(victim.allocation.vms))
    ])
    injector.arm(kills, cache=victim)

    def abusive_load():
        # Open loop at 10x the admitted rate: results are not awaited,
        # so shedding is the only thing keeping the queue bounded.
        interval = 1.0 / (10.0 * abusive_rate)
        rng = harness.rngs.stream("chaos-abusive")
        while env.now < 3.0:
            addr = int(rng.integers(0, namespace // 64)) * 64
            tier.write("abusive", addr, b"\xab" * 64)
            yield env.timeout(interval)

    stats = _ProbeStats(SLO.max_latency)
    probe_addrs = [slot * 4096 for slot in range(16)]
    cursor = {"i": 0}

    def probe_read():
        addr = probe_addrs[cursor["i"] % len(probe_addrs)]
        cursor["i"] += 1
        return tier.read("quiet", addr, PROBE_BYTES)

    env.process(abusive_load(), name="chaos-abusive-load")
    env.process(_probe_loop(env, probe_read, stats,
                            interval_s=2e-3, until=3.0),
                name="chaos-probe")
    env.run(until=4.0)
    quiet_stats = tier.stats("quiet")
    abusive_stats = tier.stats("abusive")
    return _finish(
        "noisy-neighbor", seed, harness, injector, registry, stats,
        {"members_after": float(len(router.members)),
         "abusive_admitted": float(abusive_stats["admitted"]),
         "abusive_shed": float(abusive_stats["shed"]),
         "quiet_shed": float(quiet_stats["shed"]),
         "quiet_fail_open_reads": float(quiet_stats["fail_open_reads"]),
         "degradations": float(quiet_stats["degradations"]
                               + abusive_stats["degradations"]),
         "repromotions": float(quiet_stats["repromotions"]
                               + abusive_stats["repromotions"]),
         "quiet_still_degraded": float(quiet.degraded)})


def _conn_storm_rebalance(seed: int) -> ChaosReport:
    """A connection storm lands while a shard rebalance is in flight.

    A 4-member replication=2 :class:`~repro.shard.router.ShardRouter`
    serves write-then-verify probes with the control-plane cost model
    switched on (deferred QPs, timed registration, NIC context caches).
    At t=1 s every VM of one member is hard-killed, forcing an
    emergency rebalance -- and right across that window a burst of
    pooled client sessions opens against every member, the corpse
    included.  The :class:`~repro.cplane.plane.ControlPlane` is bound
    to the router, so the rebalance must fast-reclaim every QP pooled
    against the dead endpoint instead of letting sessions rot; storm
    reads against the corpse may fail (counted), but no session may
    hang and **no acknowledged router write may be lost** -- the
    ``lost_acked_writes == 0`` invariant the chaos test pins.
    """
    from repro.cplane import ControlPlane, PoolPolicy
    from repro.net.memory import MemoryRegion
    from repro.shard import ShardRouter

    registry = MetricsRegistry()
    harness = build_cluster(seed=seed, metrics=registry)
    env = harness.env
    # The plane flips the fabric into control-plane modeling *before*
    # the caches attach, so the engine's own QPs take the deferred path
    # too -- the storm and the serving traffic share one cost model.
    plane = ControlPlane(env, harness.fabric,
                         policy=PoolPolicy(strategy="pooled-lazy",
                                           sessions_per_qp=16,
                                           idle_timeout_s=0.2))
    client = harness.redy_client("chaos-storm-app")
    capacity = 2 * REGION
    members = {
        f"s{i}": client.create(capacity, SLO, duration_s=3600.0,
                               region_bytes=REGION)
        for i in range(4)
    }
    router = ShardRouter(env, members, slot_bytes=1 << 14, replication=2,
                         control_plane=plane)
    router.load(0, _backing(capacity))
    plane.start_harvester()

    # Storm targets: one scratch region per member server endpoint (the
    # victim's dies with it -- those reads must error, not hang).
    server_eps = [members[f"s{i}"].allocation.servers[0].endpoint
                  for i in range(4)]
    scratch = [ep.register(MemoryRegion(1 << 16, backing=False))
               for ep in server_eps]
    host_eps = [harness.fabric.add_endpoint(f"storm-host{j}")
                for j in range(4)]

    injector = FaultInjector(env, allocator=harness.allocator,
                             fabric=harness.fabric)
    injector.install_failure_hook()
    victim = members["s1"]
    kills = FaultSchedule([
        VmKill(at=1.0, vm_index=i)
        for i in range(len(victim.allocation.vms))
    ])
    injector.arm(kills, cache=victim)

    # Storm arrivals: drawn up front from one seeded stream, spread
    # across [0.9 s, 1.4 s) so the burst brackets the kill and overlaps
    # the rebalance.
    storm_clients = 400
    rng = harness.rngs.stream("chaos-storm")
    arrivals = sorted(0.9 + float(rng.uniform(0.0, 0.5))
                      for _ in range(storm_clients))
    storm = {"completed": 0, "read_failures": 0}

    def storm_proc(index: int, at: float):
        host = host_eps[index % len(host_eps)]
        target = index % len(server_eps)
        yield env.timeout(at)
        session = yield from plane.open_session(host, server_eps[target])
        pool = plane.pool(host, server_eps[target])
        for _ in range(2):
            if not session.open:
                break  # pool reclaimed under us (remote died)
            completion = yield pool.session_read(
                session, scratch[target].token, 0, PROBE_BYTES)
            if not completion.ok:
                storm["read_failures"] += 1
            yield env.timeout(1e-3)
        plane.close_session(session)
        storm["completed"] += 1

    for index, at in enumerate(arrivals):
        env.process(storm_proc(index, at), name=f"chaos-storm:{index}")

    # Write-then-verify probes through the router: a write acked by the
    # replication layer must read back intact through the kill and the
    # rebalance -- a survivor always holds the slot.
    counters = {"acked": 0, "verified": 0, "lost": 0, "i": 0}
    record_bytes = 128

    def probe():
        done = env.event()

        def body():
            index = counters["i"]
            counters["i"] += 1
            addr = (index % 8) * (1 << 14) + 4096
            payload = bytes([(index + j) % 251 for j in range(record_bytes)])
            started = env.now
            wrote = yield router.write(addr, payload)
            if not wrote.ok:
                # Never acked: an unavailable probe, not a lost write.
                done.succeed(type(wrote)(ok=False, error=wrote.error,
                                         latency=env.now - started))
                return
            counters["acked"] += 1
            read = yield router.read(addr, record_bytes)
            if read.ok and read.data == payload:
                counters["verified"] += 1
            else:
                counters["lost"] += 1
                read = type(read)(
                    ok=False,
                    error=read.error or "acked write read back wrong")
            done.succeed(type(read)(ok=read.ok, data=read.data,
                                    error=read.error,
                                    latency=env.now - started))

        env.process(body(), name=f"chaos-storm-probe-{counters['i']}")
        return done

    stats = _ProbeStats(SLO.max_latency)
    env.process(_probe_loop(env, probe, stats, interval_s=2e-3, until=3.0),
                name="chaos-probe")
    env.run(until=4.0)

    rebalance = router.reports[-1] if router.reports else None
    pool_stats = [plane.pools[key].stats() for key in sorted(plane.pools)]
    return _finish(
        "conn-storm-rebalance", seed, harness, injector, registry, stats,
        {"members_after": float(len(router.members)),
         "rebalances": float(len(router.reports)),
         "lost_slots": (float(rebalance.lost_slots) if rebalance else 0.0),
         "acked_writes": float(counters["acked"]),
         "verified_reads": float(counters["verified"]),
         "lost_acked_writes": float(counters["lost"]),
         "storm_sessions": float(storm_clients),
         "storm_completed": float(storm["completed"]),
         "storm_read_failures": float(storm["read_failures"]),
         "sessions_opened": float(sum(s["opened"] for s in pool_stats)),
         "qps_created": float(sum(s["qps_created"] for s in pool_stats)),
         "qps_reclaimed": float(sum(s["qps_reclaimed"]
                                    for s in pool_stats)),
         "demux_misroutes": float(sum(s["demux_misroutes"]
                                      for s in pool_stats)),
         "cplane_log_events": float(len(plane.log))})


SCENARIOS: Dict[str, Callable[[int], ChaosReport]] = {
    "spot-churn": _spot_churn,
    "spot-evict-programs": _spot_evict_programs,
    "evict-primary": _evict_primary,
    "link-flap": _link_flap,
    "noisy-neighbor": _noisy_neighbor,
    "shard-churn": _shard_churn,
    "slow-node": _slow_node,
    "conn-storm-rebalance": _conn_storm_rebalance,
}


def run_scenario(name: str, seed: int = 0) -> ChaosReport:
    """Run one named scenario; deterministic in (name, seed)."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos scenario {name!r}; "
            f"available: {', '.join(sorted(SCENARIOS))}") from None
    return scenario(seed)
