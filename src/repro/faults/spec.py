"""Composable fault specifications and schedules.

A :class:`FaultSpec` says *what* goes wrong and *when* (simulated
seconds); a :class:`FaultSchedule` is an ordered bag of specs the
:class:`~repro.faults.injector.FaultInjector` compiles into sim-kernel
events.  Specs are frozen dataclasses: a schedule is pure data, so the
same schedule applied to the same world is the same fault trace.

The taxonomy mirrors how spot memory actually degrades:

* :class:`VmEviction` -- the §3.2 reclamation notice (30-120 s warning,
  then termination), the fault Redy's migration machinery is built for;
* :class:`VmKill` -- the §6.2 hard failure: no warning, regions gone;
* :class:`LinkDown` -- a transient transport fault: every QP touching
  the endpoint enters the RDMA error state (posts flush with error
  completions) until the link heals, the event-stream view of
  connection failure Swift (arXiv:2501.19051) takes;
* :class:`LatencySpike` -- fabric-wide extra propagation delay for a
  window (congestion / PFC storm), RDCA's (arXiv:2211.05975) last-mile
  degradation rather than binary link death;
* :class:`SlowNode` -- one endpoint serializes slower by a factor
  (thermal throttling, noisy neighbour).

Schedules can be hand-built, drawn from a seeded RNG
(:meth:`FaultSchedule.poisson_evictions`), or derived from the §2.1
synthetic cluster trace (:meth:`FaultSchedule.from_trace`), whose
stranding episodes mark exactly the capacity squeezes that evict
harvest VMs in production.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

__all__ = [
    "FaultSchedule",
    "FaultSpec",
    "LatencySpike",
    "LinkDown",
    "SlowNode",
    "VmEviction",
    "VmKill",
]


@dataclass(frozen=True)
class FaultSpec:
    """Base: one fault at one simulated instant."""

    #: Simulated time (seconds) at which the fault fires.
    at: float

    def __post_init__(self):
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")

    @property
    def kind(self) -> str:
        return _KIND_BY_TYPE[type(self)]


@dataclass(frozen=True)
class VmEviction(FaultSpec):
    """Spot-VM reclamation with an early-warning notice (§3.2)."""

    #: Which VM of the target cache dies: index into its alive,
    #: not-yet-warned spot VMs at fire time (mod count), so a schedule
    #: stays valid as VMs come and go.
    vm_index: int = 0
    #: Notice window, seconds; ``None`` uses the allocator's default.
    notice_s: Optional[float] = None


@dataclass(frozen=True)
class VmKill(FaultSpec):
    """Abrupt VM termination -- no warning, regions lost (§6.2)."""

    vm_index: int = 0


@dataclass(frozen=True)
class LinkDown(FaultSpec):
    """Transient link/QP failure on one endpoint."""

    #: Endpoint whose QPs (both directions) enter the error state.
    endpoint: str = ""
    #: Seconds until the link heals and QPs reconnect.
    duration_s: float = 0.1

    def __post_init__(self):
        super().__post_init__()
        if self.duration_s <= 0:
            raise ValueError("LinkDown duration_s must be positive")


@dataclass(frozen=True)
class LatencySpike(FaultSpec):
    """Fabric-wide extra one-way latency for a window."""

    duration_s: float = 0.1
    extra_s: float = 50e-6

    def __post_init__(self):
        super().__post_init__()
        if self.duration_s <= 0 or self.extra_s <= 0:
            raise ValueError("LatencySpike needs positive duration and extra")


@dataclass(frozen=True)
class SlowNode(FaultSpec):
    """One endpoint's transmit path runs ``factor`` x slower."""

    endpoint: str = ""
    duration_s: float = 0.1
    factor: float = 8.0

    def __post_init__(self):
        super().__post_init__()
        if self.duration_s <= 0:
            raise ValueError("SlowNode duration_s must be positive")
        if self.factor < 1.0:
            raise ValueError("SlowNode factor must be >= 1")


_KIND_BY_TYPE = {
    VmEviction: "vm-eviction",
    VmKill: "vm-kill",
    LinkDown: "link-down",
    LatencySpike: "latency-spike",
    SlowNode: "slow-node",
}


class FaultSchedule:
    """An ordered, immutable collection of fault specs."""

    def __init__(self, specs: Sequence[FaultSpec] = ()):
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"not a FaultSpec: {spec!r}")
        #: Sorted by fire time; ties keep the given order (stable sort),
        #: so composition order is part of the schedule's identity.
        self.specs: Tuple[FaultSpec, ...] = tuple(
            sorted(specs, key=lambda spec: spec.at))

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        """Compose two schedules into one merged timeline."""
        return FaultSchedule(self.specs + other.specs)

    @property
    def horizon(self) -> float:
        """When the last fault (including its recovery window) is over."""
        end = 0.0
        for spec in self.specs:
            end = max(end, spec.at + getattr(spec, "duration_s", 0.0))
        return end

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------

    @classmethod
    def poisson_evictions(cls, *, rate_per_s: float, duration_s: float,
                          rng, start_at: float = 0.0,
                          notice_s: Optional[float] = None,
                          kill_fraction: float = 0.0) -> "FaultSchedule":
        """Memoryless spot churn: evictions at ``rate_per_s``.

        ``rng`` is a seeded ``numpy`` generator (use
        ``RngRegistry.stream("faults")``), which makes the schedule a
        pure function of the seed.  ``kill_fraction`` of the events are
        abrupt :class:`VmKill`\\ s instead of noticed evictions,
        modelling the provider's failure-to-warn rate.
        """
        if rate_per_s <= 0 or duration_s <= 0:
            raise ValueError("need positive rate_per_s and duration_s")
        if not 0.0 <= kill_fraction <= 1.0:
            raise ValueError("kill_fraction must be in [0, 1]")
        specs = []
        t = start_at
        index = 0
        while True:
            t += float(rng.exponential(1.0 / rate_per_s))
            if t >= start_at + duration_s:
                break
            if float(rng.random()) < kill_fraction:
                specs.append(VmKill(at=t, vm_index=index))
            else:
                specs.append(VmEviction(at=t, vm_index=index,
                                        notice_s=notice_s))
            index += 1
        return cls(specs)

    @classmethod
    def from_trace(cls, trace, *, max_events: int = 8,
                   time_scale: float = 1.0, start_at: float = 1.0,
                   notice_s: Optional[float] = None,
                   abrupt: bool = False) -> "FaultSchedule":
        """Eviction schedule derived from a §2.1 synthetic cluster trace.

        A completed stranding episode in the trace is a capacity squeeze
        -- cores filled up, then freed -- which is precisely when the
        platform reclaims harvest/spot VMs to make room.  The episode
        durations (in completion order, deterministic for a seeded
        trace) become inter-eviction gaps, optionally compressed by
        ``time_scale`` so hours of trace drive seconds of cache sim.
        """
        durations = [float(d) for d in
                     list(trace.stranding_durations_s)[:max_events]]
        specs = []
        t = start_at
        for index, gap in enumerate(durations):
            t += gap * time_scale
            if abrupt:
                specs.append(VmKill(at=t, vm_index=index))
            else:
                specs.append(VmEviction(at=t, vm_index=index,
                                        notice_s=notice_s))
        return cls(specs)

    def __repr__(self) -> str:
        return (f"<FaultSchedule {len(self.specs)} faults, "
                f"horizon {self.horizon:.3f}s>")
