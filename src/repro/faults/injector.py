"""The fault injector: compiles a schedule into sim-kernel events.

:class:`FaultInjector` is the fault plane's single actor.  It owns no
policy -- every fault is applied through the *same* mechanism the
production path uses (``allocator.reclaim``/``allocator.fail`` for VM
loss, QP error states for transport faults, fabric knobs for latency
and throttling), so the system under test cannot tell an injected fault
from an organic one.  Everything it does is appended to a
:class:`~repro.faults.log.FaultLog` with the simulated timestamp, which
makes a chaos run auditable and -- because the injector consumes no
randomness of its own and runs entirely on the sim clock -- bit-wise
reproducible from (seed, schedule).
"""

from __future__ import annotations

from typing import Optional

from repro.faults.log import FaultLog
from repro.faults.spec import (
    FaultSchedule,
    FaultSpec,
    LatencySpike,
    LinkDown,
    SlowNode,
    VmEviction,
    VmKill,
)
from repro.net.qp import QueuePairError
from repro.obs.metrics import registry_of

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies :class:`FaultSchedule`\\ s to a running cluster."""

    def __init__(self, env, *, allocator=None, fabric=None,
                 log: Optional[FaultLog] = None):
        self.env = env
        self.allocator = allocator
        self.fabric = fabric
        self.log = log if log is not None else FaultLog()
        metrics = registry_of(env)
        if metrics is not None:
            self._injected = metrics.counter("faults.injected")
            self._routed_failures = metrics.counter("faults.process_failures")
        else:
            self._injected = None
            self._routed_failures = None

    # ------------------------------------------------------------------
    # Process-failure routing
    # ------------------------------------------------------------------

    def install_failure_hook(self):
        """Route joinerless process failures through the fault log.

        Chains any hook already installed on the environment (the
        kernel's contract: whoever owns ``on_process_failure`` owns the
        exception), so installing the injector never silently disables
        an experiment's own failure handling.
        """
        prior = self.env.on_process_failure

        def hook(process, exc):
            self.log.append(self.env.now, "process-failure",
                            getattr(process, "name", None) or repr(process),
                            error=str(exc), exc_type=type(exc).__name__)
            if self._routed_failures is not None:
                self._routed_failures.inc()
            if prior is not None:
                prior(process, exc)

        self.env.on_process_failure = hook
        return hook

    # ------------------------------------------------------------------
    # Driving a schedule
    # ------------------------------------------------------------------

    def arm(self, schedule: FaultSchedule, cache=None):
        """Start a driver process that fires each fault at its time.

        ``cache`` scopes VM faults to one cache's allocation; without it
        they draw from every allocator-known spot VM.  Returns the
        driver :class:`~repro.sim.kernel.Process` (join it to know the
        schedule has fully fired).
        """
        return self.env.process(self._drive(schedule, cache),
                                name="fault-injector")

    def _drive(self, schedule: FaultSchedule, cache):
        for spec in schedule:
            delay = spec.at - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._apply(spec, cache)

    def _apply(self, spec: FaultSpec, cache) -> None:
        if isinstance(spec, VmEviction):
            self._evict(spec, cache)
        elif isinstance(spec, VmKill):
            self._kill(spec, cache)
        elif isinstance(spec, LinkDown):
            self._link_down(spec)
        elif isinstance(spec, LatencySpike):
            self._latency_spike(spec)
        elif isinstance(spec, SlowNode):
            self._slow_node(spec)
        else:
            raise TypeError(f"unknown fault spec {spec!r}")

    def _record(self, spec: FaultSpec, target: str, **detail) -> None:
        self.log.append(self.env.now, spec.kind, target, **detail)
        if self._injected is not None:
            self._injected.inc()

    # ------------------------------------------------------------------
    # VM faults
    # ------------------------------------------------------------------

    def _vm_candidates(self, cache, *, evictable: bool):
        """Alive VMs in deterministic (allocation/creation) order.

        Eviction needs a spot VM with no pending notice (``reclaim``
        rejects anything else); a kill can take any live VM.
        """
        if cache is not None:
            pool = list(cache.allocation.vms)
        elif self.allocator is not None:
            pool = [vm for vm in self.allocator.vms.values() if vm.spot]
        else:
            pool = []
        if evictable:
            return [vm for vm in pool
                    if vm.alive and vm.spot and vm.reclaim_deadline is None]
        return [vm for vm in pool if vm.alive]

    def _evict(self, spec: VmEviction, cache) -> None:
        if self.allocator is None:
            raise RuntimeError("VM faults need an allocator")
        candidates = self._vm_candidates(cache, evictable=True)
        if not candidates:
            self.log.append(self.env.now, "no-target", "vm-eviction")
            return
        vm = candidates[spec.vm_index % len(candidates)]
        notice = self.allocator.reclaim(vm, spec.notice_s)
        self._record(spec, f"vm-{vm.vm_id}",
                     server=vm.server.server_id,
                     deadline=notice.deadline)

    def _kill(self, spec: VmKill, cache) -> None:
        if self.allocator is None:
            raise RuntimeError("VM faults need an allocator")
        candidates = self._vm_candidates(cache, evictable=False)
        if not candidates:
            self.log.append(self.env.now, "no-target", "vm-kill")
            return
        vm = candidates[spec.vm_index % len(candidates)]
        self._record(spec, f"vm-{vm.vm_id}", server=vm.server.server_id)
        self.allocator.fail(vm)

    # ------------------------------------------------------------------
    # Network faults
    # ------------------------------------------------------------------

    def _link_down(self, spec: LinkDown) -> None:
        if self.fabric is None:
            raise RuntimeError("network faults need a fabric")
        endpoint = self.fabric.endpoint(spec.endpoint)
        qps = list(endpoint.qps)
        for qp in qps:
            qp.inject_error(f"link down at {endpoint.name}")
        self._record(spec, endpoint.name, qps=len(qps),
                     duration_s=spec.duration_s)
        self.env.process(self._restore_link(spec, endpoint, qps),
                         name=f"link-restore:{endpoint.name}")

    def _restore_link(self, spec: LinkDown, endpoint, qps):
        yield self.env.timeout(spec.duration_s)
        restored = 0
        for qp in qps:
            if not qp.in_error:
                continue
            try:
                qp.reconnect()
                restored += 1
            except QueuePairError:
                # An endpoint died while the link was down (e.g. an
                # overlapping VM kill): that QP stays dead, correctly.
                pass
        self.log.append(self.env.now, "link-restored", endpoint.name,
                        qps=restored)

    def _latency_spike(self, spec: LatencySpike) -> None:
        if self.fabric is None:
            raise RuntimeError("network faults need a fabric")
        self.fabric.extra_latency_s += spec.extra_s
        self._record(spec, "fabric", extra_s=spec.extra_s,
                     duration_s=spec.duration_s)
        self.env.process(self._clear_spike(spec), name="latency-spike-clear")

    def _clear_spike(self, spec: LatencySpike):
        yield self.env.timeout(spec.duration_s)
        # Additive, so overlapping spikes compose and unwind cleanly.
        self.fabric.extra_latency_s -= spec.extra_s
        self.log.append(self.env.now, "latency-spike-cleared", "fabric",
                        extra_s=spec.extra_s)

    def _slow_node(self, spec: SlowNode) -> None:
        if self.fabric is None:
            raise RuntimeError("network faults need a fabric")
        endpoint = self.fabric.endpoint(spec.endpoint)
        endpoint.throttle *= spec.factor
        self._record(spec, endpoint.name, factor=spec.factor,
                     duration_s=spec.duration_s)
        self.env.process(self._clear_throttle(spec, endpoint),
                         name=f"slow-node-clear:{endpoint.name}")

    def _clear_throttle(self, spec: SlowNode, endpoint):
        yield self.env.timeout(spec.duration_s)
        endpoint.throttle /= spec.factor
        self.log.append(self.env.now, "slow-node-cleared", endpoint.name,
                        factor=spec.factor)
