"""Deterministic fault injection for the simulated testbed.

The fault plane that exercises Redy's §6 robustness machinery: frozen
fault specs composed into :class:`FaultSchedule`\\ s, applied by a
:class:`FaultInjector` through the same interfaces organic faults use
(allocator reclaim/fail, QP error states, fabric knobs), and recorded
in an append-only :class:`FaultLog` whose digest makes same-seed runs
bit-comparable.  ``repro.faults.scenarios`` packages named end-to-end
chaos runs for the CLI and the availability benchmark.
"""

from repro.faults.injector import FaultInjector
from repro.faults.log import FaultEvent, FaultLog
from repro.faults.scenarios import (
    SCENARIOS,
    ChaosReport,
    churn_run,
    run_scenario,
)
from repro.faults.spec import (
    FaultSchedule,
    FaultSpec,
    LatencySpike,
    LinkDown,
    SlowNode,
    VmEviction,
    VmKill,
)

__all__ = [
    "SCENARIOS",
    "ChaosReport",
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "FaultSchedule",
    "FaultSpec",
    "LatencySpike",
    "LinkDown",
    "SlowNode",
    "VmEviction",
    "VmKill",
    "churn_run",
    "run_scenario",
]
