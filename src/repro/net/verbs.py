"""RDMA verb descriptors.

Only the one-sided verbs exist at this layer.  Redy implements its
two-sided request/response protocol with one-sided *writes* into message
rings (paper §4.1: "Redy implements two-sided communications ... using
one-sided RDMA writes, since they are faster").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.net.memory import AccessToken

__all__ = ["Completion", "RdmaOp", "WorkRequest"]


class RdmaOp(enum.Enum):
    """One-sided verb type."""

    READ = "read"
    WRITE = "write"


@dataclass
class WorkRequest:
    """One posted one-sided operation.

    For a WRITE, ``payload_bytes`` (and optionally ``data``) describe the
    client-side buffer pushed to ``(token, remote_offset)``.  For a READ,
    ``payload_bytes`` is the length pulled from the remote region.
    """

    op: RdmaOp
    token: AccessToken
    remote_offset: int
    payload_bytes: int
    data: Optional[bytes] = None
    #: Opaque correlation value handed back on the completion (batch ids,
    #: callback handles).
    context: object = None
    #: Opaque message delivered to the target region's mailbox when this
    #: WRITE lands (how request/response batches reach the poller on the
    #: other side).  Ignored for READs and for regions without a mailbox.
    payload_object: object = None
    #: Simulated timestamp when the request was posted to a queue pair
    #: (stamped by :meth:`QueuePair.post`; drives wire-latency metrics).
    posted_at: float = 0.0
    #: Correlation id, stamped per-QP by :meth:`QueuePair.post`.  Scoping
    #: the counter to the queue pair (not a module global) keeps ids
    #: identical across same-seed runs in one interpreter -- a module
    #: counter keeps ticking between runs and leaks into process names,
    #: which the replay sanitizer flags as schedule divergence.
    wr_id: int = 0

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        if self.data is not None and len(self.data) != self.payload_bytes:
            raise ValueError(
                f"data length {len(self.data)} != payload_bytes "
                f"{self.payload_bytes}")

    @property
    def is_write(self) -> bool:
        return self.op is RdmaOp.WRITE


@dataclass
class Completion:
    """Completion-queue entry for one work request."""

    wr_id: int
    op: RdmaOp
    ok: bool
    #: Data returned by a READ (None for size-only regions or on error).
    data: Optional[bytes] = None
    #: Error detail when ``ok`` is False.
    error: Optional[str] = None
    context: object = None
    #: Simulated timestamp when the completion was generated.
    completed_at: float = 0.0
