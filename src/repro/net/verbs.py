"""RDMA verb descriptors.

Only the one-sided verbs exist at this layer.  Redy implements its
two-sided request/response protocol with one-sided *writes* into message
rings (paper §4.1: "Redy implements two-sided communications ... using
one-sided RDMA writes, since they are faster").

``PROGRAM`` work requests carry a :class:`~repro.net.programs.
VerbProgram` -- a chain of dependent verbs executed at the remote NIC in
one round trip (see :mod:`repro.net.programs`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

from repro.net.memory import AccessToken

if TYPE_CHECKING:
    from repro.net.programs import StepResult, VerbProgram

__all__ = ["Completion", "RdmaOp", "WorkRequest"]


class RdmaOp(enum.Enum):
    """One-sided verb type."""

    READ = "read"
    WRITE = "write"
    #: Single-word compare-and-swap (guards; program building block).
    CAS = "cas"
    #: A chained verb program executed remotely (repro.net.programs).
    PROGRAM = "program"


@dataclass
class WorkRequest:
    """One posted one-sided operation.

    For a WRITE, ``payload_bytes`` (and optionally ``data``) describe the
    client-side buffer pushed to ``(token, remote_offset)``.  For a READ,
    ``payload_bytes`` is the length pulled from the remote region.
    """

    op: RdmaOp
    token: AccessToken
    remote_offset: int
    payload_bytes: int
    data: Optional[bytes] = None
    #: Opaque correlation value handed back on the completion (batch ids,
    #: callback handles).
    context: object = None
    #: Opaque message delivered to the target region's mailbox when this
    #: WRITE lands (how request/response batches reach the poller on the
    #: other side).  Ignored for READs and for regions without a mailbox.
    payload_object: object = None
    #: Simulated timestamp when the request was posted to a queue pair
    #: (stamped by :meth:`QueuePair.post`; drives wire-latency metrics).
    posted_at: float = 0.0
    #: Correlation id, stamped per-QP by :meth:`QueuePair.post`.  Scoping
    #: the counter to the queue pair (not a module global) keeps ids
    #: identical across same-seed runs in one interpreter -- a module
    #: counter keeps ticking between runs and leaks into process names,
    #: which the replay sanitizer flags as schedule divergence.
    wr_id: int = 0
    #: The chained program this request carries (PROGRAM ops only).
    program: Optional["VerbProgram"] = None
    #: CAS only: expected word; ``data`` is the swap value.  ``None``
    #: matches anything (size-only regions; unconditional exchange).
    compare: Optional[bytes] = None
    #: True when this WR was posted through :meth:`QueuePair.post_many`
    #: behind another WR's doorbell: the NIC amortizes the MMIO write and
    #: WQE-ring fetch, so followers pay a discounted processing charge.
    doorbell_batched: bool = False

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        if self.data is not None and len(self.data) != self.payload_bytes:
            raise ValueError(
                f"data length {len(self.data)} != payload_bytes "
                f"{self.payload_bytes}")
        if (self.op is RdmaOp.PROGRAM) != (self.program is not None):
            raise ValueError(
                "PROGRAM work requests carry a program; other ops must not")

    @property
    def is_write(self) -> bool:
        return self.op is RdmaOp.WRITE


@dataclass
class Completion:
    """Completion-queue entry for one work request.

    For PROGRAM work requests, ``data`` holds the payload of the last
    completed READ step (the record a dependent GET chased), while
    ``step_results`` carries every step's remote-side outcome.  A chain
    that aborted mid-program surfaces as a *partial* completion:
    ``ok=False``, ``steps_completed < len(program)``, and
    ``cas_aborted=True`` when a self-verifying guard (rather than an
    access fault) stopped it.
    """

    wr_id: int
    op: RdmaOp
    ok: bool
    #: Data returned by a READ (None for size-only regions or on error).
    data: Optional[bytes] = None
    #: Error detail when ``ok`` is False.
    error: Optional[str] = None
    context: object = None
    #: Simulated timestamp when the completion was generated.
    completed_at: float = 0.0
    #: PROGRAM only: how many steps ran before success/abort.
    steps_completed: int = 0
    #: PROGRAM only: per-step remote outcomes, in chain order.
    step_results: Tuple["StepResult", ...] = field(default_factory=tuple)
    #: PROGRAM only: a CAS guard observed a changed word and aborted.
    cas_aborted: bool = False
