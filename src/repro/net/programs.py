"""Remote-side verb programs: chained one-sided verbs in one round trip.

A FASTER GET through a remote region classically pays two dependent
fabric round trips -- READ the hash bucket, then READ the log record the
bucket points at.  "RDMA is Turing complete" shows such dependent access
sequences can execute entirely at the remote NIC: a small *program* of
chained work requests where a later step takes its remote offset from an
earlier step's returned data, guarded by compare-and-swap steps that
abort the chain when the memory it depends on changed underneath it.

A :class:`VerbProgram` is the descriptor for one such offloaded
sequence.  It travels to the remote NIC in **one** request message (the
descriptor plus any inline WRITE payloads), executes step by step at the
remote NIC (each step charged :attr:`~repro.hardware.nic.NicSpec.
program_step_latency` plus its DMA cost), and returns **one** response
carrying the READ payloads -- so a dependent chain costs one round trip
plus remote service time instead of one round trip per hop.  The
execution engine lives in :meth:`repro.net.qp.QueuePair._execute`; this
module owns the descriptor, its validation, and its wire-cost
accounting.

Failure semantics: a step that faults (revoked token, out-of-bounds
deref) or a CAS guard that observes a changed value aborts the chain at
that step.  The requester still gets exactly one :class:`~repro.net.
verbs.Completion` -- partial, with ``ok=False``, ``steps_completed``,
per-step results, and ``cas_aborted`` set when a guard fired -- so no
acked work is ever silently dropped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "MAX_PROGRAM_STEPS",
    "PROGRAM_HEADER_BYTES",
    "PROGRAM_STATUS_BYTES",
    "ProgramError",
    "ProgramShapeCache",
    "ProgramStep",
    "SHAPE_REFERENCE_BYTES",
    "STEP_DESCRIPTOR_BYTES",
    "StepOp",
    "StepResult",
    "VerbProgram",
]

#: NIC-enforced bound on chain length.  Chained WQE execution consumes
#: on-NIC WQE slots; eight covers every dependent-read shape Redy posts
#: (bucket -> record -> guard is three) with room for multi-level chains.
MAX_PROGRAM_STEPS = 8

#: Wire framing of the program descriptor itself (opcode, step count,
#: token, flags).
PROGRAM_HEADER_BYTES = 16

#: Per-step wire descriptor (opcode, offset/offset-source, length,
#: compare-source).
STEP_DESCRIPTOR_BYTES = 24

#: Status trailer on the response (steps completed, abort reason).
PROGRAM_STATUS_BYTES = 8

#: CAS operands are a single machine word.
CAS_WORD_BYTES = 8

#: Wire bytes of a compact reference to an already-installed program
#: shape (shape id + generation), replacing the per-step descriptors
#: when the responder has the shape cached.
SHAPE_REFERENCE_BYTES = 8


class ProgramError(ValueError):
    """A verb program violates the chain constraints (too long, bad
    step reference, malformed operands)."""


class StepOp(enum.Enum):
    """One chained verb inside a program."""

    READ = "read"
    WRITE = "write"
    CAS = "cas"


@dataclass(frozen=True)
class ProgramStep:
    """One step of a verb program.

    ``offset`` is the static remote offset.  When ``offset_from`` names
    an earlier READ step, the remote NIC instead interprets that step's
    returned bytes as a little-endian u64 region offset (pointer
    chasing); ``offset`` then serves as the *fallback* used when the
    source step returned no bytes -- which is exactly what happens on
    size-only (unbacked) measurement regions, keeping the timing path
    identical whether or not the region stores real bytes.

    CAS steps compare the current word at the (resolved) offset against
    ``compare`` -- or against the bytes an earlier step returned, when
    ``compare_from`` is set (the self-verifying guard: "abort unless
    this word still holds what step k saw").  On match, ``data`` (if
    given) is swapped in; a guard passes ``data=None`` and leaves memory
    untouched.  On mismatch the program aborts with ``cas_aborted``.
    """

    op: StepOp
    offset: int = 0
    length: int = 0
    data: Optional[bytes] = None
    #: Index of an earlier READ step whose returned bytes supply this
    #: step's remote offset (None = static offset).
    offset_from: Optional[int] = None
    #: CAS only: index of an earlier step whose returned bytes are the
    #: expected value (None = use ``compare``).
    compare_from: Optional[int] = None
    #: CAS only: static expected value (ignored when ``compare_from``).
    compare: Optional[bytes] = None

    def validate(self, index: int) -> None:
        if self.offset < 0:
            raise ProgramError(f"step {index}: offset must be >= 0")
        if self.length < 0:
            raise ProgramError(f"step {index}: length must be >= 0")
        if self.offset_from is not None and not (
                0 <= self.offset_from < index):
            raise ProgramError(
                f"step {index}: offset_from must name an earlier step, "
                f"got {self.offset_from}")
        if self.op is StepOp.WRITE:
            if self.data is not None and len(self.data) != self.length:
                raise ProgramError(
                    f"step {index}: WRITE data length {len(self.data)} "
                    f"!= length {self.length}")
        elif self.op is StepOp.CAS:
            if self.length != CAS_WORD_BYTES:
                raise ProgramError(
                    f"step {index}: CAS operates on {CAS_WORD_BYTES}-byte "
                    f"words, got length {self.length}")
            if self.compare_from is not None and not (
                    0 <= self.compare_from < index):
                raise ProgramError(
                    f"step {index}: compare_from must name an earlier "
                    f"step, got {self.compare_from}")
            if self.data is not None and len(self.data) != CAS_WORD_BYTES:
                raise ProgramError(
                    f"step {index}: CAS swap value must be "
                    f"{CAS_WORD_BYTES} bytes")
            if self.compare is not None and len(self.compare) != CAS_WORD_BYTES:
                raise ProgramError(
                    f"step {index}: CAS compare value must be "
                    f"{CAS_WORD_BYTES} bytes")
        else:  # READ
            if self.data is not None:
                raise ProgramError(f"step {index}: READ steps carry no data")

    @property
    def request_wire_bytes(self) -> int:
        """Bytes this step adds to the program descriptor on the wire."""
        inline = 0
        if self.op is StepOp.WRITE and self.length:
            inline = self.length
        elif self.op is StepOp.CAS:
            # Compare + swap operands ride in the descriptor.
            inline = 2 * CAS_WORD_BYTES
        return STEP_DESCRIPTOR_BYTES + inline

    @property
    def response_wire_bytes(self) -> int:
        """Bytes this step adds to the single response message."""
        if self.op is StepOp.READ:
            return self.length
        if self.op is StepOp.CAS:
            return CAS_WORD_BYTES  # the observed original value
        return 0


@dataclass(frozen=True)
class StepResult:
    """Remote-side outcome of one executed program step."""

    index: int
    op: StepOp
    ok: bool
    #: Resolved remote offset the step actually targeted.
    offset: int = 0
    #: Bytes the step produced (READ payload / CAS observed value).
    data: Optional[bytes] = None
    error: Optional[str] = None


@dataclass(frozen=True)
class VerbProgram:
    """An ordered chain of verbs executed remotely in one round trip.

    ``label`` is purely cosmetic (log/metric annotations); it never
    reaches the wire, the digest, or any result-cache key.
    """

    steps: Tuple[ProgramStep, ...]
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.steps:
            raise ProgramError("a program needs at least one step")
        if len(self.steps) > MAX_PROGRAM_STEPS:
            raise ProgramError(
                f"program of {len(self.steps)} steps exceeds the NIC "
                f"chain bound of {MAX_PROGRAM_STEPS}")
        for index, step in enumerate(self.steps):
            step.validate(index)

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def request_wire_bytes(self) -> int:
        """One descriptor message: header + per-step descriptors +
        inline WRITE/CAS operands."""
        return PROGRAM_HEADER_BYTES + sum(
            step.request_wire_bytes for step in self.steps)

    @property
    def response_wire_bytes(self) -> int:
        """One response message: status trailer + produced payloads."""
        return PROGRAM_STATUS_BYTES + sum(
            step.response_wire_bytes for step in self.steps)

    def response_bytes_through(self, steps_completed: int) -> int:
        """Response size when the chain aborted after ``steps_completed``
        steps (partial completions return only what executed)."""
        return PROGRAM_STATUS_BYTES + sum(
            step.response_wire_bytes
            for step in self.steps[:steps_completed])

    @property
    def write_payload_bytes(self) -> int:
        """Client-side payload bytes the NIC must gather before sending
        (drives the inline-vs-DMA-fetch charge at post time)."""
        return sum(step.length for step in self.steps
                   if step.op is StepOp.WRITE)

    @property
    def shape_key(self) -> Tuple:
        """Structural identity of this program: everything the remote
        NIC needs to pre-compile the chain, *excluding* per-request
        operands (offsets, payloads, compare words).

        Two dependent GETs for different keys share a shape; the first
        posts the full descriptor, later ones a compact reference (see
        :class:`ProgramShapeCache`).  Hashable and deterministic --
        built only from enum values and small ints.
        """
        return tuple(
            (step.op.value, step.length, step.offset_from,
             step.compare_from, step.data is not None,
             step.compare is not None)
            for step in self.steps)

    @property
    def cached_request_wire_bytes(self) -> int:
        """Request size when the responder already holds this shape:
        header + shape reference + per-step operands (a u64 offset per
        step plus inline WRITE/CAS payloads) instead of the full
        per-step descriptors."""
        operand_bytes = 0
        for step in self.steps:
            operand_bytes += CAS_WORD_BYTES  # offset / fallback offset
            if step.op is StepOp.WRITE and step.length:
                operand_bytes += step.length
            elif step.op is StepOp.CAS:
                operand_bytes += 2 * CAS_WORD_BYTES
        return PROGRAM_HEADER_BYTES + SHAPE_REFERENCE_BYTES + operand_bytes

    @classmethod
    def dependent_read(cls, *, pointer_offset: int, read_bytes: int,
                       pointer_bytes: int = CAS_WORD_BYTES,
                       fallback_offset: int = 0,
                       verify: bool = False,
                       label: str = "") -> "VerbProgram":
        """The GET-path chain: READ a pointer word, READ the record it
        points at, optionally re-verify the pointer.

        ``verify=True`` appends a CAS guard that re-reads the pointer at
        the end of the chain and compares it against what step 0 saw --
        the self-verifying read that makes dependent GETs safe against
        concurrent migration/compaction moving the record after the
        pointer was sampled.  ``fallback_offset`` is the static offset
        used when the pointer word has no backing bytes (size-only
        measurement regions).
        """
        steps = [
            ProgramStep(op=StepOp.READ, offset=pointer_offset,
                        length=pointer_bytes),
            ProgramStep(op=StepOp.READ, offset=fallback_offset,
                        length=read_bytes, offset_from=0),
        ]
        if verify:
            steps.append(ProgramStep(op=StepOp.CAS, offset=pointer_offset,
                                     length=CAS_WORD_BYTES, compare_from=0))
        return cls(steps=tuple(steps), label=label)


class ProgramShapeCache:
    """Per-endpoint registry of installed program shapes.

    The first program of a given :attr:`VerbProgram.shape_key` posted to
    an endpoint ships the full per-step descriptors and *installs* the
    shape at the responder NIC; every later program with the same shape
    -- from any connection, which is what makes pooled QPs amortize
    descriptor cost across sessions -- sends only a compact reference
    plus operands (:attr:`VerbProgram.cached_request_wire_bytes`).

    Deterministic: insertion-ordered dict keyed by the structural shape
    tuple; ids are assigned in first-install order.
    """

    __slots__ = ("installs", "hits", "_shapes")

    def __init__(self) -> None:
        self.installs = 0
        self.hits = 0
        #: shape_key -> shape id, in install order.
        self._shapes: dict = {}

    def __len__(self) -> int:
        return len(self._shapes)

    def __contains__(self, shape_key: Tuple) -> bool:
        return shape_key in self._shapes

    def install(self, shape_key: Tuple) -> bool:
        """Look up (and install on miss) one shape; True when it was
        already installed -- i.e. the request may use the compact form."""
        if shape_key in self._shapes:
            self.hits += 1
            return True
        self._shapes[shape_key] = len(self._shapes)
        self.installs += 1
        return False

    def shape_id(self, shape_key: Tuple) -> Optional[int]:
        return self._shapes.get(shape_key)

    def stats(self) -> dict:
        return {"shapes": len(self._shapes), "installs": self.installs,
                "hits": self.hits}


def resolve_offset(step: ProgramStep,
                   produced: Tuple[Optional[bytes], ...]) -> int:
    """Resolve a step's remote offset against earlier steps' data.

    Deref of a source step that produced no bytes (unbacked region)
    falls back to the step's own static ``offset`` so the timing path
    is identical with and without backing.
    """
    if step.offset_from is None:
        return step.offset
    source = produced[step.offset_from]
    if source is None or len(source) == 0:
        return step.offset
    return int.from_bytes(source[:CAS_WORD_BYTES], "little")
