"""Simulated RDMA fabric.

This package models the pieces of the RDMA stack that Redy's protocol
interacts with:

* :mod:`repro.net.fabric` -- endpoints (NIC ports) placed in a rack /
  cluster topology, with per-endpoint transmit serialization at line rate
  and per-hop switch latency.
* :mod:`repro.net.memory` -- registered memory regions and the access
  tokens returned by the cache server's *Connect* handshake.
* :mod:`repro.net.qp` -- queue pairs: reliable, connected, in-order
  delivery with a bounded number of in-flight operations.
* :mod:`repro.net.verbs` -- one-sided READ / WRITE work requests
  (two-sided send/receive is layered on one-sided writes by the cache
  engine, exactly as the paper does in Section 4.1).
* :mod:`repro.net.rings` -- the batch ring and message ring structures of
  Figure 6.
"""

from repro.net.fabric import Endpoint, Fabric, Placement
from repro.net.memory import AccessToken, MemoryRegion, RdmaAccessError
from repro.net.qp import QueuePair, QueuePairError
from repro.net.rings import RingBuffer, RingFull
from repro.net.verbs import Completion, RdmaOp, WorkRequest

__all__ = [
    "AccessToken",
    "Completion",
    "Endpoint",
    "Fabric",
    "MemoryRegion",
    "Placement",
    "QueuePair",
    "QueuePairError",
    "RdmaAccessError",
    "RdmaOp",
    "RingBuffer",
    "RingFull",
    "WorkRequest",
]
