"""Ring buffers of the Redy data path (Figure 6).

Two rings connect the pipeline stages:

* the **batch ring** between an application thread and its client thread,
  where I/O requests accumulate into request batches; and
* the **message ring**, registered with the NIC, that carries request
  batches to the server and response batches back.

In the simulation all code runs single-threaded, so "lock-free" is not a
structural property here -- it is a *cost* property charged by the engine
(cheap handoff vs. mutex handoff with a contention tail).  The ring
itself models what matters for performance: bounded capacity and FIFO
order, which create the backpressure that shapes latency under load.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterator

__all__ = ["RingBuffer", "RingFull"]


class RingFull(Exception):
    """push() on a full ring."""


class RingBuffer:
    """A bounded FIFO ring with explicit full/empty states.

    The message-ring size doubles as the connection's queue depth: Redy
    controls the number of in-flight RDMA operations "by the message ring
    size" (§4.3, *Fully-loaded Queue Pairs*).
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._slots: Deque[Any] = deque()
        #: Lifetime counters, exposed for occupancy statistics.
        self.total_pushed = 0
        self.total_popped = 0

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._slots)

    @property
    def is_empty(self) -> bool:
        return not self._slots

    @property
    def is_full(self) -> bool:
        return len(self._slots) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._slots)

    def push(self, item: Any) -> None:
        """Append ``item``; raises :class:`RingFull` when at capacity."""
        if self.is_full:
            raise RingFull(f"ring at capacity {self.capacity}")
        self._slots.append(item)
        self.total_pushed += 1

    def try_push(self, item: Any) -> bool:
        """Append if space is available; returns success."""
        if self.is_full:
            return False
        self.push(item)
        return True

    def pop(self) -> Any:
        """Remove and return the oldest item; raises IndexError when empty."""
        item = self._slots.popleft()
        self.total_popped += 1
        return item

    def try_pop(self) -> tuple[bool, Any]:
        """(ok, item) without raising."""
        if self.is_empty:
            return False, None
        return True, self.pop()

    def peek(self) -> Any:
        """Return the oldest item without removing it."""
        return self._slots[0]

    def drain(self) -> list[Any]:
        """Remove and return everything, oldest first."""
        items = list(self._slots)
        self.total_popped += len(items)
        self._slots.clear()
        return items
