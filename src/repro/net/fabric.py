"""Network fabric: endpoints, placement, and message delivery.

The fabric owns the physical-layer costs: transmit serialization at line
rate (shared by everything an endpoint sends -- this is how migration
traffic contends with foreground traffic in the Figure 15/16 experiments)
and per-switch-hop propagation latency.

Topology follows the paper's three network distances (§5.2): endpoints in
the same rack are one switch apart, same cluster three, different
clusters five.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.hardware.nic import QpContextCache
from repro.hardware.profiles import (
    SWITCH_HOPS_INTER_CLUSTER,
    SWITCH_HOPS_INTRA_CLUSTER,
    SWITCH_HOPS_INTRA_RACK,
    TestbedProfile,
)
from repro.net.memory import MemoryRegion
from repro.obs.metrics import registry_of
from repro.sim.kernel import Environment, Event
from repro.sim.resources import Resource

__all__ = ["Endpoint", "Fabric", "Placement"]


@dataclass(frozen=True)
class Placement:
    """Where an endpoint lives in the data-center topology."""

    cluster: int = 0
    rack: int = 0

    def switch_hops_to(self, other: "Placement") -> int:
        if self.cluster != other.cluster:
            return SWITCH_HOPS_INTER_CLUSTER
        if self.rack != other.rack:
            return SWITCH_HOPS_INTRA_CLUSTER
        return SWITCH_HOPS_INTRA_RACK


class Endpoint:
    """One RDMA NIC port with its registered memory regions.

    Endpoints are created through :meth:`Fabric.add_endpoint`.
    """

    def __init__(self, fabric: "Fabric", name: str, placement: Placement):
        self.fabric = fabric
        self.name = name
        self.placement = placement
        #: Serializes outbound bytes at line rate.  Shared by every QP on
        #: this endpoint, so bulk transfers and foreground traffic contend.
        self.tx_link = Resource(fabric.env, slots=1)
        #: Seconds this endpoint's tx link spent serializing (drives the
        #: fabric's link-utilization metric).
        self.tx_busy_seconds = 0.0
        self.regions: Dict[int, MemoryRegion] = {}
        self.alive = True
        #: Every queue pair touching this endpoint (either side), so a
        #: link fault can flush all of them (see ``repro.faults``).
        self.qps: list = []
        #: Serialization slowdown factor (>= 1).  ``repro.faults`` sets
        #: it above 1 to model a throttled/overheating node; all outbound
        #: wire time stretches by this factor while it is raised.
        self.throttle = 1.0
        #: Whether this NIC can execute chained verb programs as the
        #: responder (see ``repro.net.programs``).  Heterogeneous fleets
        #: have older NICs without chained-WQE support; posting a PROGRAM
        #: at one completes in error and the data path falls back to the
        #: classic two-hop sequence.
        self.supports_programs = True
        #: On-NIC QP-context (ICM) cache.  ``None`` -- the historical
        #: default -- models an always-resident context (no per-QP NIC
        #: state pressure); control-plane modeling installs an LRU of
        #: ``NicSpec.qp_context_cache_entries`` and every verb through
        #: this NIC then touches it (see ``QueuePair._execute``).
        self.qp_context_cache: Optional[QpContextCache] = None
        #: Installed verb-program descriptor shapes (see
        #: ``repro.net.programs.ProgramShapeCache``).  ``None`` until
        #: control-plane modeling is enabled; then program descriptors
        #: whose shape is already installed at this responder ride a
        #: compact wire reference instead of the full descriptor.
        self.program_shapes = None
        if fabric.model_control_plane:
            self.enable_control_plane_model()

    def enable_control_plane_model(self) -> None:
        """Install the per-NIC control-plane state (QP-context cache +
        program-shape cache) on this endpoint.  Idempotent."""
        if self.qp_context_cache is None:
            self.qp_context_cache = QpContextCache(
                self.fabric.profile.nic.qp_context_cache_entries)
        if self.program_shapes is None:
            from repro.net.programs import ProgramShapeCache

            self.program_shapes = ProgramShapeCache()

    def register(self, region: MemoryRegion) -> MemoryRegion:
        """Register a memory region with this NIC.

        First registration re-issues the region's id and token key from
        the fabric's per-run counters, keeping ids bit-identical across
        same-seed runs in one interpreter (region ids reach routing
        tables and replay traces, so leaking a module-global counter
        across runs shows up as schedule divergence).
        """
        region.rebind_identity(*self.fabric.issue_region_identity())
        self.regions[region.region_id] = region
        return region

    def register_timed(self, region: MemoryRegion
                       ) -> Generator[Event, None, MemoryRegion]:
        """Process: register ``region``, charging the NIC's registration
        latency first (base + size-proportional pinning cost).

        The synchronous :meth:`register` keeps the historical free
        path; control-plane-aware callers (``repro.cplane``, the
        connect storm) go through this one so registration cost lands
        on the session-establishment critical path, where Swift
        measures it.
        """
        nic = self.fabric.profile.nic
        yield self.fabric.env.timeout(nic.mr_register_latency(region.size))
        self.fabric.note_mr_registration(region.size)
        return self.register(region)

    def deregister(self, region_id: int) -> None:
        region = self.regions.pop(region_id, None)
        if region is not None:
            region.revoke()

    def drop_qp(self, qp) -> None:
        """Forget one queue pair (QP reclaim path).  Without this, the
        ``qps`` registry grows forever across client churn -- the
        region/QP token leak the control-plane PR fixes."""
        try:
            self.qps.remove(qp)
        except ValueError:
            pass
        if self.qp_context_cache is not None:
            self.qp_context_cache.evict(qp.qp_id)

    def find_region(self, region_id: int) -> Optional[MemoryRegion]:
        return self.regions.get(region_id)

    def fail(self) -> None:
        """Kill the endpoint (VM failure / reclamation finalized).

        All registered regions are revoked; in-flight and future verbs
        targeting it complete in error.
        """
        self.alive = False
        for region in self.regions.values():
            region.revoke()
        self.regions.clear()

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<Endpoint {self.name} {self.placement} {state}>"


class Fabric:
    """The data-center network connecting all endpoints."""

    def __init__(self, env: Environment, profile: TestbedProfile,
                 model_control_plane: bool = False):
        self.env = env
        self.profile = profile
        #: Charge RDMA control-plane costs (QP create/connect handshake,
        #: registration latency, QP-context cache pressure).  Off by
        #: default: the paper's long-lived-client experiments assume an
        #: amortized control plane, and their calibration must not move.
        #: ``repro.cplane.ControlPlane`` flips it (and retrofits already
        #: -created endpoints) when it attaches to a fabric.
        self.model_control_plane = model_control_plane
        self._endpoints: Dict[str, Endpoint] = {}
        #: Shared rack-uplink serializers, created lazily per rack when
        #: the profile declares finite uplink bandwidth.
        self._uplinks: Dict[tuple[int, int], Resource] = {}
        #: Fabric-wide extra one-way propagation delay, seconds.  The
        #: fault injector raises it for the duration of a transient
        #: latency spike (congestion, PFC storm) and lowers it back.
        self.extra_latency_s = 0.0
        #: Per-run region-id / token-key sources (see Endpoint.register).
        self._region_ids = itertools.count(1)
        self._token_keys = itertools.count(0x1000)
        #: Per-run QP-id source: context-cache keys and the cplane event
        #: log carry QP ids, so like region ids they must be scoped to
        #: the fabric (not a module global) to replay bit-identically.
        self._qp_ids = itertools.count(1)
        #: Lifetime control-plane accounting (registration work done
        #: through the timed path).
        self.mr_registrations = 0
        self.mr_registered_bytes = 0
        # Memoized pure-profile costs, keyed by hop count / payload size.
        # The profile is immutable, so the cached floats are the exact
        # values the methods return; transmit() runs once per simulated
        # message and these two lookups replace method calls on it.
        self._one_way_cache: Dict[int, float] = {}
        self._wire_time_cache: Dict[int, float] = {}
        metrics = registry_of(env)
        if metrics is not None:
            self._bytes_moved = metrics.counter("fabric.bytes")
            self._messages = metrics.counter("fabric.messages")
            #: Aggregate serialization seconds across all tx links; the
            #: exporter divides by (endpoints x sim time) for utilization.
            self._tx_busy = metrics.counter("fabric.tx_busy_seconds")
        else:
            self._bytes_moved = None
            self._messages = None
            self._tx_busy = None

    def issue_region_identity(self) -> tuple[int, int]:
        """Next (region_id, token_key) pair for a region registration."""
        return next(self._region_ids), next(self._token_keys)

    def issue_qp_id(self) -> int:
        """Next queue-pair id (per-run counter; see ``_qp_ids``)."""
        return next(self._qp_ids)

    def note_mr_registration(self, region_bytes: int) -> None:
        """Account one timed memory registration."""
        self.mr_registrations += 1
        self.mr_registered_bytes += region_bytes

    def enable_control_plane_model(self) -> None:
        """Turn on control-plane cost modeling, retrofitting endpoints
        created before the switch was flipped.  Idempotent."""
        self.model_control_plane = True
        for endpoint in self._endpoints.values():
            endpoint.enable_control_plane_model()

    def link_utilization(self, endpoint_name: str) -> float:
        """Fraction of simulated time ``endpoint_name``'s tx link spent
        serializing, from per-endpoint busy-seconds accounting."""
        endpoint = self._endpoints[endpoint_name]
        return endpoint.tx_busy_seconds / self.env.now if self.env.now else 0.0

    def _rack_uplink(self, placement: Placement) -> Optional[Resource]:
        if self.profile.fabric.rack_uplink_gbps is None:
            return None
        key = (placement.cluster, placement.rack)
        uplink = self._uplinks.get(key)
        if uplink is None:
            uplink = Resource(self.env, slots=1)
            self._uplinks[key] = uplink
        return uplink

    def add_endpoint(self, name: str,
                     placement: Placement = Placement()) -> Endpoint:
        if name in self._endpoints:
            raise ValueError(f"endpoint name {name!r} already in use")
        endpoint = Endpoint(self, name, placement)
        self._endpoints[name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        return self._endpoints[name]

    def switch_hops(self, src: Endpoint, dst: Endpoint) -> int:
        return src.placement.switch_hops_to(dst.placement)

    def transmit(self, src: Endpoint, dst: Endpoint,
                 wire_payload_bytes: int) -> Generator[Event, None, None]:
        """Process: move one message from ``src`` to ``dst``.

        Charges transmit serialization (holding the source's tx link, so
        concurrent senders queue) followed by propagation across the
        switches.  Propagation does not hold the link: back-to-back
        messages pipeline, which is what makes queue depth effective.
        """
        env = self.env
        yield src.tx_link.acquire()
        try:
            # Throttle is read only after the link is held: the fault
            # injector may raise it while a sender queues for the link.
            wire_time = self._wire_time_cache.get(wire_payload_bytes)
            if wire_time is None:
                wire_time = self.profile.nic.wire_time(wire_payload_bytes)
                self._wire_time_cache[wire_payload_bytes] = wire_time
            wire_time = wire_time * src.throttle
            yield env.timeout(wire_time)
            src.tx_busy_seconds += wire_time
            tx_busy = self._tx_busy
            if tx_busy is not None:
                tx_busy.inc(wire_time)
                self._bytes_moved.inc(wire_payload_bytes)
                self._messages.inc()
        finally:
            src.tx_link.release()
        hops = src.placement.switch_hops_to(dst.placement)
        if hops > SWITCH_HOPS_INTRA_RACK:
            # Cross-rack traffic squeezes through the rack's shared
            # uplink when the fabric is oversubscribed.
            uplink = self._rack_uplink(src.placement)
            if uplink is not None:
                uplink_gbps = self.profile.fabric.rack_uplink_gbps
                yield uplink.acquire()
                try:
                    yield env.timeout(
                        wire_payload_bytes * 8 / (uplink_gbps * 1e9))
                finally:
                    uplink.release()
        base = self._one_way_cache.get(hops)
        if base is None:
            base = self.profile.fabric.one_way_base(hops)
            self._one_way_cache[hops] = base
        yield env.timeout(base + self.extra_latency_s)
