"""Registered memory regions and access tokens.

A cache server registers its memory regions with the NIC and hands the
client one access token per region (paper §4.2, *Connection Setup*).  A
one-sided verb must present a valid token; presenting a stale token (for
example after a region was torn down by a reclamation) raises
:class:`RdmaAccessError`, which is how the client learns it must consult
the cache manager.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

__all__ = ["AccessToken", "MemoryRegion", "RdmaAccessError"]

# Fallback id/key sources for regions that are never registered with a
# fabric endpoint (unit tests poking a region directly).  Registered
# regions are re-issued fabric-scoped ids at ``Endpoint.register`` time
# so that same-seed runs in one interpreter produce identical ids --
# module counters keep ticking between runs, and the leaked ids reach
# routing tables and process names, which breaks bit-identical replay.
_REGION_IDS = itertools.count(1)
_TOKEN_KEYS = itertools.count(0x1000)


class RdmaAccessError(Exception):
    """A verb presented an invalid/stale token or an out-of-bounds address."""


@dataclass(frozen=True)
class AccessToken:
    """Capability to access one registered region remotely."""

    region_id: int
    key: int
    size: int


class MemoryRegion:
    """A byte-addressable region registered with a NIC.

    ``backing`` chooses whether the region actually stores bytes.  The
    functional cache path needs real bytes (a read must return what was
    written); the performance-measurement path moves size-only payloads to
    keep simulations fast, so it registers regions with ``backing=False``.
    """

    def __init__(self, size: int, backing: bool = True):
        if size <= 0:
            raise ValueError(f"region size must be positive, got {size}")
        self.region_id = next(_REGION_IDS)
        self.size = size
        self._buf: Optional[bytearray] = bytearray(size) if backing else None
        self._token = AccessToken(
            region_id=self.region_id, key=next(_TOKEN_KEYS), size=size)
        self._revoked = False
        self._mailbox = None
        self._registered = False

    def rebind_identity(self, region_id: int, key: int) -> None:
        """Re-issue the region id and token key (fabric registration).

        Called once by :meth:`Endpoint.register` before the token can
        escape, replacing the module-counter fallback ids with ids drawn
        from the fabric's own counters so they are deterministic per run.
        """
        if self._registered:
            return
        self._registered = True
        self.region_id = region_id
        self._token = AccessToken(region_id=region_id, key=key, size=self.size)

    def attach_mailbox(self, callback) -> None:
        """Observe remote writes carrying a message object.

        This models a local thread polling the region: a message ring is
        just registered memory, and the owner discovers inbound request /
        response batches by polling it.  ``callback(message)`` runs at
        delivery time (when the payload lands in memory, before the
        writer's completion is generated).
        """
        self._mailbox = callback

    def deliver(self, message: object) -> None:
        """Hand a message object to the attached mailbox, if any."""
        if self._mailbox is not None and message is not None:
            self._mailbox(message)

    @property
    def token(self) -> AccessToken:
        return self._token

    @property
    def has_backing(self) -> bool:
        return self._buf is not None

    def revoke(self) -> None:
        """Invalidate the region's token (deregistration / VM teardown)."""
        self._revoked = True

    def check_access(self, token: AccessToken, offset: int, length: int) -> None:
        """Validate a remote access; raises :class:`RdmaAccessError` on failure."""
        if self._revoked:
            raise RdmaAccessError(
                f"region {self.region_id} token revoked (VM gone?)")
        if token.region_id != self.region_id or token.key != self._token.key:
            raise RdmaAccessError(
                f"token {token} does not match region {self.region_id}")
        if offset < 0 or length < 0 or offset + length > self.size:
            raise RdmaAccessError(
                f"access [{offset}, {offset + length}) outside region of "
                f"size {self.size}")

    def write(self, token: AccessToken, offset: int, data: Optional[bytes],
              length: Optional[int] = None) -> None:
        """Remote write.  ``data`` may be None for size-only payloads."""
        size = len(data) if data is not None else int(length or 0)
        self.check_access(token, offset, size)
        if self._buf is not None and data is not None:
            self._buf[offset:offset + size] = data

    def read(self, token: AccessToken, offset: int,
             length: int) -> Optional[bytes]:
        """Remote read.  Returns None when the region has no backing store."""
        self.check_access(token, offset, length)
        if self._buf is None:
            return None
        return bytes(self._buf[offset:offset + length])

    def local_write(self, offset: int, data: bytes) -> None:
        """Server-local write (used by the cache server's request executor)."""
        if offset < 0 or offset + len(data) > self.size:
            raise RdmaAccessError(
                f"local write [{offset}, {offset + len(data)}) out of bounds")
        if self._buf is not None:
            self._buf[offset:offset + len(data)] = data

    def local_read(self, offset: int, length: int) -> Optional[bytes]:
        """Server-local read."""
        if offset < 0 or offset + length > self.size:
            raise RdmaAccessError(
                f"local read [{offset}, {offset + length}) out of bounds")
        if self._buf is None:
            return None
        return bytes(self._buf[offset:offset + length])

    def __repr__(self) -> str:
        backing = "backed" if self.has_backing else "unbacked"
        return f"<MemoryRegion {self.region_id} size={self.size} {backing}>"
