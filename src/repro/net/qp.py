"""Queue pairs: reliable connected RDMA with bounded in-flight operations.

A :class:`QueuePair` executes one-sided work requests against its remote
endpoint.  It enforces the NIC's queue-depth bound (``max_depth``
in-flight operations -- the ``q`` variable of Table 2), delivers
completions in post order, and turns remote failures (revoked regions,
dead endpoints) into error completions rather than exceptions, matching
how RDMA surfaces transport errors through the completion queue.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from repro.net.fabric import Endpoint
from repro.net.memory import AccessToken, RdmaAccessError
from repro.net.programs import (
    CAS_WORD_BYTES,
    StepOp,
    StepResult,
    VerbProgram,
    resolve_offset,
)
from repro.net.verbs import Completion, RdmaOp, WorkRequest
from repro.obs.metrics import registry_of
from repro.sim.kernel import Environment, Event

__all__ = ["QueuePair", "QueuePairError"]

#: Wire bytes of a READ request / WRITE acknowledgement (header-only).
CONTROL_MESSAGE_BYTES = 0


class QueuePairError(Exception):
    """Raised for QP misuse (e.g. posting on a disconnected QP)."""


class QueuePair:
    """A reliable connection between two endpoints.

    By default a QP is born established -- the historical model, where
    connection setup is free and amortized away (long-lived clients).
    ``deferred=True`` creates the QP *unconnected*: it must go through
    :meth:`establish` (QP create + state transitions + out-of-band
    handshake RTTs, all charged in simulated time) before the first
    verb launches.  A post on an unestablished QP queues in the backlog
    and triggers establishment lazily -- first use connects, which is
    what ``repro.cplane``'s pooled-lazy strategy builds on.
    """

    def __init__(self, env: Environment, local: Endpoint, remote: Endpoint,
                 max_depth: int, deferred: bool = False):
        if max_depth < 1:
            raise QueuePairError(f"max_depth must be >= 1, got {max_depth}")
        nic_limit = local.fabric.profile.nic.max_queue_depth
        if max_depth > nic_limit:
            raise QueuePairError(
                f"max_depth {max_depth} exceeds NIC limit {nic_limit}")
        self.env = env
        self.local = local
        self.remote = remote
        self.max_depth = max_depth
        #: Per-run id: the key NIC context caches and the cplane event
        #: log identify this QP by.
        self.qp_id = local.fabric.issue_qp_id()
        self._in_flight = 0
        self._wr_seq = 0
        self._backlog: Deque[tuple[WorkRequest, Event]] = deque()
        #: Completions pending in-order delivery, keyed by arrival.
        self._connected = True
        #: Whether the connection handshake has completed.  Established
        #: immediately unless ``deferred``.
        self._established = not deferred
        self._establishing: Optional[Event] = None
        #: Simulated instant establishment completed (None = never).
        self.established_at: Optional[float] = env.now if not deferred else None
        #: Fast-teardown flag: a reclaimed QP is gone from its
        #: endpoints' registries and can never be re-established.
        self.reclaimed = False
        #: Transient error state (RDMA "QP in error"): posts flush with
        #: error completions instead of raising, until :meth:`reconnect`.
        self._error_state: Optional[str] = None
        # Register on both endpoints so a link fault on either side can
        # find and flush every QP touching it (see repro.faults).
        local.qps.append(self)
        remote.qps.append(self)
        metrics = registry_of(env)
        if metrics is not None:
            self._wire_latency = metrics.histogram("qp.wire_latency")
            self._ops_posted = metrics.counter("qp.ops_posted")
            self._error_completions = metrics.counter("qp.error_completions")
            self._backlog_depth = metrics.gauge("qp.backlog_depth")
            self._programs_posted = metrics.counter("qp.programs_posted")
            self._program_steps = metrics.counter("qp.program_steps")
            self._program_cas_aborts = metrics.counter(
                "qp.program_cas_aborts")
            self._context_misses = metrics.counter("qp.context_misses")
            self._establishments = metrics.counter("qp.establishments")
            self._establish_latency = metrics.histogram(
                "qp.establish_latency")
        else:
            self._wire_latency = None
            self._ops_posted = None
            self._error_completions = None
            self._backlog_depth = None
            self._programs_posted = None
            self._program_steps = None
            self._program_cas_aborts = None
            self._context_misses = None
            self._establishments = None
            self._establish_latency = None

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def backlog_length(self) -> int:
        return len(self._backlog)

    @property
    def established(self) -> bool:
        return self._established

    def establish(self, batched: bool = False) -> Event:
        """Connect a deferred QP; returns an event firing with True on
        success (False when the handshake failed).

        Charges the full control-plane bill: QP create + the RESET->
        INIT->RTR->RTS transitions through the NIC command interface,
        then ``connect_handshake_rtts`` out-of-band round trips across
        the fabric.  ``batched=True`` applies the shared command-queue
        doorbell discount to the create/modify portion (Swift-style
        batched connect); the handshake RTTs are per-connection either
        way.  Idempotent: an established QP answers immediately, a
        mid-handshake QP returns the in-progress event.
        """
        if self.reclaimed:
            raise QueuePairError("establish() on a reclaimed queue pair")
        env = self.env
        if self._established:
            done = env.event()
            done.succeed(True)
            return done
        if self._establishing is not None:
            return self._establishing
        self._establishing = env.event()
        env.process(
            self._establish_process(batched),
            name=f"qp-establish:{self.local.name}->{self.remote.name}"
                 f":{self.qp_id}")
        return self._establishing

    def _establish_process(self, batched: bool):
        local, remote = self.local, self.remote
        fabric = local.fabric
        nic = fabric.profile.nic
        env = self.env
        started = env.now
        # CREATE_QP + MODIFY_QP transitions through the command queue.
        yield env.timeout(nic.qp_setup_cpu_latency(batched))
        ok = local.alive
        # Out-of-band CM handshake: REQ/REP (+RTU) round trips.
        for _ in range(nic.connect_handshake_rtts):
            if not (local.alive and remote.alive):
                ok = False
                break
            yield from fabric.transmit(local, remote,
                                       nic.connect_message_bytes)
            if not remote.alive:
                ok = False
                break
            yield from fabric.transmit(remote, local,
                                       nic.connect_message_bytes)
        self._established = True
        event, self._establishing = self._establishing, None
        if ok:
            self.established_at = env.now
            # The fresh contexts are resident on both NICs.
            if local.qp_context_cache is not None:
                local.qp_context_cache.touch(self.qp_id)
            if remote.qp_context_cache is not None:
                remote.qp_context_cache.touch(self.qp_id)
            if self._establishments is not None:
                self._establishments.inc()
                self._establish_latency.observe(env.now - started)
            self._drain_backlog()
        else:
            # Handshake failed: the QP lands in the error state, like a
            # REQ that times out; queued posts flush with errors.
            self.inject_error("connect failed: endpoint down")
        if event is not None:
            event.succeed(ok)

    def reclaim(self) -> None:
        """Fast teardown: destroy the QP and release its NIC state.

        Queued-but-unsent requests flush with error completions (as in
        :meth:`inject_error` -- late posters get completion-with-error,
        never an exception, because pooled callers may race a harvest);
        the QP is removed from both endpoints' registries and its
        context evicted from the NIC caches.  This is the reclaim path
        idle harvesting and storm teardown drive, and the fix for the
        historical leak where every QP ever created stayed registered
        on both endpoints forever.
        """
        if self.reclaimed:
            return
        self.reclaimed = True
        self._error_state = "queue pair reclaimed"
        self._flush_backlog(self._error_state)
        self.local.drop_qp(self)
        self.remote.drop_qp(self)

    def disconnect(self) -> None:
        """Tear the QP down; queued-but-unsent requests fail immediately.

        Operations already launched keep running (their wire traffic is
        committed) and deliver their completions normally; only the
        unsent backlog is failed here.
        """
        self._connected = False
        self._flush_backlog("queue pair disconnected")

    def _flush_backlog(self, reason: str) -> None:
        while self._backlog:
            wr, event = self._backlog.popleft()
            completion = self._error_completion(wr, reason)
            if self._error_completions is not None:
                self._error_completions.inc()
            event.succeed(completion)
        if self._backlog_depth is not None:
            self._backlog_depth.set(0)

    @property
    def in_error(self) -> bool:
        return self._error_state is not None

    def inject_error(self, reason: str = "queue pair in error state") -> None:
        """Put the QP into the RDMA *error* state (link fault, remote
        QP teardown).

        The unsent backlog flushes with error completions now, and every
        later :meth:`post` completes-with-error immediately -- how real
        RC QPs surface a broken connection through the completion queue
        -- until :meth:`reconnect` re-establishes the connection.
        Operations already on the wire keep running; if the fault also
        killed the remote endpoint they error there.
        """
        self._error_state = reason
        self._flush_backlog(reason)

    def reconnect(self) -> None:
        """Leave the error state (connection re-established).

        Mirrors the QP recycle a host does after a transport error:
        both endpoints must still be alive, and the QP must not have
        been deliberately torn down with :meth:`disconnect`.
        """
        if not self._connected:
            raise QueuePairError("reconnect() on a disconnected queue pair")
        if not (self.local.alive and self.remote.alive):
            raise QueuePairError("reconnect() with a dead endpoint")
        self._error_state = None

    def post(self, wr: WorkRequest) -> Event:
        """Post a work request; returns an event that fires with its
        :class:`Completion`.

        If ``max_depth`` operations are already in flight the request
        waits in the send queue (FIFO), exactly the behaviour the
        fully-loaded-QP optimization (§4.3) tunes around.
        """
        if not self._connected:
            raise QueuePairError("post() on a disconnected queue pair")
        env = self.env
        wr.posted_at = env.now
        self._wr_seq += 1
        wr.wr_id = self._wr_seq
        if self._ops_posted is not None:
            self._ops_posted.inc()
        completion_event = env.event()
        if self._error_state is not None:
            # Completion-with-error flush: the post is accepted (callers
            # keep their completion-driven control flow) but fails on the
            # next kernel step, like a work request hitting an errored QP.
            if self._error_completions is not None:
                self._error_completions.inc()
            completion_event.succeed(
                self._error_completion(wr, self._error_state))
        elif not self._established:
            # Lazy connect: the first use of a deferred QP triggers
            # establishment; the request waits in the send queue until
            # the handshake completes.
            self._backlog.append((wr, completion_event))
            if self._backlog_depth is not None:
                self._backlog_depth.set(len(self._backlog))
            self.establish()
        elif self._in_flight < self.max_depth:
            self._launch(wr, completion_event)
        else:
            self._backlog.append((wr, completion_event))
            if self._backlog_depth is not None:
                self._backlog_depth.set(len(self._backlog))
        return completion_event

    def _drain_backlog(self) -> None:
        """Launch queued requests up to the depth bound (post-establish)."""
        while (self._backlog and self._connected
               and self._error_state is None
               and self._in_flight < self.max_depth):
            wr, event = self._backlog.popleft()
            self._launch(wr, event)
        if self._backlog_depth is not None:
            self._backlog_depth.set(len(self._backlog))

    def post_program(self, program: VerbProgram, token: AccessToken,
                     context: object = None,
                     payload_object: object = None) -> Event:
        """Post a chained verb program as one work request.

        The whole chain travels in one descriptor message, executes at
        the remote NIC, and answers with one completion -- partial if a
        step faulted or a CAS guard aborted the chain (see
        :mod:`repro.net.programs`).  ``payload_object`` is delivered to
        the target region's mailbox if the program lands any WRITE step
        (batch correlation for ring-style submissions).
        """
        wr = WorkRequest(
            RdmaOp.PROGRAM, token, 0, program.request_wire_bytes,
            context=context, payload_object=payload_object, program=program)
        return self.post(wr)

    def post_many(self, wrs: Sequence[WorkRequest]) -> List[Event]:
        """Doorbell-batched submission of several work requests.

        One MMIO doorbell and one WQE-ring fetch cover the batch: the
        first request pays the full per-message processing charge, every
        follower the discounted one (``NicSpec.doorbell_batch_discount``).
        Completions stay per-request, in post order, each carrying its
        own ``context`` -- batch correlation survives the shared
        doorbell.
        """
        events: List[Event] = []
        for index, wr in enumerate(wrs):
            if index:
                wr.doorbell_batched = True
            events.append(self.post(wr))
        return events

    def _context_penalty(self, endpoint: Endpoint) -> float:
        """Touch ``endpoint``'s NIC QP-context cache for this QP.

        Returns the extra service time (0.0 on a hit or when the
        endpoint does not model context pressure).  With control-plane
        modeling on, every verb pays this on both NICs -- the per-QP
        state pressure that makes huge naive QP counts slow even after
        all connections are established.
        """
        cache = endpoint.qp_context_cache
        if cache is None or cache.touch(self.qp_id):
            return 0.0
        if self._context_misses is not None:
            self._context_misses.inc()
        return endpoint.fabric.profile.nic.qp_context_miss_penalty

    def _launch(self, wr: WorkRequest, completion_event: Event) -> None:
        self._in_flight += 1
        self.env.process(
            self._execute(wr, completion_event),
            name=f"qp:{self.local.name}->{self.remote.name}:{wr.wr_id}")

    def _finish(self, wr: WorkRequest, completion_event: Event,
                completion: Completion) -> None:
        self._in_flight -= 1
        if self._backlog and self._connected:
            next_wr, next_event = self._backlog.popleft()
            if self._backlog_depth is not None:
                self._backlog_depth.set(len(self._backlog))
            self._launch(next_wr, next_event)
        completion.completed_at = self.env.now
        if self._wire_latency is not None:
            self._wire_latency.observe(self.env.now - wr.posted_at)
            if not completion.ok:
                self._error_completions.inc()
        completion_event.succeed(completion)

    def _execute(self, wr: WorkRequest, completion_event: Event):
        """The verb's life on the wire.  See DESIGN.md §4 for the budget."""
        local = self.local
        remote = self.remote
        fabric = local.fabric
        nic = fabric.profile.nic
        env = self.env

        if not local.alive:
            # A dead requester posts nothing: its NIC is gone.
            self._finish(wr, completion_event,
                         self._error_completion(wr, "local endpoint down"))
            return

        # NIC work-request processing on the requester.  Followers of a
        # doorbell batch amortize the MMIO + WQE-ring fetch.
        per_message = nic.per_message_processing
        if wr.doorbell_batched:
            per_message *= nic.doorbell_batch_discount
        penalty = self._context_penalty(local)
        if penalty:
            per_message += penalty
        yield env.timeout(per_message)

        if wr.op is RdmaOp.PROGRAM:
            yield from self._execute_program(wr, completion_event)
            return
        if wr.op is RdmaOp.CAS:
            yield from self._execute_cas(wr, completion_event)
            return

        if wr.op is RdmaOp.WRITE:
            # Payload acquisition: inline rides in the WQE; otherwise the
            # NIC fetches it from host memory over PCIe.  This asymmetry
            # is why small writes beat small reads in Figure 11.
            if not nic.can_inline(wr.payload_bytes):
                yield env.timeout(nic.dma_fetch(wr.payload_bytes))
            request_bytes = wr.payload_bytes
        else:
            request_bytes = CONTROL_MESSAGE_BYTES

        yield from fabric.transmit(local, remote, request_bytes)

        if not remote.alive:
            self._finish(wr, completion_event,
                         self._error_completion(wr, "remote endpoint down"))
            return

        # Responder NIC looks up this QP's connection context too.
        penalty = self._context_penalty(remote)
        if penalty:
            yield env.timeout(penalty)

        region = remote.find_region(wr.token.region_id)
        if region is None:
            self._finish(
                wr, completion_event,
                self._error_completion(
                    wr, f"no region {wr.token.region_id} at {remote.name}"))
            return

        data: Optional[bytes] = None
        try:
            if wr.op is RdmaOp.WRITE:
                yield env.timeout(nic.rx_dma)
                region.write(wr.token, wr.remote_offset, wr.data,
                             length=wr.payload_bytes)
                region.deliver(wr.payload_object)
                response_bytes = CONTROL_MESSAGE_BYTES
            else:
                # Responder NIC pulls the payload from host memory.
                yield env.timeout(nic.dma_fetch(wr.payload_bytes))
                data = region.read(wr.token, wr.remote_offset, wr.payload_bytes)
                response_bytes = wr.payload_bytes
        except RdmaAccessError as exc:
            self._finish(wr, completion_event,
                         self._error_completion(wr, str(exc)))
            return

        yield from fabric.transmit(remote, local, response_bytes)

        if wr.op is RdmaOp.READ:
            # Deliver the payload into the requester's memory.
            yield env.timeout(nic.rx_dma)

        self._finish(
            wr, completion_event,
            Completion(wr_id=wr.wr_id, op=wr.op, ok=True, data=data,
                       context=wr.context))

    def _execute_program(self, wr: WorkRequest, completion_event: Event):
        """Execute a chained verb program: one wire round trip plus
        per-step remote-NIC service time.

        The descriptor (plus inline WRITE operands) crosses the fabric
        once; the remote NIC walks the chain charging
        ``program_step_latency`` per step plus each step's DMA cost, all
        folded into a *single* service timeout (one trigger->resume edge
        per program -- the happens-before detector and the replay
        sanitizer see program execution as one atomic remote event, not
        a per-step flurry); one response returns the produced payloads.

        Memory sampling: non-guard steps read/write at descriptor
        arrival; CAS guards (``compare_from``) re-sample *after* the
        service window, so a write that lands while the chain executes
        is visible to them -- that is the self-verifying read that makes
        dependent GETs safe against concurrent migration.  A fault or
        guard mismatch aborts the chain and surfaces a partial
        completion.
        """
        local = self.local
        remote = self.remote
        fabric = local.fabric
        nic = fabric.profile.nic
        env = self.env
        program = wr.program
        assert program is not None
        if self._programs_posted is not None:
            self._programs_posted.inc()

        # Gather WRITE operands: small ones ride inline in the
        # descriptor, larger ones are DMA-fetched before it leaves.
        write_bytes = program.write_payload_bytes
        if write_bytes and not nic.can_inline(write_bytes):
            yield env.timeout(nic.dma_fetch(write_bytes))

        # Descriptor amortization: when the responder already has this
        # program *shape* installed (any earlier connection posted it),
        # the request carries a compact shape reference plus operands
        # instead of the full per-step descriptors.
        request_bytes = program.request_wire_bytes
        shapes = remote.program_shapes
        if shapes is not None and shapes.install(program.shape_key):
            request_bytes = program.cached_request_wire_bytes

        yield from fabric.transmit(local, remote, request_bytes)

        if not remote.alive:
            self._finish(wr, completion_event,
                         self._error_completion(wr, "remote endpoint down"))
            return
        if not remote.supports_programs:
            self._finish(wr, completion_event, self._error_completion(
                wr, f"{remote.name} does not support verb programs"))
            return
        region = remote.find_region(wr.token.region_id)
        if region is None:
            self._finish(
                wr, completion_event,
                self._error_completion(
                    wr, f"no region {wr.token.region_id} at {remote.name}"))
            return

        steps = program.steps
        produced: List[Optional[bytes]] = [None] * len(steps)
        results: Dict[int, StepResult] = {}
        guards: List[tuple[int, object, int]] = []
        service = self._context_penalty(remote)
        error: Optional[str] = None
        cas_aborted = False
        wrote = False

        for index, step in enumerate(steps):
            service += nic.program_step_latency
            offset = resolve_offset(step, tuple(produced))
            if step.op is StepOp.CAS and step.compare_from is not None:
                # Self-verifying guard: evaluated after the service
                # window, against then-current memory.
                service += nic.dma_fetch(step.length)
                guards.append((index, step, offset))
                continue
            try:
                if step.op is StepOp.READ:
                    if step.length:
                        service += nic.dma_fetch(step.length)
                    data = region.read(wr.token, offset, step.length)
                    produced[index] = data
                    results[index] = StepResult(index, step.op, True,
                                                offset, data)
                elif step.op is StepOp.WRITE:
                    service += nic.rx_dma
                    region.write(wr.token, offset, step.data,
                                 length=step.length)
                    wrote = True
                    results[index] = StepResult(index, step.op, True, offset)
                else:  # CAS against a static expected value
                    service += nic.dma_fetch(step.length)
                    current = region.read(wr.token, offset, step.length)
                    matched = (current is None or step.compare is None
                               or current == step.compare)
                    produced[index] = current
                    results[index] = StepResult(
                        index, step.op, matched, offset, current,
                        None if matched else "cas mismatch")
                    if matched and step.data is not None:
                        region.write(wr.token, offset, step.data)
                    if not matched:
                        cas_aborted = True
                        error = f"program aborted by CAS at step {index}"
                        break
            except RdmaAccessError as exc:
                error = str(exc)
                results[index] = StepResult(index, step.op, False, offset,
                                            None, error)
                break

        # The whole remote-side chain is one service interval.
        yield env.timeout(service)

        if error is None and not cas_aborted:
            try:
                # The region may have been revoked while the chain ran
                # (migration finalized, VM reclaimed mid-program): the
                # chain aborts and nothing is acked.
                region.check_access(wr.token, 0, 0)
                for index, step, offset in guards:
                    current = region.read(wr.token, offset, step.length)
                    expected = produced[step.compare_from]
                    matched = (current is None or expected is None
                               or current == expected)
                    results[index] = StepResult(
                        index, StepOp.CAS, matched, offset, current,
                        None if matched else
                        "cas guard: word changed mid-program")
                    if matched and step.data is not None:
                        region.write(wr.token, offset, step.data)
                    if not matched:
                        cas_aborted = True
                        error = (f"program aborted by CAS guard at "
                                 f"step {index}")
                        break
            except RdmaAccessError as exc:
                error = str(exc)

        step_results = tuple(results[i] for i in sorted(results))
        executed = sum(1 for r in step_results if r.ok)
        if self._program_steps is not None:
            self._program_steps.inc(len(step_results))
            if cas_aborted:
                self._program_cas_aborts.inc()
        ok = error is None and not cas_aborted

        response_bytes = (program.response_wire_bytes if ok
                          else program.response_bytes_through(executed))
        yield from fabric.transmit(remote, local, response_bytes)

        data: Optional[bytes] = None
        delivered_read = False
        for result in step_results:
            if result.op is StepOp.READ and result.ok:
                data = result.data
                delivered_read = True
        if delivered_read:
            yield env.timeout(nic.rx_dma)
        if ok and wrote:
            region.deliver(wr.payload_object)

        self._finish(wr, completion_event, Completion(
            wr_id=wr.wr_id, op=RdmaOp.PROGRAM, ok=ok,
            data=data if ok else None, error=error, context=wr.context,
            steps_completed=executed, step_results=step_results,
            cas_aborted=cas_aborted))

    def _execute_cas(self, wr: WorkRequest, completion_event: Event):
        """Standalone single-word compare-and-swap (e.g. remote-side
        eviction marking).  ``wr.data`` is the swap value, ``wr.compare``
        the expected word; the completion's ``data`` is the observed
        original, with ``cas_aborted`` set on mismatch."""
        local = self.local
        remote = self.remote
        fabric = local.fabric
        nic = fabric.profile.nic
        env = self.env

        # Both operands ride inline in the work request.
        yield from fabric.transmit(local, remote, 2 * CAS_WORD_BYTES)
        if not remote.alive:
            self._finish(wr, completion_event,
                         self._error_completion(wr, "remote endpoint down"))
            return
        region = remote.find_region(wr.token.region_id)
        if region is None:
            self._finish(
                wr, completion_event,
                self._error_completion(
                    wr, f"no region {wr.token.region_id} at {remote.name}"))
            return
        try:
            yield env.timeout(nic.program_step_latency
                              + nic.dma_fetch(CAS_WORD_BYTES)
                              + self._context_penalty(remote))
            current = region.read(wr.token, wr.remote_offset, CAS_WORD_BYTES)
            matched = (current is None or wr.compare is None
                       or current == wr.compare)
            if matched and wr.data is not None:
                region.write(wr.token, wr.remote_offset, wr.data)
        except RdmaAccessError as exc:
            self._finish(wr, completion_event,
                         self._error_completion(wr, str(exc)))
            return
        yield from fabric.transmit(remote, local, CAS_WORD_BYTES)
        yield env.timeout(nic.rx_dma)
        if self._program_cas_aborts is not None and not matched:
            self._program_cas_aborts.inc()
        self._finish(wr, completion_event, Completion(
            wr_id=wr.wr_id, op=RdmaOp.CAS, ok=matched, data=current,
            error=None if matched else "cas mismatch", context=wr.context,
            cas_aborted=not matched))

    def _error_completion(self, wr: WorkRequest, error: str) -> Completion:
        return Completion(wr_id=wr.wr_id, op=wr.op, ok=False, error=error,
                          context=wr.context, completed_at=self.env.now)
