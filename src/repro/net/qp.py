"""Queue pairs: reliable connected RDMA with bounded in-flight operations.

A :class:`QueuePair` executes one-sided work requests against its remote
endpoint.  It enforces the NIC's queue-depth bound (``max_depth``
in-flight operations -- the ``q`` variable of Table 2), delivers
completions in post order, and turns remote failures (revoked regions,
dead endpoints) into error completions rather than exceptions, matching
how RDMA surfaces transport errors through the completion queue.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.net.fabric import Endpoint
from repro.net.memory import RdmaAccessError
from repro.net.verbs import Completion, RdmaOp, WorkRequest
from repro.obs.metrics import registry_of
from repro.sim.kernel import Environment, Event

__all__ = ["QueuePair", "QueuePairError"]

#: Wire bytes of a READ request / WRITE acknowledgement (header-only).
CONTROL_MESSAGE_BYTES = 0


class QueuePairError(Exception):
    """Raised for QP misuse (e.g. posting on a disconnected QP)."""


class QueuePair:
    """A reliable connection between two endpoints."""

    def __init__(self, env: Environment, local: Endpoint, remote: Endpoint,
                 max_depth: int):
        if max_depth < 1:
            raise QueuePairError(f"max_depth must be >= 1, got {max_depth}")
        nic_limit = local.fabric.profile.nic.max_queue_depth
        if max_depth > nic_limit:
            raise QueuePairError(
                f"max_depth {max_depth} exceeds NIC limit {nic_limit}")
        self.env = env
        self.local = local
        self.remote = remote
        self.max_depth = max_depth
        self._in_flight = 0
        self._wr_seq = 0
        self._backlog: Deque[tuple[WorkRequest, Event]] = deque()
        #: Completions pending in-order delivery, keyed by arrival.
        self._connected = True
        #: Transient error state (RDMA "QP in error"): posts flush with
        #: error completions instead of raising, until :meth:`reconnect`.
        self._error_state: Optional[str] = None
        # Register on both endpoints so a link fault on either side can
        # find and flush every QP touching it (see repro.faults).
        local.qps.append(self)
        remote.qps.append(self)
        metrics = registry_of(env)
        if metrics is not None:
            self._wire_latency = metrics.histogram("qp.wire_latency")
            self._ops_posted = metrics.counter("qp.ops_posted")
            self._error_completions = metrics.counter("qp.error_completions")
            self._backlog_depth = metrics.gauge("qp.backlog_depth")
        else:
            self._wire_latency = None
            self._ops_posted = None
            self._error_completions = None
            self._backlog_depth = None

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def backlog_length(self) -> int:
        return len(self._backlog)

    def disconnect(self) -> None:
        """Tear the QP down; queued-but-unsent requests fail immediately.

        Operations already launched keep running (their wire traffic is
        committed) and deliver their completions normally; only the
        unsent backlog is failed here.
        """
        self._connected = False
        self._flush_backlog("queue pair disconnected")

    def _flush_backlog(self, reason: str) -> None:
        while self._backlog:
            wr, event = self._backlog.popleft()
            completion = self._error_completion(wr, reason)
            if self._error_completions is not None:
                self._error_completions.inc()
            event.succeed(completion)
        if self._backlog_depth is not None:
            self._backlog_depth.set(0)

    @property
    def in_error(self) -> bool:
        return self._error_state is not None

    def inject_error(self, reason: str = "queue pair in error state") -> None:
        """Put the QP into the RDMA *error* state (link fault, remote
        QP teardown).

        The unsent backlog flushes with error completions now, and every
        later :meth:`post` completes-with-error immediately -- how real
        RC QPs surface a broken connection through the completion queue
        -- until :meth:`reconnect` re-establishes the connection.
        Operations already on the wire keep running; if the fault also
        killed the remote endpoint they error there.
        """
        self._error_state = reason
        self._flush_backlog(reason)

    def reconnect(self) -> None:
        """Leave the error state (connection re-established).

        Mirrors the QP recycle a host does after a transport error:
        both endpoints must still be alive, and the QP must not have
        been deliberately torn down with :meth:`disconnect`.
        """
        if not self._connected:
            raise QueuePairError("reconnect() on a disconnected queue pair")
        if not (self.local.alive and self.remote.alive):
            raise QueuePairError("reconnect() with a dead endpoint")
        self._error_state = None

    def post(self, wr: WorkRequest) -> Event:
        """Post a work request; returns an event that fires with its
        :class:`Completion`.

        If ``max_depth`` operations are already in flight the request
        waits in the send queue (FIFO), exactly the behaviour the
        fully-loaded-QP optimization (§4.3) tunes around.
        """
        if not self._connected:
            raise QueuePairError("post() on a disconnected queue pair")
        env = self.env
        wr.posted_at = env.now
        self._wr_seq += 1
        wr.wr_id = self._wr_seq
        if self._ops_posted is not None:
            self._ops_posted.inc()
        completion_event = env.event()
        if self._error_state is not None:
            # Completion-with-error flush: the post is accepted (callers
            # keep their completion-driven control flow) but fails on the
            # next kernel step, like a work request hitting an errored QP.
            if self._error_completions is not None:
                self._error_completions.inc()
            completion_event.succeed(
                self._error_completion(wr, self._error_state))
        elif self._in_flight < self.max_depth:
            self._launch(wr, completion_event)
        else:
            self._backlog.append((wr, completion_event))
            if self._backlog_depth is not None:
                self._backlog_depth.set(len(self._backlog))
        return completion_event

    def _launch(self, wr: WorkRequest, completion_event: Event) -> None:
        self._in_flight += 1
        self.env.process(
            self._execute(wr, completion_event),
            name=f"qp:{self.local.name}->{self.remote.name}:{wr.wr_id}")

    def _finish(self, wr: WorkRequest, completion_event: Event,
                completion: Completion) -> None:
        self._in_flight -= 1
        if self._backlog and self._connected:
            next_wr, next_event = self._backlog.popleft()
            if self._backlog_depth is not None:
                self._backlog_depth.set(len(self._backlog))
            self._launch(next_wr, next_event)
        completion.completed_at = self.env.now
        if self._wire_latency is not None:
            self._wire_latency.observe(self.env.now - wr.posted_at)
            if not completion.ok:
                self._error_completions.inc()
        completion_event.succeed(completion)

    def _execute(self, wr: WorkRequest, completion_event: Event):
        """The verb's life on the wire.  See DESIGN.md §4 for the budget."""
        local = self.local
        remote = self.remote
        fabric = local.fabric
        nic = fabric.profile.nic
        env = self.env

        if not local.alive:
            # A dead requester posts nothing: its NIC is gone.
            self._finish(wr, completion_event,
                         self._error_completion(wr, "local endpoint down"))
            return

        # NIC work-request processing on the requester.
        yield env.timeout(nic.per_message_processing)

        if wr.op is RdmaOp.WRITE:
            # Payload acquisition: inline rides in the WQE; otherwise the
            # NIC fetches it from host memory over PCIe.  This asymmetry
            # is why small writes beat small reads in Figure 11.
            if not nic.can_inline(wr.payload_bytes):
                yield env.timeout(nic.dma_fetch(wr.payload_bytes))
            request_bytes = wr.payload_bytes
        else:
            request_bytes = CONTROL_MESSAGE_BYTES

        yield from fabric.transmit(local, remote, request_bytes)

        if not remote.alive:
            self._finish(wr, completion_event,
                         self._error_completion(wr, "remote endpoint down"))
            return

        region = remote.find_region(wr.token.region_id)
        if region is None:
            self._finish(
                wr, completion_event,
                self._error_completion(
                    wr, f"no region {wr.token.region_id} at {remote.name}"))
            return

        data: Optional[bytes] = None
        try:
            if wr.op is RdmaOp.WRITE:
                yield env.timeout(nic.rx_dma)
                region.write(wr.token, wr.remote_offset, wr.data,
                             length=wr.payload_bytes)
                region.deliver(wr.payload_object)
                response_bytes = CONTROL_MESSAGE_BYTES
            else:
                # Responder NIC pulls the payload from host memory.
                yield env.timeout(nic.dma_fetch(wr.payload_bytes))
                data = region.read(wr.token, wr.remote_offset, wr.payload_bytes)
                response_bytes = wr.payload_bytes
        except RdmaAccessError as exc:
            self._finish(wr, completion_event,
                         self._error_completion(wr, str(exc)))
            return

        yield from fabric.transmit(remote, local, response_bytes)

        if wr.op is RdmaOp.READ:
            # Deliver the payload into the requester's memory.
            yield env.timeout(nic.rx_dma)

        self._finish(
            wr, completion_event,
            Completion(wr_id=wr.wr_id, op=wr.op, ok=True, data=data,
                       context=wr.context))

    def _error_completion(self, wr: WorkRequest, error: str) -> Completion:
        return Completion(wr_id=wr.wr_id, op=wr.op, ok=False, error=error,
                          context=wr.context, completed_at=self.env.now)
