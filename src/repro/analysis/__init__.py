"""Determinism & sim-safety analysis suite.

Two prongs guard the repository's determinism contract (bit-identical
fault logs, shard replays, and content-addressed sweep caching):

* **Static** -- :mod:`repro.analysis.linter`, an AST linter with
  repo-specific rules (wall-clock use, unseeded randomness, unordered
  iteration, blocking I/O in sim processes, mutable spec defaults,
  unsorted digest JSON).  Run it as ``python -m repro lint``.
* **Dynamic** -- :mod:`repro.analysis.hb`, a happens-before race
  detector built on vector clocks over the sim kernel's spawn / join /
  event / resource edges, and :mod:`repro.analysis.sanitize`, a
  replay-divergence sanitizer that runs a workload twice from one seed
  and bisects the first diverging kernel event.  Run the sanitizer as
  ``python -m repro sanitize``.

Both prongs report through :mod:`repro.analysis.report` (text or JSON)
and share the exit-code contract: 0 clean, 1 findings, 2 internal error.
"""

from repro.analysis.hb import RaceDetector, RaceFinding, Tracked
from repro.analysis.linter import lint_paths, lint_source
from repro.analysis.report import Finding, format_findings
from repro.analysis.rules import RULES, Rule
from repro.analysis.sanitize import (
    DivergenceReport,
    sanitize,
    sanitize_schedulers,
)

__all__ = [
    "DivergenceReport",
    "Finding",
    "RULES",
    "RaceDetector",
    "RaceFinding",
    "Rule",
    "Tracked",
    "format_findings",
    "lint_paths",
    "lint_source",
    "sanitize",
    "sanitize_schedulers",
]
