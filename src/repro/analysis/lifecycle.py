"""L-rules: resource-lifecycle analyzers on the flow CFG.

Every rule here is about a resource whose acquire/release must balance
on *every* path -- normal completion, exception unwind, and generator
interrupt (`Process.interrupt` throws into a sim process at any yield).
The obligation analysis runs the forward dataflow engine with may-join:
an acquire arms an obligation keyed by the resource expression; a
matching release (or an escape -- returning/storing/passing the
resource hands ownership elsewhere) discharges it; any obligation still
live at the normal or exceptional exit is a leak, reported at the
acquire site so a suppression comment on that line applies.

The CFG's abrupt-edge semantics do the subtle work: an ``interrupt``
edge carries the state from *before* its statement, so an interrupt
during ``yield x.acquire()`` itself (nothing held yet) is not a leak,
while an interrupt at the next suspension point (slot held) is -- which
is exactly the discipline the production fix demands::

    yield window.acquire()
    try:
        yield do_work()        # interrupt here runs the finally
    finally:
        window.release()

Rules:

* **L001** QueuePair/endpoint acquired and dropped without
  ``reclaim``/``disconnect``/``detach`` on some path.
* **L002** Event callback registered on a foreign event with no detach
  anywhere in the function (the AnyOf/AllOf losing-children leak
  class PR 6 fixed by hand).
* **L003** metrics instrument constructed directly instead of through
  a ``MetricsRegistry`` (orphan series never reach snapshots).
* **L004** admission verdict handled on the delay path without
  releasing the queue reservation on every path.
* **L005** ``yield x.acquire()`` without a ``finally``-protected
  ``x.release()`` covering every later suspension point.
* **L006** sim process spawned from inside another process with the
  handle discarded: its failure can never be joined or observed.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis import flow
from repro.analysis.flow import Cfg, CfgNode, ModuleGraph, Resolver, State
from repro.analysis.report import Finding
from repro.analysis.rules import RULES

__all__ = ["analyze_lifecycle"]

#: Method names that release/retire each resource class.
_QP_ACQUIRE_CALLS = {"create_qp", "attach"}
_QP_RELEASES = {"reclaim", "disconnect", "detach", "close"}
_LOCK_RELEASES = {"release"}

#: Direct metrics-instrument constructors (canonical, import-resolved).
_METRIC_TYPES = {"Counter", "Gauge", "Histogram"}
_METRIC_CANONICAL_PREFIX = "repro.obs.metrics."

#: Callback detach spellings that satisfy L002.
_DETACH_ATTRS = {"remove", "discard", "clear", "remove_callback", "detach"}


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    """Call nodes in ``node``, not descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    if isinstance(node, ast.Call):
        yield node
    while stack:
        item = stack.pop()
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(item, ast.Call):
            yield item
        stack.extend(ast.iter_child_nodes(item))


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _arg_names(call: ast.Call) -> Set[str]:
    """Simple names passed (possibly nested) as arguments to ``call``."""
    out: Set[str] = set()
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        out.update(_names_in(arg))
    return out


def _head(dotted: str) -> str:
    return dotted.split(".", 1)[0]


def _yielded_call(stmt: ast.stmt) -> Optional[ast.Call]:
    """The call inside ``yield <call>`` / ``yield from <call>`` when
    ``stmt`` is an expression statement or simple assignment of one."""
    value: Optional[ast.expr] = None
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        value = stmt.value
    if isinstance(value, ast.Yield) and isinstance(value.value, ast.Call):
        return value.value
    if isinstance(value, ast.YieldFrom) and isinstance(value.value, ast.Call):
        return value.value
    return None


class _ObligationKey:
    """State keys are strings ``rule|resource`` (latent L004 keys use
    ``L004?|resource`` until a delay-branch arms them)."""

    @staticmethod
    def make(rule: str, resource: str, latent: bool = False) -> str:
        return f"{rule}{'?' if latent else ''}|{resource}"

    @staticmethod
    def split(key: str) -> Tuple[str, str, bool]:
        rule, _, resource = key.partition("|")
        latent = rule.endswith("?")
        return rule.rstrip("?"), resource, latent


class _FunctionLifecycle:
    """Obligation dataflow (L001/L004/L005) over one function."""

    def __init__(self, path: str, qualname: str, func: flow.FuncDef,
                 cls: Optional[str], graph: ModuleGraph,
                 resolver: Resolver):
        self.path = path
        self.qualname = qualname
        self.func = func
        self.cls = cls
        self.graph = graph
        self.resolver = resolver
        self.cfg: Cfg = flow.build_cfg(func, qualname)
        #: acquire node id -> (rule, resource, lineno, col)
        self.anchors: Dict[int, Tuple[str, str, int, int]] = {}
        #: verdict variable -> admission base (for L004 refinement).
        self.verdicts: Dict[str, str] = {}
        #: latent L004 obligations armed at function entry (verdict
        #: arrived as a parameter; the admit() ran in the caller).
        self.entry_state: Dict[str, FrozenSet[object]] = {}
        self._scan_verdicts()

    # -- pre-pass ------------------------------------------------------

    def _scan_verdicts(self) -> None:
        for node in ast.walk(self.func):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            value = node.value
            if not (isinstance(target, ast.Tuple) and target.elts
                    and isinstance(target.elts[0], ast.Name)):
                continue
            if (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "admit"):
                base = flow.dotted_name(value.func.value)
                if base is not None:
                    self.verdicts[target.elts[0].id] = base
        self._scan_param_verdicts()

    def _scan_param_verdicts(self) -> None:
        """Interprocedural L004 shape: the admit() ran in the caller and
        this function received the verdict as a parameter (the
        TenantTier._start -> _request handoff).  Arm a latent
        reservation at entry when (a) a parameter is compared against
        ADMIT/DELAY and (b) this function releases some
        ``<base>.admission`` itself -- evidence it owns the duty."""
        params = {a.arg for a in self.func.args.args
                  + self.func.args.kwonlyargs + self.func.args.posonlyargs}
        release_bases = []
        for node in ast.walk(self.func):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _LOCK_RELEASES):
                base = flow.dotted_name(node.func.value)
                if base is not None and base.rsplit(".", 1)[-1] == "admission":
                    release_bases.append(base)
        if not release_bases:
            return
        for node in ast.walk(self.func):
            if not (isinstance(node, ast.Compare) and len(node.ops) == 1
                    and isinstance(node.left, ast.Name)
                    and node.left.id in params
                    and node.left.id not in self.verdicts):
                continue
            token = (flow.dotted_name(node.comparators[0])
                     or "").rsplit(".", 1)[-1].upper()
            if token not in ("ADMIT", "DELAY"):
                continue
            base = release_bases[0]
            self.verdicts[node.left.id] = base
            anchor = -(len(self.entry_state) + 1)
            key = _ObligationKey.make("L004", base, latent=True)
            self.entry_state[key] = frozenset({anchor})
            self.anchors[anchor] = ("L004", base, node.lineno,
                                    node.col_offset)

    # -- acquire recognition ------------------------------------------

    def _acquires(self, stmt: ast.stmt,
                  node_id: int) -> List[Tuple[str, str]]:
        """(state key, resource) obligations armed by ``stmt``."""
        out: List[Tuple[str, str]] = []
        # L005: `yield <base>.acquire()` (bare or assigned).
        call = _yielded_call(stmt)
        if (call is not None and isinstance(call.func, ast.Attribute)):
            attr = call.func.attr
            base = flow.dotted_name(call.func.value)
            # Inside a `*acquire*`-named helper the bare acquire IS the
            # function's contract; the obligation is charged at each
            # call site instead (see the helper branch below).
            own_name = self.qualname.rsplit(".", 1)[-1]
            if (attr == "acquire" and base is not None
                    and "acquire" not in own_name):
                out.append((_ObligationKey.make("L005", base), base))
            elif ("acquire" in attr and attr != "acquire"
                  and self._is_local_call(call)):
                # `yield from self._acquire_slot(tenant)`: a local
                # helper acquires on the caller's behalf; the paired
                # local `...release...(same arg)` discharges it.
                res = self._helper_resource(call)
                if res is not None:
                    out.append((_ObligationKey.make("L005", res), res))
        # L001 / L004 arm on assignments.
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            value = stmt.value
            if isinstance(target, ast.Name) and isinstance(value, ast.Call):
                resolved = self.resolver.resolve(value.func) or ""
                attr = (value.func.attr
                        if isinstance(value.func, ast.Attribute) else "")
                if (resolved.rsplit(".", 1)[-1] == "QueuePair"
                        or attr in _QP_ACQUIRE_CALLS):
                    out.append((_ObligationKey.make("L001", target.id),
                                target.id))
            if (isinstance(target, ast.Tuple) and target.elts
                    and isinstance(target.elts[0], ast.Name)
                    and isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "admit"):
                base = flow.dotted_name(value.func.value)
                if base is not None:
                    out.append((_ObligationKey.make("L004", base,
                                                    latent=True), base))
        return out

    def _is_local_call(self, call: ast.Call) -> bool:
        return self.graph.resolve_call(call.func, self.cls) is not None

    def _helper_resource(self, call: ast.Call) -> Optional[str]:
        """Resource key for an acquire-helper call: its first simple
        argument, else the helper's own dotted base."""
        for arg in call.args:
            dotted = flow.dotted_name(arg)
            if dotted is not None:
                return dotted
        if isinstance(call.func, ast.Attribute):
            return flow.dotted_name(call.func.value)
        return None

    # -- kill recognition ---------------------------------------------

    def _released(self, stmt: ast.stmt) -> Set[str]:
        """Resources whose release/reclaim runs in ``stmt``."""
        out: Set[str] = set()
        for call in _calls_in(stmt):
            if not isinstance(call.func, ast.Attribute):
                continue
            attr = call.func.attr
            base = flow.dotted_name(call.func.value)
            if attr in _LOCK_RELEASES | _QP_RELEASES and base is not None:
                out.add(base)
            elif "release" in attr:
                # Helper form: self._release_slot(tenant) discharges
                # the obligation keyed by its first simple argument.
                for arg in call.args:
                    dotted = flow.dotted_name(arg)
                    if dotted is not None:
                        out.add(dotted)
                if base is not None:
                    out.add(base)
        return out

    def _escaped_heads(self, stmt: ast.stmt) -> Set[str]:
        """Head names whose resources escape ownership in ``stmt``:
        returned, yielded as a value, stored into an attribute or
        container, or passed to a call as an argument."""
        out: Set[str] = set()
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            out.update(_names_in(stmt.value))
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    out.update(_names_in(stmt.value))
        for call in _calls_in(stmt):
            out.update(_arg_names(call))
        return out

    # -- dataflow ------------------------------------------------------

    def _transfer(self, node: CfgNode, state: State) -> State:
        if node.is_structural or node.stmt is None:
            return state
        stmt = node.stmt
        if node.label in ("if", "while", "for", "with"):
            # Headers: only the test/iter/items run here, and the
            # acquire/release idioms are simple statements; skip.
            return state
        assert isinstance(stmt, ast.stmt)
        new: Dict[str, FrozenSet[object]] = dict(state)
        released = self._released(stmt)
        escaped = self._escaped_heads(stmt)
        returned: Set[str] = set()
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            returned = _names_in(stmt.value)
        for key in list(new):
            rule, resource, _latent = _ObligationKey.split(key)
            if resource in released:
                del new[key]
            elif rule == "L001" and _head(resource) in escaped:
                # Handing the QP/endpoint to another owner (stored,
                # passed, returned) transfers the reclaim duty.
                del new[key]
            elif rule == "L005" and _head(resource) in returned:
                # Returning the held resource hands the release duty to
                # the caller; merely passing it to a call does not
                # (slots routinely travel into helpers while held).
                del new[key]
        # L004 latent keys die when the verdict escapes into a call
        # (e.g. _start handing (verdict, wait) to the spawned worker).
        for key in list(new):
            rule, resource, latent = _ObligationKey.split(key)
            if rule == "L004" and latent:
                owners = {v for v, b in self.verdicts.items()
                          if b == resource}
                if owners & escaped:
                    del new[key]
        for key, resource in self._acquires(stmt, node.id):
            new[key] = frozenset({node.id})
            rule, _res, _latent = _ObligationKey.split(key)
            self.anchors[node.id] = (rule, resource, node.lineno,
                                     getattr(stmt, "col_offset", 0))
        return new

    def _refine(self, node: CfgNode, kind: str,
                state: State) -> Optional[State]:
        """Promote latent L004 obligations on explicit delay branches:
        the true edge of ``verdict != ADMIT`` / ``verdict == DELAY``."""
        if node.label != "if" or not isinstance(node.stmt, ast.If):
            return None
        test = node.stmt.test
        # `if not <base>.reclaimed:` -- on the false arm the QP is
        # already gone, which discharges any obligation on that base
        # (the idiom cplane.pool uses to guard repeat teardown).
        guard, negated = test, False
        if isinstance(guard, ast.UnaryOp) and isinstance(guard.op, ast.Not):
            guard, negated = guard.operand, True
        if isinstance(guard, ast.Attribute) and guard.attr == "reclaimed":
            base = flow.dotted_name(guard.value)
            discharged_kind = "false" if negated else "true"
            if base is not None and kind == discharged_kind:
                new = {k: v for k, v in state.items()
                       if _ObligationKey.split(k)[1] != base}
                if len(new) != len(state):
                    return new
            return None
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.left, ast.Name)
                and test.left.id in self.verdicts):
            return None
        comparator = flow.dotted_name(test.comparators[0]) or ""
        token = comparator.rsplit(".", 1)[-1].upper()
        op = test.ops[0]
        arms = (isinstance(op, ast.NotEq) and token == "ADMIT") or (
            isinstance(op, ast.Eq) and token == "DELAY")
        if not arms or kind != "true":
            return None
        base = self.verdicts[test.left.id]
        latent_key = _ObligationKey.make("L004", base, latent=True)
        if latent_key not in state:
            return None
        new = dict(state)
        new[_ObligationKey.make("L004", base)] = new.pop(latent_key)
        return new

    def run(self) -> List[Finding]:
        in_states, _out = flow.forward(
            self.cfg, dict(self.entry_state), self._transfer,
            refine_edge=self._refine)
        leaks: Dict[int, Tuple[str, str, bool]] = {}
        for exit_id, on_raise in ((self.cfg.exit, False),
                                  (self.cfg.raise_exit, True)):
            for key, anchor_ids in in_states.get(exit_id, {}).items():
                rule, resource, latent = _ObligationKey.split(key)
                if latent:
                    continue
                for anchor in anchor_ids:
                    assert isinstance(anchor, int)
                    prior = leaks.get(anchor)
                    if prior is None or (on_raise and not prior[2]):
                        leaks[anchor] = (rule, resource, on_raise)
        findings: List[Finding] = []
        for anchor, (rule, resource, on_raise) in sorted(leaks.items()):
            _rule, _res, lineno, col = self.anchors.get(
                anchor, (rule, resource, 0, 0))
            path_kind = ("exception/interrupt paths" if on_raise
                         else "some path")
            message = {
                "L001": f"{resource} is acquired in {self.qualname}() but "
                        f"not reclaimed/detached on {path_kind}",
                "L004": f"admission reservation on {resource} is not "
                        f"released on {path_kind} of the delay branch",
                "L005": f"{resource} is acquired without a finally-"
                        f"protected release covering {path_kind}",
            }[rule]
            findings.append(self._finding(rule, lineno, col, message))
        return findings

    def _finding(self, rule_id: str, lineno: int, col: int,
                 message: str) -> Finding:
        rule = RULES[rule_id]
        return Finding(rule=rule_id, severity=rule.severity, path=self.path,
                       line=lineno, col=col, message=message, hint=rule.hint,
                       detail={"function": self.qualname})


# ----------------------------------------------------------------------
# Syntactic L-rules (no dataflow needed)
# ----------------------------------------------------------------------

def _check_callbacks(path: str, qualname: str, func: flow.FuncDef,
                     cls: Optional[str], graph: ModuleGraph,
                     findings: List[Finding]) -> None:
    """L002: callback registered on a foreign event, no detach in
    reach (this function or any local helper it calls)."""
    owned: Set[str] = set()
    registers: List[Tuple[ast.Call, str]] = []
    for node in ast.walk(func):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            owned.add(node.targets[0].id)
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        attr = node.func.attr
        base = node.func.value
        if (attr == "append" and isinstance(base, ast.Attribute)
                and base.attr == "callbacks"):
            target = flow.dotted_name(base.value)
            if target is not None:
                registers.append((node, target))
        # on_trigger() is deliberately NOT a registration: in this
        # codebase it is the EventMonitor notification hook (it takes
        # the fired event, not a callable).
        elif attr == "add_callback" and node.args:
            target = flow.dotted_name(node.func.value)
            if target is not None:
                registers.append((node, target))
    if not registers:
        return
    reach = {qualname} | graph.transitive_callees(qualname)
    if "." in qualname:
        # Register-here / detach-there lifecycle split: any sibling
        # method of the same class may carry the detach duty (the
        # combinator pattern registers in __init__, removes in
        # _resolve).
        prefix = qualname.rsplit(".", 1)[0] + "."
        reach |= {n for n in graph.functions if n.startswith(prefix)}
    detaches = False
    for name in sorted(reach):
        body = graph.functions.get(name)
        if body is None and name == qualname:
            body = func
        if body is None:
            continue
        for node in ast.walk(body):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _DETACH_ATTRS):
                detaches = True
                break
        if detaches:
            break
    if detaches:
        return
    rule = RULES["L002"]
    for call, target in registers:
        if _head(target) in owned:
            continue  # wiring an event this function just created
        findings.append(Finding(
            rule="L002", severity=rule.severity, path=path,
            line=call.lineno, col=call.col_offset,
            message=f"callback registered on {target} with no detach "
                    f"reachable from {qualname}(): losing branches leak "
                    f"the callback",
            hint=rule.hint, detail={"function": qualname}))


def _check_metrics(path: str, tree: ast.Module, resolver: Resolver,
                   findings: List[Finding]) -> None:
    """L003: direct metrics-instrument construction."""
    if path.replace("\\", "/").endswith("obs/metrics.py"):
        return  # the registry's own definition site
    rule = RULES["L003"]
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = resolver.resolve(node.func)
        if resolved is None:
            continue
        tail = resolved.rsplit(".", 1)[-1]
        if tail not in _METRIC_TYPES:
            continue
        if not resolved.startswith(_METRIC_CANONICAL_PREFIX):
            continue
        findings.append(Finding(
            rule="L003", severity=rule.severity, path=path,
            line=node.lineno, col=node.col_offset,
            message=f"{tail} constructed directly; instruments must come "
                    f"from a MetricsRegistry so snapshots and resets see "
                    f"them",
            hint=rule.hint, detail={}))


def _check_spawns(path: str, qualname: str, func: flow.FuncDef,
                  findings: List[Finding]) -> None:
    """L006: discarded process spawn inside a sim process."""
    if not flow.statement_yields(func):
        return
    rule = RULES["L006"]
    for stmt in ast.walk(func):
        if not (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)):
            continue
        call = stmt.value
        if not (isinstance(call.func, ast.Attribute)
                and call.func.attr == "process"):
            continue
        base = flow.dotted_name(call.func.value) or ""
        if not (base == "env" or base.endswith(".env")):
            continue
        findings.append(Finding(
            rule="L006", severity=rule.severity, path=path,
            line=call.lineno, col=call.col_offset,
            message=f"process spawned inside sim process {qualname}() "
                    f"with its handle discarded: failures can never be "
                    f"joined or observed",
            hint=rule.hint, detail={"function": qualname}))


def analyze_lifecycle(tree: ast.Module, path: str,
                      resolver: Resolver) -> List[Finding]:
    """Run every L-rule over one parsed module."""
    graph = ModuleGraph(tree, resolver.imports)
    findings: List[Finding] = []
    _check_metrics(path, tree, resolver, findings)
    for qualname, func, cls in flow.iter_functions(tree):
        analysis = _FunctionLifecycle(path, qualname, func, cls, graph,
                                      resolver)
        findings.extend(analysis.run())
        _check_callbacks(path, qualname, func, cls, graph, findings)
        _check_spawns(path, qualname, func, findings)
    return findings
