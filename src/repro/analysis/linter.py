"""``repro-lint``: the AST linter behind ``python -m repro lint``.

Pure-stdlib static analysis with repository-specific determinism rules
(catalog in :mod:`repro.analysis.rules`):

* **D001** wall-clock reads (``time.time``, ``datetime.now``, ...);
* **D002** module-level / unseeded randomness (``random.*``,
  ``numpy.random.*`` outside explicitly-seeded constructors);
* **D003** iteration over ``set`` expressions (or ``for k in d.keys()``)
  in ordering-sensitive contexts without ``sorted()``;
* **D004** blocking calls in sim code (``time.sleep`` anywhere, real
  I/O inside generator-based sim processes);
* **D005** mutable default arguments and mutable frozen-dataclass
  fields;
* **D006** ``json.dumps`` without ``sort_keys=True`` feeding a digest.

On top of the lexical D rules, two control-flow-sensitive families run
over per-function CFGs built by :mod:`repro.analysis.flow` (exception
and interrupt edges included; catalog in ``docs/lifecycle-rules.md``):

* **L001-L006** resource lifecycles: QP reclaim on every path, callback
  detach, registry-owned metrics, admission-reservation release,
  ``acquire``/``release`` pairing, spawn join
  (:mod:`repro.analysis.lifecycle`);
* **P001-P004** call-order protocols: connect→post→reclaim,
  plan→execute-once, degrade→flush→re-promote, build→seal→post
  (:mod:`repro.analysis.protocols`).

Suppress a deliberate exception on its own line::

    started = perf_counter()  # repro-lint: disable=D001 -- wall timing
    slot = pool.acquire()     # repro-lint: disable=D001,L005 -- multiple
    hook = attach()           # repro-lint: disable=L* -- family glob

The linter resolves import aliases (``import numpy as np``, ``from time
import perf_counter as pc``) and local assignment aliases
(``_clock = time.perf_counter``) so renamed entry points are still
caught, infers set-typed locals/attributes from their assignments so
``shards = set(...); for s in shards:`` is a finding even though the
loop itself mentions no set, and consults the module call graph so a
blocking helper is charged at its sim-process call site.
"""

from __future__ import annotations

import ast
import fnmatch
import pathlib
import re
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Set, Tuple, Union)

from repro.analysis import flow
from repro.analysis.flow import Resolver
from repro.analysis.lifecycle import analyze_lifecycle
from repro.analysis.protocols import analyze_protocols
from repro.analysis.report import Finding
from repro.analysis.rules import RULES

__all__ = ["expand_rules", "lint_paths", "lint_source"]


_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?:=(?P<ids>[A-Z0-9*?,\s]+))?")

_GLOB_CHARS = ("*", "?", "[")

#: Wall-clock entry points (canonical dotted names after alias resolution).
_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: numpy.random attributes that *construct* explicitly-seeded generators
#: (fine) rather than draw from hidden global state (not fine).
_NP_RANDOM_OK = {
    "SeedSequence", "Generator", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
}

#: Real-world blocking entry points that must not run inside a sim
#: process (a generator driven by the kernel).
_BLOCKING_IN_PROCESS = {
    "open", "input",
    "socket.socket", "socket.create_connection",
    "subprocess.run", "subprocess.Popen", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
    "os.system", "os.popen",
    "urllib.request.urlopen",
}
_BLOCKING_PREFIXES = ("requests.",)

#: Set methods that return another set (for set-expression inference).
_SET_METHODS = {"union", "intersection", "difference",
                "symmetric_difference", "copy"}

#: Constructors whose result is mutable (for D005 default checking).
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray",
                  "collections.defaultdict", "collections.deque",
                  "collections.OrderedDict", "collections.Counter"}

_DIGEST_FUNC_RE = re.compile(
    r"digest|fingerprint|cache_key|canonical|checksum|content_hash|_hash$")


def _parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule ids (``None`` = all rules)."""
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        ids = match.group("ids")
        if ids is None:
            table[lineno] = None
        else:
            table[lineno] = {part.strip() for part in ids.split(",")
                             if part.strip()}
    return table


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# The alias table moved into the flow framework so the CFG analyzers
# share it; the historical name stays importable from here.
_ImportTable = flow.ImportTable


def _is_yielding(func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> bool:
    """Does ``func`` itself (ignoring nested defs) contain a yield?"""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


class _SetInference:
    """Tracks which names / ``self.attr``s hold set values."""

    def __init__(self, imports: Resolver):
        self._imports = imports
        self.local_names: Set[str] = set()
        self.self_attrs: Set[str] = set()

    def seed_from_class(self, cls: ast.ClassDef) -> None:
        for node in ast.walk(cls):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and isinstance(node.targets[0].value, ast.Name)
                    and node.targets[0].value.id == "self"
                    and self.is_set_expr(node.value)):
                self.self_attrs.add(node.targets[0].attr)
            elif (isinstance(node, ast.AnnAssign)
                  and isinstance(node.target, ast.Attribute)
                  and isinstance(node.target.value, ast.Name)
                  and node.target.value.id == "self"
                  and self._is_set_annotation(node.annotation)):
                self.self_attrs.add(node.target.attr)

    def seed_from_function(
            self, func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        self.local_names = set()
        for node in ast.walk(func):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and self.is_set_expr(node.value)):
                self.local_names.add(node.targets[0].id)

    @staticmethod
    def _is_set_annotation(annotation: ast.AST) -> bool:
        if isinstance(annotation, ast.Subscript):
            annotation = annotation.value
        dotted = _dotted(annotation)
        return dotted in {"set", "frozenset", "Set", "FrozenSet",
                          "typing.Set", "typing.FrozenSet"}

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.local_names
        if isinstance(node, ast.Attribute):
            return (isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in self.self_attrs)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if (isinstance(func, ast.Attribute)
                    and func.attr in _SET_METHODS
                    and self.is_set_expr(func.value)):
                return True
        return False


class _Analyzer(ast.NodeVisitor):
    """One pass over a module, emitting findings into ``self.findings``."""

    def __init__(self, path: str, imports: Resolver):
        self.path = path
        self.imports = imports
        self.findings: List[Finding] = []
        self.sets = _SetInference(imports)
        self._func_stack: List[Tuple[str, bool]] = []  # (name, is_generator)
        self._class_set_stack: List[Set[str]] = []

    # -- helpers -----------------------------------------------------------

    def _emit(self, rule_id: str, node: ast.AST, message: str,
              **detail: object) -> None:
        rule = RULES[rule_id]
        self.findings.append(Finding(
            rule=rule_id, severity=rule.severity, path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message, hint=rule.hint,
            detail={str(k): v for k, v in detail.items()}))

    def _in_generator(self) -> bool:
        return any(is_gen for _name, is_gen in self._func_stack)

    def _enclosing_digest_func(self) -> bool:
        return any(_DIGEST_FUNC_RE.search(name)
                   for name, _is_gen in self._func_stack)

    # -- scopes ------------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.sets.seed_from_class(node)
        self._class_set_stack.append(set(self.sets.self_attrs))
        self._check_frozen_dataclass(node)
        self.generic_visit(node)
        self._class_set_stack.pop()
        self.sets.self_attrs = (set(self._class_set_stack[-1])
                                if self._class_set_stack else set())

    def _visit_function(
            self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        self._check_mutable_defaults(node)
        outer_locals = self.sets.local_names
        self.sets.seed_from_function(node)
        self._func_stack.append((node.name, _is_yielding(node)))
        self.generic_visit(node)
        self._func_stack.pop()
        self.sets.local_names = outer_locals

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- D005: mutable defaults -------------------------------------------

    def _is_mutable_value(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return self.imports.resolve(node.func) in _MUTABLE_CALLS
        return False

    def _check_mutable_defaults(
            self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if self._is_mutable_value(default):
                self._emit("D005", default,
                           f"mutable default argument in {node.name}()",
                           function=node.name)

    def _check_frozen_dataclass(self, node: ast.ClassDef) -> None:
        if not any(self._is_frozen_decorator(dec)
                   for dec in node.decorator_list):
            return
        for stmt in node.body:
            value = None
            if isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            elif isinstance(stmt, ast.Assign):
                value = stmt.value
            if value is not None and self._is_mutable_value(value):
                self._emit("D005", value,
                           f"mutable field default on frozen spec class "
                           f"{node.name}",
                           cls=node.name)

    def _is_frozen_decorator(self, dec: ast.AST) -> bool:
        if not isinstance(dec, ast.Call):
            return False
        if self.imports.resolve(dec.func) not in {
                "dataclass", "dataclasses.dataclass"}:
            return False
        return any(kw.arg == "frozen"
                   and isinstance(kw.value, ast.Constant)
                   and kw.value.value is True
                   for kw in dec.keywords)

    # -- D003: unordered iteration ----------------------------------------

    def _flag_if_unordered(self, iterable: ast.AST, context: str) -> None:
        if self.sets.is_set_expr(iterable):
            self._emit("D003", iterable,
                       f"iterating a set in {context}: order depends on "
                       f"the per-process hash seed",
                       context=context)
            return
        if (isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Attribute)
                and iterable.func.attr == "keys"
                and not iterable.args and not iterable.keywords
                and context in {"a for loop", "a comprehension"}):
            self._emit("D003", iterable,
                       f"iterating .keys() in {context}: use sorted(...) "
                       f"for canonical order, or iterate the dict "
                       f"directly if insertion order is intended",
                       context=context)

    def visit_For(self, node: ast.For) -> None:
        self._flag_if_unordered(node.iter, "a for loop")
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST) -> None:
        # SetComp output is itself unordered, so its input order is moot.
        if not isinstance(node, ast.SetComp):
            for generator in node.generators:  # type: ignore[attr-defined]
                self._flag_if_unordered(generator.iter, "a comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_SetComp = _visit_comp

    # -- calls: D001 / D002 / D003(list/tuple) / D004 / D006 ---------------

    def visit_Call(self, node: ast.Call) -> None:
        canonical = self.imports.resolve(node.func)
        if canonical:
            self._check_wall_clock(node, canonical)
            self._check_randomness(node, canonical)
            self._check_blocking(node, canonical)
            self._check_ordering_sinks(node, canonical)
        self._check_digest_json(node, canonical)
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, canonical: str) -> None:
        if canonical in _WALL_CLOCK:
            self._emit("D001", node,
                       f"wall-clock read {canonical}() in sim-driven code",
                       callee=canonical)

    def _check_randomness(self, node: ast.Call, canonical: str) -> None:
        if canonical.startswith("random."):
            tail = canonical[len("random."):]
            if tail == "Random" and node.args:
                return  # random.Random(seed): explicitly seeded
            self._emit("D002", node,
                       f"{canonical}() draws from the global random state",
                       callee=canonical)
            return
        if canonical.startswith("numpy.random."):
            tail = canonical[len("numpy.random."):]
            if tail in _NP_RANDOM_OK:
                return
            if tail == "default_rng" and (node.args or node.keywords):
                return  # explicitly seeded construction
            self._emit("D002", node,
                       f"{canonical}() is module-level/unseeded randomness",
                       callee=canonical)

    def _check_blocking(self, node: ast.Call, canonical: str) -> None:
        if canonical == "time.sleep":
            self._emit("D004", node,
                       "time.sleep() stalls the sim kernel without "
                       "advancing simulated time",
                       callee=canonical)
            return
        if not self._in_generator():
            return
        if (canonical in _BLOCKING_IN_PROCESS
                or canonical.startswith(_BLOCKING_PREFIXES)):
            self._emit("D004", node,
                       f"blocking call {canonical}() inside a sim process",
                       callee=canonical)

    def _check_ordering_sinks(self, node: ast.Call, canonical: str) -> None:
        """list()/tuple()/enumerate()/iter()/join() over a set expression."""
        if canonical in {"list", "tuple", "enumerate", "iter"} and node.args:
            self._flag_if_unordered(node.args[0], f"{canonical}()")
        elif (isinstance(node.func, ast.Attribute)
              and node.func.attr == "join" and node.args):
            self._flag_if_unordered(node.args[0], "str.join()")

    # -- D006: digest JSON -------------------------------------------------

    @staticmethod
    def _has_sort_keys(node: ast.Call) -> bool:
        for keyword in node.keywords:
            if keyword.arg == "sort_keys":
                return not (isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is False)
            if keyword.arg is None:
                return True  # **kwargs: give it the benefit of the doubt
        return False

    def _dumps_argument(self, node: ast.AST) -> Optional[ast.Call]:
        """The ``json.dumps(...)`` call inside ``node``, unwrapping
        ``.encode(...)``."""
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "encode"):
            node = node.func.value
        if (isinstance(node, ast.Call)
                and self.imports.resolve(node.func) == "json.dumps"):
            return node
        return None

    def _check_digest_json(self, node: ast.Call,
                           canonical: Optional[str]) -> None:
        # Pattern 1: hashlib.<algo>(json.dumps(...).encode()) directly.
        if canonical and canonical.startswith("hashlib."):
            for arg in node.args:
                dumps = self._dumps_argument(arg)
                if dumps is not None and not self._has_sort_keys(dumps):
                    self._emit("D006", dumps,
                               "json.dumps() without sort_keys=True is "
                               "hashed into a digest")
            return
        # Pattern 2: any json.dumps inside a digest-flavored function.
        if (canonical == "json.dumps"
                and not self._has_sort_keys(node)
                and self._enclosing_digest_func()):
            self._emit("D006", node,
                       "json.dumps() without sort_keys=True inside a "
                       "digest/fingerprint function")


def expand_rules(rules: Iterable[str]) -> Set[str]:
    """Expand rule ids and globs (``L*``, ``D00?``) against the
    catalog; unknown ids and globs matching nothing raise ValueError."""
    enabled: Set[str] = set()
    for rule_id in rules:
        if any(ch in rule_id for ch in _GLOB_CHARS):
            matches = {known for known in RULES
                       if fnmatch.fnmatchcase(known, rule_id)}
            if not matches:
                raise ValueError(
                    f"rule glob {rule_id!r} matches no known rule")
            enabled |= matches
        elif rule_id in RULES:
            enabled.add(rule_id)
        else:
            raise ValueError(f"unknown rule id(s): {rule_id}")
    return enabled


def _callgraph_blocking(tree: ast.Module, path: str, resolver: Resolver,
                        findings: List[Finding]) -> None:
    """Call-graph-aware D004: a generator process calling a module-local
    (non-generator) helper that blocks is flagged at the call site --
    the helper alone is legal, running it on the kernel's thread is
    not."""
    graph = flow.ModuleGraph(tree, resolver.imports)

    def direct(_name: str, func: flow.FuncDef) -> FrozenSet[object]:
        facts: Set[object] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            canonical = resolver.resolve(node.func)
            if canonical and (canonical == "time.sleep"
                              or canonical in _BLOCKING_IN_PROCESS
                              or canonical.startswith(_BLOCKING_PREFIXES)):
                facts.add(canonical)
        return frozenset(facts)

    summaries = graph.summarize(direct)
    is_gen = {name: flow.statement_yields(func)
              for name, func in graph.functions.items()}
    rule = RULES["D004"]
    for name, func in graph.functions.items():
        if not is_gen[name]:
            continue
        cls = graph.owner_class[name]
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = graph.resolve_call(node.func, cls)
            if callee is None or is_gen.get(callee, False):
                continue
            blocked = summaries.get(callee) or frozenset()
            if not blocked:
                continue
            culprit = sorted(str(item) for item in blocked)[0]
            findings.append(Finding(
                rule="D004", severity=rule.severity, path=path,
                line=node.lineno, col=node.col_offset,
                message=f"{callee}() performs blocking I/O ({culprit}) "
                        f"and is called from sim process {name}()",
                hint=rule.hint,
                detail={"callee": callee, "blocking": culprit}))


def lint_source(source: str, path: str = "<memory>",
                rules: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one module's source text; returns unsuppressed findings."""
    enabled = expand_rules(rules) if rules is not None else set(RULES)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(rule="PARSE", severity="error", path=path,
                        line=exc.lineno or 0, col=(exc.offset or 1) - 1,
                        message=f"syntax error: {exc.msg}")]
    resolver = Resolver(tree)
    findings: List[Finding] = []
    if any(rule_id.startswith("D") for rule_id in enabled):
        analyzer = _Analyzer(path, resolver)
        analyzer.visit(tree)
        findings.extend(analyzer.findings)
        _callgraph_blocking(tree, path, resolver, findings)
    if any(rule_id.startswith("L") for rule_id in enabled):
        findings.extend(analyze_lifecycle(tree, path, resolver))
    if any(rule_id.startswith("P") for rule_id in enabled):
        findings.extend(analyze_protocols(tree, path, resolver))
    suppressions = _parse_suppressions(source)
    kept: List[Finding] = []
    for finding in findings:
        if finding.rule not in enabled:
            continue
        if _is_suppressed(finding, suppressions):
            continue
        kept.append(finding)
    return kept


def _is_suppressed(finding: Finding,
                   table: Dict[int, Optional[Set[str]]]) -> bool:
    if finding.line not in table:
        return False
    ids = table[finding.line]
    if ids is None:
        return True
    return any(fnmatch.fnmatchcase(finding.rule, pattern)
               for pattern in ids)


def lint_paths(paths: Sequence[Union[str, pathlib.Path]],
               rules: Optional[Iterable[str]] = None,
               ) -> Tuple[List[Finding], List[pathlib.Path]]:
    """Lint files/directories; returns (findings, files scanned)."""
    files: List[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(p for p in sorted(path.rglob("*.py"))
                         if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            files.append(path)
    findings: List[Finding] = []
    for file in files:
        findings.extend(lint_source(file.read_text(), path=str(file),
                                    rules=rules))
    return findings, files
