"""Findings and the shared text/JSON reporters.

Both analysis prongs (linter, race detector, sanitizer) normalize their
output into :class:`Finding` so one reporter serves ``python -m repro
lint`` and ``python -m repro sanitize`` alike.  The JSON form is a
stable schema (``repro.analysis/v1``) for CI annotation tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

__all__ = ["Finding", "format_findings"]


@dataclass(frozen=True)
class Finding:
    """One reported problem, anchored to a source (or trace) location."""

    rule: str            # rule id (D001..) or "RACE" / "DIVERGENCE"
    severity: str        # "error" | "warning"
    path: str            # file path, or a logical location for dynamic findings
    line: int            # 1-based; 0 when no source anchor exists
    col: int             # 0-based column offset
    message: str
    hint: str = ""
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.hint:
            out["hint"] = self.hint
        if self.detail:
            out["detail"] = dict(sorted(self.detail.items()))
        return out


def _sort_key(finding: Finding) -> tuple:
    return (finding.path, finding.line, finding.col, finding.rule)


def format_findings(findings: Sequence[Finding], fmt: str = "text",
                    tool: str = "repro-lint") -> str:
    """Render findings as a text report or one ``repro.analysis/v1`` blob."""
    ordered = sorted(findings, key=_sort_key)
    if fmt == "json":
        blob = {
            "schema": "repro.analysis/v1",
            "tool": tool,
            "findings": [finding.to_dict() for finding in ordered],
            "summary": _summary(ordered),
        }
        return json.dumps(blob, indent=2, sort_keys=True)
    if fmt != "text":
        raise ValueError(f"unknown report format {fmt!r}")
    if not ordered:
        return f"{tool}: clean (0 findings)"
    lines: List[str] = []
    for finding in ordered:
        where = (f"{finding.path}:{finding.line}:{finding.col + 1}"
                 if finding.line else finding.path)
        lines.append(f"{where}: {finding.severity} {finding.rule}: "
                     f"{finding.message}")
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    counts = _summary(ordered)
    lines.append(f"{tool}: {counts['total']} finding(s) "
                 f"({counts['errors']} error, {counts['warnings']} warning)")
    return "\n".join(lines)


def _summary(findings: Sequence[Finding]) -> Dict[str, int]:
    return {
        "total": len(findings),
        "errors": sum(1 for f in findings if f.severity == "error"),
        "warnings": sum(1 for f in findings if f.severity == "warning"),
    }
