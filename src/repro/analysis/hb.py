"""Happens-before race detection for the simulation kernel.

The kernel executes strictly sequentially, so "race" here means a
*logical* one: two sim processes touch the same shared object with no
happens-before path between the accesses, which means an unrelated
schedule perturbation (a new timeout, an extra RNG draw, a different
heap tie-break) can legally reorder them and change the result.  These
are exactly the bugs PR 1 fixed by hand; the detector finds them
mechanically.

Vector clocks are built from the kernel's own synchronization edges,
delivered through the :class:`KernelMonitor` hook protocol the kernel
calls when ``Environment.monitor`` is set:

* **spawn** -- ``env.process(...)`` orders the child after its creator;
* **trigger -> resume** -- ``Event.succeed()/fail()`` stamps the
  triggering process's clock on the event, and every process resuming
  from that event joins it.  Joins (``yield other_process``), Store
  put/get hand-offs, and Resource acquire/release hand-offs are all
  event deliveries, so this one edge covers them.  Timeouts are
  triggered *at creation* (``env.timeout(d)`` is born succeeded, like
  SimPy's), so their ``on_trigger`` edge carries the clock of the
  process that *scheduled* the delay, ordering the waiter after the
  scheduler -- the kernel stamps this for every timeout, including the
  ones its combinators (AllOf/AnyOf) and hedge paths create;
* **interrupt** -- ``Process.interrupt()`` orders the throw after the
  interrupter.

Shared state is registered through the lightweight :meth:`RaceDetector.
track` shim, which wraps an object so reads and writes are recorded
with the accessing process's clock.  An access pair on the same field,
from different processes, with at least one write and neither clock
dominating the other, is reported as a :class:`RaceFinding`.

Usage::

    env = Environment()
    detector = RaceDetector(env)          # sets env.monitor
    slots = detector.track("free_slots", {})
    ... build and run the workload ...
    assert not detector.races
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from types import FrameType
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.report import Finding

__all__ = ["KernelMonitor", "RaceDetector", "RaceFinding", "Tracked"]


def _leq(earlier: Dict[int, int], later: Dict[int, int]) -> bool:
    """Vector-clock ordering: does ``earlier`` happen-before ``later``?"""
    for pid, tick in earlier.items():
        if tick > later.get(pid, 0):
            return False
    return True


def _join(into: Dict[int, int], other: Dict[int, int]) -> None:
    for pid, tick in other.items():
        if tick > into.get(pid, 0):
            into[pid] = tick


class KernelMonitor:
    """Hook protocol the kernel drives when ``Environment.monitor`` is set.

    The base class is a no-op so subclasses implement only the edges
    they care about; both :class:`RaceDetector` and the replay
    sanitizer's trace recorder derive from it.
    """

    def on_spawn(self, process: Any) -> None:
        """A Process was created (the creator is the current context)."""

    def on_resume(self, process: Any, event: Any) -> None:
        """``process`` is about to resume with ``event``'s outcome."""

    def on_step(self, process: Any) -> None:
        """``process`` is about to run without an event delivery
        (bootstrap, interrupt throw, or failure propagation)."""

    def on_trigger(self, event: Any) -> None:
        """The current context triggered ``event`` (succeed or fail)."""

    def on_interrupt(self, process: Any) -> None:
        """The current context called ``process.interrupt()``."""


class _Context:
    """Clock state for one sim process (or the top-level root driver)."""

    __slots__ = ("pid", "name", "clock")

    def __init__(self, pid: int, name: str, clock: Dict[int, int]):
        self.pid = pid
        self.name = name
        self.clock = clock


@dataclass(frozen=True)
class _Access:
    """One read or write of a tracked field."""

    pid: int
    process: str
    kind: str  # "read" | "write"
    clock: Tuple[Tuple[int, int], ...]
    site: str  # "file:line"
    time: float

    def to_dict(self) -> Dict[str, Any]:
        return {"pid": self.pid, "process": self.process, "kind": self.kind,
                "site": self.site, "time": self.time}


@dataclass(frozen=True)
class RaceFinding:
    """Two concurrent (happens-before-unordered) accesses, one a write."""

    name: str
    field: str
    first: _Access
    second: _Access

    @property
    def message(self) -> str:
        where = self.name if not self.field else f"{self.name}[{self.field}]"
        return (f"unsynchronized {self.first.kind} ({self.first.process} at "
                f"{self.first.site}) and {self.second.kind} "
                f"({self.second.process} at {self.second.site}) on {where}")

    def to_finding(self) -> Finding:
        path, _, line = self.second.site.rpartition(":")
        return Finding(
            rule="RACE", severity="error", path=path or self.second.site,
            line=int(line) if line.isdigit() else 0, col=0,
            message=self.message,
            hint="order the accesses through a kernel primitive (Event, "
                 "Store hand-off, or Resource held across the section)",
            detail={"object": self.name, "field": self.field,
                    "first": self.first.to_dict(),
                    "second": self.second.to_dict()})


class _Cell:
    """Per-field access history: the last write plus reads since it."""

    __slots__ = ("last_write", "reads")

    def __init__(self) -> None:
        self.last_write: Optional[_Access] = None
        self.reads: List[_Access] = []


class Tracked:
    """A shared object whose reads/writes the detector observes.

    Scalar protocol: ``value = shared.read(); shared.write(value + 1)``.
    Mapping protocol (fields tracked independently): ``shared[k]``,
    ``shared[k] = v``, ``del shared[k]``, ``k in shared``, ``len``,
    ``shared.get(k)``.  Iteration is deliberately unsupported -- iterate
    a ``sorted()`` copy taken via :meth:`read`.
    """

    __slots__ = ("_detector", "_name", "_obj")

    def __init__(self, detector: "RaceDetector", name: str, obj: Any):
        self._detector = detector
        self._name = name
        self._obj = obj

    # -- scalar protocol ---------------------------------------------------

    def read(self, field: str = "") -> Any:
        self._detector._record(self._name, field, "read")
        return self._obj

    def write(self, value: Any, field: str = "") -> Any:
        self._detector._record(self._name, field, "write")
        self._obj = value
        return value

    # -- mapping protocol --------------------------------------------------

    def __getitem__(self, key: Any) -> Any:
        self._detector._record(self._name, str(key), "read")
        return self._obj[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._detector._record(self._name, str(key), "write")
        self._obj[key] = value

    def __delitem__(self, key: Any) -> None:
        self._detector._record(self._name, str(key), "write")
        del self._obj[key]

    def get(self, key: Any, default: Any = None) -> Any:
        self._detector._record(self._name, str(key), "read")
        return self._obj.get(key, default)

    def __contains__(self, key: Any) -> bool:
        self._detector._record(self._name, str(key), "read")
        return key in self._obj

    def __len__(self) -> int:
        self._detector._record(self._name, "", "read")
        return len(self._obj)

    def __repr__(self) -> str:
        return f"<Tracked {self._name!r} {self._obj!r}>"


class RaceDetector(KernelMonitor):
    """Vector-clock happens-before race detector over one Environment."""

    def __init__(self, env: Any = None):
        self.races: List[RaceFinding] = []
        self._env = None
        self._root = _Context(0, "<root>", {0: 1})
        self._current = self._root
        self._contexts: Dict[Any, _Context] = {}
        self._next_pid = 1
        self._pending_interrupts: Dict[Any, Dict[int, int]] = {}
        self._cells: Dict[Tuple[str, str], _Cell] = {}
        self._seen: set = set()
        if env is not None:
            self.attach(env)

    def attach(self, env: Any) -> "RaceDetector":
        """Install as ``env.monitor``; do this before building the
        workload so every process spawn is observed."""
        env.monitor = self
        self._env = env
        return self

    def track(self, name: str, obj: Any) -> Tracked:
        """Register ``obj`` as shared state; returns the tracking shim."""
        return Tracked(self, name, obj)

    def findings(self) -> List[Finding]:
        return [race.to_finding() for race in self.races]

    # -- kernel hooks ------------------------------------------------------

    def _context(self, process: Any) -> _Context:
        ctx = self._contexts.get(process)
        if ctx is None:
            # Unseen process (spawned before attach): conservatively
            # inherit the current clock, which can only mask races, not
            # invent them.
            ctx = _Context(self._next_pid, getattr(process, "name", "?"),
                           dict(self._current.clock))
            ctx.clock[ctx.pid] = 1
            self._next_pid += 1
            self._contexts[process] = ctx
        return ctx

    def on_spawn(self, process: Any) -> None:
        parent = self._current
        parent.clock[parent.pid] = parent.clock.get(parent.pid, 0) + 1
        self._context(process)  # inherits the (just-incremented) clock

    def on_trigger(self, event: Any) -> None:
        cur = self._current
        cur.clock[cur.pid] = cur.clock.get(cur.pid, 0) + 1
        stamp = dict(cur.clock)
        previous = getattr(event, "_hb", None)
        if previous:
            _join(stamp, previous)
        event._hb = stamp

    def on_resume(self, process: Any, event: Any) -> None:
        ctx = self._context(process)
        stamp = getattr(event, "_hb", None)
        if stamp:
            _join(ctx.clock, stamp)
        ctx.clock[ctx.pid] += 1
        self._current = ctx

    def on_step(self, process: Any) -> None:
        ctx = self._context(process)
        pending = self._pending_interrupts.pop(process, None)
        if pending:
            _join(ctx.clock, pending)
        ctx.clock[ctx.pid] += 1
        self._current = ctx

    def on_interrupt(self, process: Any) -> None:
        cur = self._current
        cur.clock[cur.pid] = cur.clock.get(cur.pid, 0) + 1
        stamp = self._pending_interrupts.get(process)
        if stamp is None:
            self._pending_interrupts[process] = dict(cur.clock)
        else:
            _join(stamp, cur.clock)

    # -- access recording --------------------------------------------------

    def _record(self, name: str, field: str, kind: str) -> None:
        cur = self._current
        access = _Access(
            pid=cur.pid, process=cur.name, kind=kind,
            clock=tuple(sorted(cur.clock.items())),
            site=_caller_site(),
            time=self._env.now if self._env is not None else 0.0)
        cell = self._cells.setdefault((name, field), _Cell())
        if kind == "write":
            self._check(name, field, cell.last_write, access)
            for read in cell.reads:
                self._check(name, field, read, access)
            cell.last_write = access
            cell.reads = []
        else:
            self._check(name, field, cell.last_write, access)
            cell.reads.append(access)

    def _check(self, name: str, field: str,
               earlier: Optional[_Access], later: _Access) -> None:
        if earlier is None or earlier.pid == later.pid:
            return
        if _leq(dict(earlier.clock), dict(later.clock)):
            return
        key = (name, field, earlier.site, later.site,
               earlier.kind, later.kind)
        if key in self._seen:
            return
        self._seen.add(key)
        self.races.append(RaceFinding(name=name, field=field,
                                      first=earlier, second=later))


def _caller_site() -> str:
    """``file:line`` of the first frame outside this module."""
    frame: Optional[FrameType] = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == __file__:
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"
