"""The determinism rule catalog.

Each rule carries the repository-specific rationale and a fix-it hint;
the linter (:mod:`repro.analysis.linter`) attaches both to every
finding.  Suppress a deliberate exception per line with::

    risky_call()  # repro-lint: disable=D001  -- wall-clock benchmarking

The catalog is the single source of truth: the docs table in
``docs/determinism-rules.md`` and the ``--rules`` CLI filter both key
off these ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["RULES", "Rule"]


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, severity, and how to fix a finding."""

    id: str
    title: str
    severity: str  # "error" | "warning"
    hint: str
    rationale: str


_CATALOG = (
    Rule(
        id="D001",
        title="wall-clock read in sim-driven code",
        severity="error",
        hint="use env.now (simulated seconds); wall-clock benchmarking "
             "must be isolated and suppressed with a reason",
        rationale="time.time()/datetime.now() values differ per run, so "
                  "any digest, log, or scheduling decision they reach "
                  "breaks bit-identical replay",
    ),
    Rule(
        id="D002",
        title="module-level or unseeded randomness",
        severity="error",
        hint="draw from a named repro.sim.rng.RngRegistry stream "
             "(rngs.stream('component')) so randomness is seeded and "
             "per-component isolated",
        rationale="global `random` / `numpy.random` state is seeded from "
                  "OS entropy and shared across components; one extra "
                  "draw anywhere perturbs every consumer",
    ),
    Rule(
        id="D003",
        title="iteration over an unordered set/dict.keys()",
        severity="error",
        hint="wrap the iterable in sorted(...) or keep an explicitly "
             "ordered structure (list, dict in insertion order)",
        rationale="set iteration order depends on the per-process hash "
                  "seed; when it reaches scheduling, digests, or emitted "
                  "JSON, two identical runs diverge",
    ),
    Rule(
        id="D004",
        title="blocking call inside a sim process",
        severity="error",
        hint="yield env.timeout(delay) for simulated waits; move real "
             "I/O out of generator-based sim processes",
        rationale="time.sleep() and real I/O stall the single-threaded "
                  "kernel without advancing simulated time, and their "
                  "latency leaks nondeterminism into measurements",
    ),
    Rule(
        id="D005",
        title="mutable default argument / frozen-spec field",
        severity="warning",
        hint="default to None and construct inside the body, or use "
             "dataclasses.field(default_factory=...)",
        rationale="a shared mutable default aliases state across calls "
                  "and across frozen spec instances, so one workload's "
                  "mutation silently leaks into the next",
    ),
    Rule(
        id="D006",
        title="digest JSON without sort_keys",
        severity="error",
        hint="json.dumps(..., sort_keys=True, separators=(',', ':')) is "
             "the canonical form every digest must hash",
        rationale="dict insertion order is an implementation detail of "
                  "the run that produced it; hashing unsorted JSON makes "
                  "equal states fingerprint differently",
    ),
    # -- L: resource lifecycle (repro.analysis.lifecycle) ---------------
    Rule(
        id="L001",
        title="QP/endpoint acquired without reclaim on every path",
        severity="error",
        hint="reclaim()/disconnect() the QP in a finally, or hand it to "
             "a long-lived owner (pool, endpoint registry) that does",
        rationale="a dropped QueuePair stays registered on both "
                  "endpoints forever: fault flushes walk it, NIC context "
                  "caches churn on it, and reclaim-storm accounting "
                  "counts phantoms",
    ),
    Rule(
        id="L002",
        title="event callback registered without a detach path",
        severity="error",
        hint="keep the callback handle and remove() it on the losing "
             "branches (the AnyOf/AllOf pattern), or clear() on teardown",
        rationale="a callback left on a long-lived event fires into dead "
                  "contexts and pins every object it closes over -- the "
                  "exact leak class behind the PR 6 combinator fixes",
    ),
    Rule(
        id="L003",
        title="metrics instrument constructed outside a registry",
        severity="error",
        hint="use registry_of(env).counter/gauge/histogram(name) so the "
             "instrument participates in snapshots and resets",
        rationale="a directly-constructed Counter/Gauge/Histogram is "
                  "invisible to MetricsRegistry.snapshot(), so its "
                  "series silently vanishes from benchmarks and gates",
    ),
    Rule(
        id="L004",
        title="admission reservation not released on the delay path",
        severity="error",
        hint="wrap the delay wait in try/finally with "
             "admission.release(), so interrupts and shed-while-queued "
             "paths drain the bounded queue",
        rationale="a DELAY verdict holds a bounded-queue slot; leaking "
                  "it on interrupt/exception permanently shrinks the "
                  "tenant's admission capacity until nothing is admitted",
    ),
    Rule(
        id="L005",
        title="acquired slot/lock without finally-protected release",
        severity="error",
        hint="put the work after `yield x.acquire()` in try/finally "
             "with x.release(); keep the acquire itself outside the try",
        rationale="Process.interrupt() can fire at any later yield; "
                  "without a finally the slot leaks and the resource's "
                  "capacity shrinks by one forever (fault injection "
                  "interrupts processes as a matter of course)",
    ),
    Rule(
        id="L006",
        title="sim process spawned and discarded inside a process",
        severity="warning",
        hint="keep the Process handle and yield/join it, or attach a "
             "failure hook (see repro.core.guard); top-level drivers "
             "may suppress with a reason",
        rationale="a child process whose handle is dropped fails "
                  "invisibly: its exception unwinds in the kernel with "
                  "no parent to observe, join, or clean up after it",
    ),
    # -- P: API protocol state machines (repro.analysis.protocols) ------
    Rule(
        id="P001",
        title="QueuePair protocol violation (connect -> post -> reclaim)",
        severity="error",
        hint="establish() a deferred QP before posting; never post or "
             "re-establish after reclaim(); guard repeat teardown with "
             "`if not qp.reclaimed`",
        rationale="posting on an unestablished QP raises at runtime "
                  "only under model_control_plane, so the bug ships "
                  "silently; after reclaim the QP is deregistered and "
                  "completions go nowhere",
    ),
    Rule(
        id="P002",
        title="rebalance plan not driven to execution exactly once",
        severity="error",
        hint="every plan_rebalance() result must flow into exactly one "
             "rebalancer.execute(plan); drop the plan only on an "
             "explicitly-handled abort path",
        rationale="an unexecuted plan means the membership change never "
                  "streams (slots silently stay put); re-executing one "
                  "reuses single-use write gates and double-copies arcs",
    ),
    Rule(
        id="P003",
        title="tenant re-promoted without flushing the degraded mirror",
        severity="error",
        hint="run the dirty-chunk flush and only then set "
             "tenant.degraded = False (see TenantTier._recovery_probe)",
        rationale="degraded-mode writes land in the local mirror only; "
                  "re-promoting before the flush serves stale remote "
                  "data for every key written while degraded",
    ),
    Rule(
        id="P004",
        title="verb-program steps mutated after sealing",
        severity="error",
        hint="finish building the step list, seal it with "
             "VerbProgram(tuple(steps)), and never touch the list "
             "again; build a new program for a new shape",
        rationale="VerbProgram snapshots the steps at construction; "
                  "later appends never reach the wire, so the posted "
                  "program silently diverges from the intended chain",
    ),
)

RULES: Dict[str, Rule] = {rule.id: rule for rule in _CATALOG}
