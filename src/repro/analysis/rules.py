"""The determinism rule catalog.

Each rule carries the repository-specific rationale and a fix-it hint;
the linter (:mod:`repro.analysis.linter`) attaches both to every
finding.  Suppress a deliberate exception per line with::

    risky_call()  # repro-lint: disable=D001  -- wall-clock benchmarking

The catalog is the single source of truth: the docs table in
``docs/determinism-rules.md`` and the ``--rules`` CLI filter both key
off these ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["RULES", "Rule"]


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, severity, and how to fix a finding."""

    id: str
    title: str
    severity: str  # "error" | "warning"
    hint: str
    rationale: str


_CATALOG = (
    Rule(
        id="D001",
        title="wall-clock read in sim-driven code",
        severity="error",
        hint="use env.now (simulated seconds); wall-clock benchmarking "
             "must be isolated and suppressed with a reason",
        rationale="time.time()/datetime.now() values differ per run, so "
                  "any digest, log, or scheduling decision they reach "
                  "breaks bit-identical replay",
    ),
    Rule(
        id="D002",
        title="module-level or unseeded randomness",
        severity="error",
        hint="draw from a named repro.sim.rng.RngRegistry stream "
             "(rngs.stream('component')) so randomness is seeded and "
             "per-component isolated",
        rationale="global `random` / `numpy.random` state is seeded from "
                  "OS entropy and shared across components; one extra "
                  "draw anywhere perturbs every consumer",
    ),
    Rule(
        id="D003",
        title="iteration over an unordered set/dict.keys()",
        severity="error",
        hint="wrap the iterable in sorted(...) or keep an explicitly "
             "ordered structure (list, dict in insertion order)",
        rationale="set iteration order depends on the per-process hash "
                  "seed; when it reaches scheduling, digests, or emitted "
                  "JSON, two identical runs diverge",
    ),
    Rule(
        id="D004",
        title="blocking call inside a sim process",
        severity="error",
        hint="yield env.timeout(delay) for simulated waits; move real "
             "I/O out of generator-based sim processes",
        rationale="time.sleep() and real I/O stall the single-threaded "
                  "kernel without advancing simulated time, and their "
                  "latency leaks nondeterminism into measurements",
    ),
    Rule(
        id="D005",
        title="mutable default argument / frozen-spec field",
        severity="warning",
        hint="default to None and construct inside the body, or use "
             "dataclasses.field(default_factory=...)",
        rationale="a shared mutable default aliases state across calls "
                  "and across frozen spec instances, so one workload's "
                  "mutation silently leaks into the next",
    ),
    Rule(
        id="D006",
        title="digest JSON without sort_keys",
        severity="error",
        hint="json.dumps(..., sort_keys=True, separators=(',', ':')) is "
             "the canonical form every digest must hash",
        rationale="dict insertion order is an implementation detail of "
                  "the run that produced it; hashing unsorted JSON makes "
                  "equal states fingerprint differently",
    ),
)

RULES: Dict[str, Rule] = {rule.id: rule for rule in _CATALOG}
