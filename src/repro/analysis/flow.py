"""AST -> CFG dataflow framework for the repo's lifecycle analyzers.

Three layers, all pure stdlib:

* :class:`ImportTable` / :class:`Resolver` -- alias-to-canonical name
  resolution.  The import table handles ``import numpy as np`` and
  ``from time import perf_counter as pc``; the resolver extends it with
  *assignment aliases* (``_clock = time.perf_counter``) so a callable
  hidden behind a local binding still resolves to its canonical dotted
  path (the intra-file false negative the per-file linter had).

* :func:`build_cfg` -- a per-function control-flow graph with one node
  per statement.  Covered constructs: ``if``/``while``/``for`` (with
  ``break``/``continue``/``else``), ``try``/``except``/``else``/
  ``finally``, ``with``, ``return``/``raise``, ``match``, and --
  critically for a discrete-event codebase built on generator
  processes -- **suspension points**: every statement containing a
  ``yield``/``yield from`` gets an ``interrupt`` edge to the innermost
  exception continuation, because
  :meth:`repro.sim.kernel.Process.interrupt` can throw into the
  generator at exactly those points.  Exception/interrupt edges carry
  the state from *before* the raising statement (its effect never
  completed), which is what makes ``yield x.acquire()`` analyzable: an
  interrupt during the wait holds nothing, an interrupt at the next
  yield holds the slot.

  ``finally`` bodies are built once, with edges in from the normal
  ends, from every routed abrupt jump (``return``/``break``/
  ``continue``/raise/interrupt), and edges out that continue each
  jump toward its ultimate target.  Distinct jump *targets* get
  distinct out-edges, but same-target paths merge inside the body; the
  resulting over-approximation only ever *adds* paths, so a "released
  on every path" proof stays sound.

* :func:`forward` -- a forward worklist dataflow engine over the CFG,
  generic over a ``{key: frozenset}`` state with union (may) or
  intersection (must) joins, plus a per-edge refinement hook so branch
  conditions (``if verdict != ADMIT:``, ``if qp.reclaimed:``) can gate
  the state flowing down each arm.

* :class:`ModuleGraph` -- the module-level call graph: local functions
  and methods by qualified name, the local calls each makes (resolved
  through ``self.``/``cls.`` and class names), and transitive
  closures, so analyzers can summarize helpers and flag call sites.
"""

from __future__ import annotations

import ast
from typing import (Callable, Dict, FrozenSet, List, Mapping,
                    Optional, Sequence, Set, Tuple, Union)

__all__ = [
    "Cfg",
    "CfgNode",
    "Edge",
    "FuncDef",
    "ImportTable",
    "ModuleGraph",
    "Resolver",
    "STRUCTURAL_LABELS",
    "build_cfg",
    "dotted_name",
    "forward",
    "iter_functions",
    "statement_yields",
]

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Edge kinds.
NEXT = "next"            # sequential fall-through
TRUE = "true"            # branch / loop-entry arm
FALSE = "false"          # branch-not-taken / loop-exhausted arm
LOOP = "loop"            # back edge to a loop header
EXCEPT = "except"        # exception propagation (raise / assert / cleanup)
INTERRUPT = "interrupt"  # generator suspension point: Interrupt delivery

EDGE_KINDS = (NEXT, TRUE, FALSE, LOOP, EXCEPT, INTERRUPT)

#: Edge kinds whose source statement did *not* complete: they carry the
#: pre-state of the source node through the dataflow engine.
ABRUPT_KINDS = frozenset({EXCEPT, INTERRUPT})

#: Synthetic structural nodes that reference a statement for position
#: only; analyzers must not re-apply statement effects at them.
STRUCTURAL_LABELS = frozenset(
    {"finally", "except-dispatch", "except", "with-exit"})

State = Mapping[str, FrozenSet[object]]

#: Open ends during CFG construction: (node id, kind of the edge that
#: will leave it).
Ends = List[Tuple[int, str]]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportTable:
    """Alias -> canonical dotted-path resolution for one module."""

    def __init__(self, tree: ast.AST):
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else
                        alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")

    def resolve(self, node: ast.AST) -> Optional[str]:
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        canonical_head = self.aliases.get(head, head)
        return f"{canonical_head}.{rest}" if rest else canonical_head


class Resolver:
    """Import-alias resolution extended with assignment aliases.

    ``_clock = time.perf_counter`` binds ``_clock`` to the canonical
    ``time.perf_counter``; a later ``_clock()`` then resolves the same
    as the direct call.  Only bindings whose right-hand side already
    resolves *through the import table* (or through an earlier binding)
    are recorded -- ``x = foo.bar`` for a local object ``foo`` stays
    unresolved, so local state is never mistaken for a module path.
    """

    def __init__(self, tree: ast.AST, imports: Optional[ImportTable] = None):
        self.imports = imports if imports is not None else ImportTable(tree)
        self.bindings: Dict[str, str] = {}
        self._collect(tree)

    def _collect(self, tree: ast.AST) -> None:
        # Two passes so an alias of an alias resolves regardless of the
        # order ast.walk visits the defining assignments.
        for _ in range(2):
            for node in ast.walk(tree):
                if not (isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)):
                    continue
                value = node.value
                if not isinstance(value, (ast.Name, ast.Attribute)):
                    continue
                head_node: ast.AST = value
                while isinstance(head_node, ast.Attribute):
                    head_node = head_node.value
                if not isinstance(head_node, ast.Name):
                    continue
                head = head_node.id
                if (head not in self.imports.aliases
                        and head not in self.bindings):
                    continue
                canonical = self._expand(self.imports.resolve(value))
                if canonical is not None:
                    self.bindings[node.targets[0].id] = canonical

    def _expand(self, dotted: Optional[str]) -> Optional[str]:
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        via = self.bindings.get(head)
        if via is not None:
            return f"{via}.{rest}" if rest else via
        return dotted

    def resolve(self, node: ast.AST) -> Optional[str]:
        return self._expand(self.imports.resolve(node))


# ----------------------------------------------------------------------
# Control-flow graph
# ----------------------------------------------------------------------

class CfgNode:
    """One CFG node: a statement, or a synthetic structural node."""

    __slots__ = ("id", "stmt", "label", "lineno")

    def __init__(self, node_id: int, stmt: Optional[ast.AST], label: str):
        self.id = node_id
        self.stmt = stmt
        self.label = label
        self.lineno = getattr(stmt, "lineno", 0) if stmt is not None else 0

    @property
    def is_structural(self) -> bool:
        return self.stmt is None or self.label in STRUCTURAL_LABELS

    def __repr__(self) -> str:
        return f"<CfgNode {self.id} {self.label}@{self.lineno}>"


class Edge:
    __slots__ = ("src", "dst", "kind")

    def __init__(self, src: int, dst: int, kind: str):
        self.src = src
        self.dst = dst
        self.kind = kind

    def __repr__(self) -> str:
        return f"<Edge {self.src}-{self.kind}->{self.dst}>"


class Cfg:
    """Per-function control-flow graph.

    ``entry`` and ``exit`` bracket normal control flow; ``raise_exit``
    is the exceptional exit every uncaught exception (and generator
    interrupt) reaches.  :meth:`edge_set` renders the graph as
    ``(src_key, kind, dst_key)`` triples -- statement nodes keyed by
    line number, structural nodes by ``label@Lline``, the three
    boundary nodes by bare label -- which is what the construct-level
    tests assert against.
    """

    def __init__(self, name: str, func: Optional[FuncDef]):
        self.name = name
        self.func = func
        self.nodes: Dict[int, CfgNode] = {}
        self.succs: Dict[int, List[Edge]] = {}
        self.preds: Dict[int, List[Edge]] = {}
        self.entry = -1
        self.exit = -1
        self.raise_exit = -1
        self.is_generator = False

    def node(self, node_id: int) -> CfgNode:
        return self.nodes[node_id]

    def key(self, node_id: int) -> str:
        node = self.nodes[node_id]
        if node.stmt is None:
            return node.label
        if node.label in STRUCTURAL_LABELS:
            return f"{node.label}@L{node.lineno}"
        return f"L{node.lineno}"

    def edge_set(self) -> Set[Tuple[str, str, str]]:
        out: Set[Tuple[str, str, str]] = set()
        for edges in self.succs.values():
            for edge in edges:
                out.add((self.key(edge.src), edge.kind, self.key(edge.dst)))
        return out


def statement_yields(node: ast.AST) -> bool:
    """Does ``node`` contain a yield outside nested defs/lambdas?

    The top-level node itself may be a function def (when asking "is
    this function a generator"); only *nested* defs are opaque.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        item = stack.pop()
        if isinstance(item, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(item))
    return False


def _contains_call(stmt: ast.AST) -> bool:
    """True when the statement performs any call (a may-raise site)."""
    return any(isinstance(node, ast.Call) for node in ast.walk(stmt))


class _LoopCtx:
    __slots__ = ("header", "fin_depth", "break_ends")

    def __init__(self, header: int, fin_depth: int):
        self.header = header
        self.fin_depth = fin_depth
        self.break_ends: Ends = []


class _FinallyCtx:
    """An active ``finally`` body: one subgraph, many continuations."""

    __slots__ = ("entry", "exits", "routed")

    def __init__(self, entry: int, exits: Ends):
        self.entry = entry
        self.exits = exits          # open ends of the finally body
        self.routed: Set[int] = set()  # targets already wired outward


class _CfgBuilder:
    def __init__(self, func: FuncDef, name: str):
        self.cfg = Cfg(name, func)
        self._next_id = 0
        self.cfg.entry = self._new(None, "entry")
        self.cfg.exit = self._new(None, "exit")
        self.cfg.raise_exit = self._new(None, "raise")
        #: Innermost-last exception continuations, each recording how
        #: many finally contexts were active when it was pushed (jumps
        #: to it unwind only the finals opened after that point).
        self._exc_stack: List[Tuple[int, int]] = [(self.cfg.raise_exit, 0)]
        self._loops: List[_LoopCtx] = []
        self._finals: List[_FinallyCtx] = []
        self._cleanup_depth = 0
        self.cfg.is_generator = statement_yields(func)

    # -- plumbing ------------------------------------------------------

    def _new(self, stmt: Optional[ast.AST], label: str) -> int:
        node_id = self._next_id
        self._next_id += 1
        self.cfg.nodes[node_id] = CfgNode(node_id, stmt, label)
        self.cfg.succs[node_id] = []
        self.cfg.preds[node_id] = []
        return node_id

    def _connect(self, src: int, dst: int, kind: str) -> None:
        for edge in self.cfg.succs[src]:
            if edge.dst == dst and edge.kind == kind:
                return
        edge = Edge(src, dst, kind)
        self.cfg.succs[src].append(edge)
        self.cfg.preds[dst].append(edge)

    def _connect_ends(self, ends: Ends, dst: int,
                      override: Optional[str] = None) -> None:
        for src, kind in ends:
            self._connect(src, dst, override or kind)

    def _route(self, src: int, kind: str, target: int,
               through: Sequence[_FinallyCtx]) -> None:
        """Connect ``src`` to ``target`` with ``kind``, unwinding
        through the given (innermost-first) finally bodies.  Only the
        first hop keeps ``kind``; continuation hops out of a finally
        use each exit's natural kind, so the finally body's own effects
        (e.g. a release) stay visible on the continued path."""
        if not through:
            self._connect(src, target, kind)
            return
        ctx = through[0]
        self._connect(src, ctx.entry, kind)
        if target in ctx.routed:
            return
        ctx.routed.add(target)
        for end, end_kind in ctx.exits:
            self._route(end, end_kind, target, through[1:])

    def _raise_to(self, src: int, kind: str) -> None:
        """Route an exception/interrupt from ``src`` to the innermost
        exception continuation, through intervening finally bodies."""
        target, depth = self._exc_stack[-1]
        self._route(src, kind, target, list(reversed(self._finals[depth:])))

    def _push_exc(self, target: int) -> None:
        self._exc_stack.append((target, len(self._finals)))

    def _pop_exc(self) -> None:
        self._exc_stack.pop()

    # -- statement walk ------------------------------------------------

    def build(self) -> Cfg:
        func = self.cfg.func
        ends = self._body(list(func.body) if func is not None else [],
                          [(self.cfg.entry, NEXT)])
        self._connect_ends(ends, self.cfg.exit)
        return self.cfg

    def _body(self, stmts: Sequence[ast.stmt], ends: Ends) -> Ends:
        for stmt in stmts:
            ends = self._stmt(stmt, ends)
            if not ends:
                break
        return ends

    def _stmt(self, stmt: ast.stmt, ends: Ends) -> Ends:
        handler = getattr(self, f"_stmt_{type(stmt).__name__}", None)
        if handler is not None:
            result: Ends = handler(stmt, ends)
            return result
        return self._simple(stmt, ends)

    def _place(self, stmt: ast.AST, ends: Ends, label: str) -> int:
        node = self._new(stmt, label)
        self._connect_ends(ends, node)
        return node

    def _simple(self, stmt: ast.stmt, ends: Ends) -> Ends:
        node = self._place(stmt, ends, "stmt")
        if statement_yields(stmt):
            self._raise_to(node, INTERRUPT)
        elif isinstance(stmt, ast.Assert):
            self._raise_to(node, EXCEPT)
        elif self._in_handler_scope() and _contains_call(stmt):
            # Inside a try/with the author signalled exception
            # awareness: calls must reach the handler/cleanup, or the
            # except bodies would be dead code in the dataflow.  Plain
            # statements outside any try stay non-raising -- interrupts
            # at yields are the hazard this CFG models there.
            self._raise_to(node, EXCEPT)
        return [(node, NEXT)]

    def _in_handler_scope(self) -> bool:
        """True when some try/except, try/finally, or with is open --
        but not while building cleanup code, which is non-raising."""
        if self._cleanup_depth:
            return False
        return len(self._exc_stack) > 1 or bool(self._finals)

    # -- branches and loops --------------------------------------------

    def _stmt_If(self, stmt: ast.If, ends: Ends) -> Ends:
        test = self._place(stmt, ends, "if")
        if statement_yields(stmt.test):
            self._raise_to(test, INTERRUPT)
        out = self._body(stmt.body, [(test, TRUE)])
        if stmt.orelse:
            out = out + self._body(stmt.orelse, [(test, FALSE)])
        else:
            out = out + [(test, FALSE)]
        return out

    def _stmt_While(self, stmt: ast.While, ends: Ends) -> Ends:
        header = self._place(stmt, ends, "while")
        if statement_yields(stmt.test):
            self._raise_to(header, INTERRUPT)
        ctx = _LoopCtx(header, len(self._finals))
        self._loops.append(ctx)
        body_ends = self._body(stmt.body, [(header, TRUE)])
        self._loops.pop()
        self._connect_ends(body_ends, header, override=LOOP)
        out: Ends = []
        if stmt.orelse:
            out.extend(self._body(stmt.orelse, [(header, FALSE)]))
        else:
            out.append((header, FALSE))
        out.extend(ctx.break_ends)
        return out

    def _loop_stmt(self, stmt: Union[ast.For, ast.AsyncFor],
                   ends: Ends) -> Ends:
        header = self._place(stmt, ends, "for")
        if statement_yields(stmt.iter):
            self._raise_to(header, INTERRUPT)
        ctx = _LoopCtx(header, len(self._finals))
        self._loops.append(ctx)
        body_ends = self._body(stmt.body, [(header, TRUE)])
        self._loops.pop()
        self._connect_ends(body_ends, header, override=LOOP)
        out: Ends = []
        if stmt.orelse:
            out.extend(self._body(stmt.orelse, [(header, FALSE)]))
        else:
            out.append((header, FALSE))
        out.extend(ctx.break_ends)
        return out

    _stmt_For = _loop_stmt
    _stmt_AsyncFor = _loop_stmt

    def _stmt_Break(self, stmt: ast.Break, ends: Ends) -> Ends:
        node = self._place(stmt, ends, "break")
        if self._loops:
            ctx = self._loops[-1]
            through = list(reversed(self._finals[ctx.fin_depth:]))
            if through:
                # The loop exit is not built yet: run the finals now
                # and surface their exits as the break's open ends.
                self._connect(node, through[0].entry, NEXT)
                ctx.break_ends.extend(self._chain_exits(through))
            else:
                ctx.break_ends.append((node, NEXT))
        return []

    def _chain_exits(self, through: Sequence[_FinallyCtx]) -> Ends:
        """Wire consecutive finally bodies together and return the open
        ends of the outermost one."""
        for inner, outer in zip(through, through[1:]):
            self._connect_ends(inner.exits, outer.entry)
        return list(through[-1].exits)

    def _stmt_Continue(self, stmt: ast.Continue, ends: Ends) -> Ends:
        node = self._place(stmt, ends, "continue")
        if self._loops:
            ctx = self._loops[-1]
            through = list(reversed(self._finals[ctx.fin_depth:]))
            self._route(node, LOOP, ctx.header, through)
        return []

    # -- return / raise ------------------------------------------------

    def _stmt_Return(self, stmt: ast.Return, ends: Ends) -> Ends:
        node = self._place(stmt, ends, "return")
        if stmt.value is not None and statement_yields(stmt.value):
            self._raise_to(node, INTERRUPT)
        self._route(node, NEXT, self.cfg.exit, list(reversed(self._finals)))
        return []

    def _stmt_Raise(self, stmt: ast.Raise, ends: Ends) -> Ends:
        node = self._place(stmt, ends, "raise-stmt")
        self._raise_to(node, EXCEPT)
        return []

    # -- with ----------------------------------------------------------

    def _with_stmt(self, stmt: Union[ast.With, ast.AsyncWith],
                   ends: Ends) -> Ends:
        enter = self._place(stmt, ends, "with")
        if any(statement_yields(item.context_expr) for item in stmt.items):
            self._raise_to(enter, INTERRUPT)
        # __exit__ runs on both the normal and the exceptional path;
        # exceptions then continue outward from the cleanup node.
        cleanup = self._new(stmt, "with-exit")
        self._push_exc(cleanup)
        body_ends = self._body(stmt.body, [(enter, NEXT)])
        self._pop_exc()
        self._connect_ends(body_ends, cleanup)
        self._raise_to(cleanup, EXCEPT)
        return [(cleanup, NEXT)]

    _stmt_With = _with_stmt
    _stmt_AsyncWith = _with_stmt

    # -- try -----------------------------------------------------------

    def _stmt_Try(self, stmt: ast.Try, ends: Ends) -> Ends:
        fin_ctx: Optional[_FinallyCtx] = None
        if stmt.finalbody:
            fin_entry = self._new(stmt, "finally")
            # Cleanup code is modelled as non-raising: a release() that
            # itself fails is out of scope, and an except edge here
            # would carry a pre-state in which the cleanup "never ran",
            # flagging every correctly nested try/finally.
            self._cleanup_depth += 1
            fin_exits = self._body(stmt.finalbody, [(fin_entry, NEXT)])
            self._cleanup_depth -= 1
            fin_ctx = _FinallyCtx(fin_entry, fin_exits)
            self._finals.append(fin_ctx)

        dispatch: Optional[int] = None
        if stmt.handlers:
            dispatch = self._new(stmt, "except-dispatch")
            self._push_exc(dispatch)
        body_ends = self._body(stmt.body, ends)
        if dispatch is not None:
            self._pop_exc()
        if stmt.orelse:
            # `else` runs only on normal completion, outside the
            # handlers' protection.
            body_ends = self._body(stmt.orelse, body_ends)
        normal_ends = list(body_ends)

        if dispatch is not None:
            for handler in stmt.handlers:
                h_entry = self._new(handler, "except")
                self._connect(dispatch, h_entry, EXCEPT)
                normal_ends.extend(self._body(handler.body,
                                              [(h_entry, NEXT)]))
            # No handler matched: the exception continues outward,
            # running this try's finally (still on self._finals) first.
            self._raise_to(dispatch, EXCEPT)

        if fin_ctx is not None:
            self._finals.pop()
            self._connect_ends(normal_ends, fin_ctx.entry)
            return list(fin_ctx.exits)
        return normal_ends

    # -- match (3.10+) -------------------------------------------------

    def _stmt_Match(self, stmt: ast.Match, ends: Ends) -> Ends:
        header = self._place(stmt, ends, "match")
        out: Ends = [(header, FALSE)]
        for case in stmt.cases:
            out.extend(self._body(case.body, [(header, TRUE)]))
        return out


def build_cfg(func: FuncDef, name: Optional[str] = None) -> Cfg:
    """Build the control-flow graph of one function/method."""
    return _CfgBuilder(func, name or func.name).build()


# ----------------------------------------------------------------------
# Dataflow engine
# ----------------------------------------------------------------------

def _join(states: Sequence[State], must: bool) -> Dict[str,
                                                       FrozenSet[object]]:
    keys: Set[str] = set()
    for state in states:
        keys.update(state)
    out: Dict[str, FrozenSet[object]] = {}
    for key in keys:
        values = [state.get(key, frozenset()) for state in states]
        if must:
            merged = values[0]
            for value in values[1:]:
                merged = merged & value
        else:
            merged = frozenset().union(*values)
        if merged:
            out[key] = merged
    return out


def forward(
    cfg: Cfg,
    init: State,
    transfer: Callable[[CfgNode, State], State],
    refine_edge: Optional[Callable[[CfgNode, str, State],
                                   Optional[State]]] = None,
    must: bool = False,
    max_iterations: int = 100_000,
) -> Tuple[Dict[int, State], Dict[int, State]]:
    """Forward worklist dataflow; returns ``(in_states, out_states)``.

    ``transfer(node, in_state)`` computes a node's post-state.  Normal
    edges propagate the post-state; ``except``/``interrupt`` edges
    propagate the *pre*-state (the statement's effect never completed).
    ``refine_edge(node, kind, state)`` may sharpen the state flowing
    down one edge (branch-condition awareness) or return None to keep
    it unchanged.  ``must=True`` joins with intersection (a fact holds
    only if every incoming path agrees); the default union join tracks
    may-facts.
    """
    in_states: Dict[int, State] = {cfg.entry: dict(init)}
    out_states: Dict[int, State] = {}
    worklist: List[int] = [cfg.entry]
    steps = 0
    while worklist:
        steps += 1
        if steps > max_iterations:
            break  # defensive: terminate conservatively
        node_id = worklist.pop()
        node = cfg.nodes[node_id]
        in_state = in_states.get(node_id, {})
        out_state = transfer(node, in_state)
        out_states[node_id] = out_state
        for edge in cfg.succs[node_id]:
            base = in_state if edge.kind in ABRUPT_KINDS else out_state
            if refine_edge is not None:
                refined = refine_edge(node, edge.kind, base)
                if refined is not None:
                    base = refined
            old = in_states.get(edge.dst)
            if old is None:
                in_states[edge.dst] = dict(base)
            else:
                merged = _join([old, base], must)
                if merged == dict(old):
                    continue
                in_states[edge.dst] = merged
            worklist.append(edge.dst)
    return in_states, out_states


# ----------------------------------------------------------------------
# Module call graph
# ----------------------------------------------------------------------

class ModuleGraph:
    """Call graph over one module's local functions and methods.

    Functions are keyed by qualified name (``helper`` /
    ``Class.method``).  Calls resolve ``helper(...)``,
    ``self.method(...)``/``cls.method(...)`` (within the defining
    class), and ``ClassName.method(...)``; anything else -- external
    calls, dynamic dispatch across classes -- is outside the graph.
    """

    def __init__(self, tree: ast.Module,
                 imports: Optional[ImportTable] = None):
        self.tree = tree
        self.imports = imports if imports is not None else ImportTable(tree)
        self.functions: Dict[str, FuncDef] = {}
        self.owner_class: Dict[str, Optional[str]] = {}
        self.calls: Dict[str, Set[str]] = {}
        self._collect(tree.body, prefix="", cls=None)
        for qualname, func in self.functions.items():
            self.calls[qualname] = self._local_calls(qualname, func)

    def _collect(self, body: Sequence[ast.stmt], prefix: str,
                 cls: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                self.functions[qualname] = node
                self.owner_class[qualname] = cls
            elif isinstance(node, ast.ClassDef):
                self._collect(node.body, prefix=f"{node.name}.",
                              cls=node.name)

    def _local_calls(self, qualname: str, func: FuncDef) -> Set[str]:
        cls = self.owner_class[qualname]
        callees: Set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            target = self.resolve_call(node.func, cls)
            if target is not None:
                callees.add(target)
        return callees

    def resolve_call(self, func: ast.AST,
                     cls: Optional[str]) -> Optional[str]:
        """Qualified name of the *local* function ``func`` refers to,
        from the body of a method of ``cls`` (or a module function when
        ``cls`` is None); None when the target is not in this module."""
        if isinstance(func, ast.Name):
            if func.id in self.functions:
                return func.id
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            if func.value.id in ("self", "cls") and cls is not None:
                qualname = f"{cls}.{func.attr}"
            else:
                qualname = f"{func.value.id}.{func.attr}"
            if qualname in self.functions:
                return qualname
        return None

    def transitive_callees(self, qualname: str,
                           max_depth: int = 8) -> Set[str]:
        """Every local function reachable from ``qualname``."""
        seen: Set[str] = set()
        frontier = {qualname}
        for _ in range(max_depth):
            nxt: Set[str] = set()
            for name in sorted(frontier):
                for callee in self.calls.get(name, ()):
                    if callee not in seen:
                        seen.add(callee)
                        nxt.add(callee)
            if not nxt:
                break
            frontier = nxt
        return seen

    def summarize(
        self,
        per_function: Callable[[str, FuncDef], FrozenSet[object]],
        max_depth: int = 8,
    ) -> Dict[str, FrozenSet[object]]:
        """Transitive closure of a per-function fact set.

        ``per_function`` computes each function's *direct* facts; the
        result maps every function to the union of its own facts and
        those of everything it (transitively) calls.
        """
        direct = {name: per_function(name, func)
                  for name, func in self.functions.items()}
        out: Dict[str, FrozenSet[object]] = {}
        for name in self.functions:
            facts = frozenset(direct[name])
            for callee in self.transitive_callees(name, max_depth):
                facts |= direct.get(callee, frozenset())
            out[name] = facts
        return out


def iter_functions(
        tree: ast.Module) -> List[Tuple[str, FuncDef, Optional[str]]]:
    """(qualname, func, owning class) for every def in the module."""
    entries: List[Tuple[str, FuncDef, Optional[str]]] = []

    def walk(body: Sequence[ast.stmt], prefix: str,
             cls: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                entries.append((f"{prefix}{node.name}", node, cls))
                # Nested defs are analyzed independently.
                walk(node.body, f"{prefix}{node.name}.<locals>.", cls)
            elif isinstance(node, ast.ClassDef):
                walk(node.body, f"{node.name}.", node.name)

    walk(tree.body, "", None)
    return entries
