"""P-rules: API protocol state machines on the flow CFG.

Each rule declares the legal call-order protocol of one production API
and checks it with a may-typestate dataflow (union join: a state is
possible if any path produces it), refined by the branch conditions the
code actually guards with (``if qp.reclaimed: ...``).  The QueuePair
rule is additionally *interprocedural*: a module-local helper that
posts on a parameter without establishing it first is summarized, and
the violation is reported at the call site that passed an unconnected
QP -- the caller holds the state machine, the helper just runs it.

* **P001** ``QueuePair``: construct (``deferred=True`` starts
  unestablished) -> ``establish``/``reconnect`` -> ``post*`` ->
  ``reclaim``; no post before establishment or after reclaim, no
  establish after reclaim, no double reclaim.
* **P002** ``Rebalancer``: ``plan_rebalance`` -> ``execute`` exactly
  once; an unexecuted plan at function exit means the membership
  change it encodes silently never streams.
* **P003** ``TenantTier`` degradation: ``degraded = True`` ->
  flush -> ``degraded = False``; re-promoting without the flush
  abandons dirty chunks in the mirror.
* **P004** verb programs: build step list -> seal into
  ``VerbProgram`` -> post; mutating the step list after sealing never
  reaches the wire, and posting an unsealed list skips validation.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis import flow
from repro.analysis.flow import Cfg, CfgNode, ModuleGraph, Resolver, State
from repro.analysis.report import Finding
from repro.analysis.rules import RULES

__all__ = ["analyze_protocols"]

_POST_ATTRS = {"post", "post_many", "post_program"}
_ESTABLISH_ATTRS = {"establish", "reconnect", "connect"}
_MUTATORS = {"append", "extend", "insert", "pop", "clear", "remove"}

_QP = "qp|"        # state-key prefixes, one namespace per rule
_PLAN = "plan|"
_TENANT = "deg|"
_STEPS = "steps|"


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    if isinstance(node, ast.Call):
        yield node
    while stack:
        item = stack.pop()
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(item, ast.Call):
            yield item
        stack.extend(ast.iter_child_nodes(item))


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _qp_summaries(graph: ModuleGraph) -> Dict[str, Set[str]]:
    """Per local function: parameter names posted on without a local
    ``establish`` -- including transitively, through other local
    helpers the parameter is forwarded to."""
    params: Dict[str, List[str]] = {}
    for qualname, func in graph.functions.items():
        names = [a.arg for a in func.args.args if a.arg not in
                 ("self", "cls")]
        params[qualname] = names
    summaries: Dict[str, Set[str]] = {name: set() for name in
                                      graph.functions}
    for qualname, func in graph.functions.items():
        established: Set[str] = set()
        for call in _calls_in(func):
            if (isinstance(call.func, ast.Attribute)
                    and isinstance(call.func.value, ast.Name)
                    and call.func.attr in _ESTABLISH_ATTRS):
                established.add(call.func.value.id)
        for call in _calls_in(func):
            if (isinstance(call.func, ast.Attribute)
                    and isinstance(call.func.value, ast.Name)
                    and call.func.attr in _POST_ATTRS):
                name = call.func.value.id
                if name in params[qualname] and name not in established:
                    summaries[qualname].add(name)
    # Propagate through straight argument forwarding, to a fixpoint.
    for _ in range(len(graph.functions)):
        changed = False
        for qualname, func in graph.functions.items():
            cls = graph.owner_class[qualname]
            established = set()  # re-derive cheap guard
            for call in _calls_in(func):
                if (isinstance(call.func, ast.Attribute)
                        and isinstance(call.func.value, ast.Name)
                        and call.func.attr in _ESTABLISH_ATTRS):
                    established.add(call.func.value.id)
            for call in _calls_in(func):
                callee = graph.resolve_call(call.func, cls)
                if callee is None:
                    continue
                callee_params = params.get(callee, [])
                for index, arg in enumerate(call.args):
                    if not isinstance(arg, ast.Name):
                        continue
                    if index >= len(callee_params):
                        continue
                    if callee_params[index] not in summaries[callee]:
                        continue
                    name = arg.id
                    if (name in params[qualname]
                            and name not in established
                            and name not in summaries[qualname]):
                        summaries[qualname].add(name)
                        changed = True
        if not changed:
            break
    return summaries


class _FunctionProtocols:
    def __init__(self, path: str, qualname: str, func: flow.FuncDef,
                 cls: Optional[str], graph: ModuleGraph,
                 resolver: Resolver, qp_summaries: Dict[str, Set[str]]):
        self.path = path
        self.qualname = qualname
        self.func = func
        self.cls = cls
        self.graph = graph
        self.resolver = resolver
        self.qp_summaries = qp_summaries
        self.cfg: Cfg = flow.build_cfg(func, qualname)
        self.findings: List[Finding] = []
        self._emitted: Set[Tuple[str, int, str]] = set()
        #: plan anchor node id -> (lineno, col, var)
        self.plan_anchors: Dict[int, Tuple[int, int, str]] = {}

    # -- emit ----------------------------------------------------------

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        key = (rule_id, lineno, message)
        if key in self._emitted:
            return
        self._emitted.add(key)
        rule = RULES[rule_id]
        self.findings.append(Finding(
            rule=rule_id, severity=rule.severity, path=self.path,
            line=lineno, col=getattr(node, "col_offset", 0),
            message=message, hint=rule.hint,
            detail={"function": self.qualname}))

    # -- transfer ------------------------------------------------------

    def _transfer(self, node: CfgNode, state: State) -> State:
        if node.is_structural or node.stmt is None:
            return state
        if node.label in ("while", "for", "with"):
            return state
        stmt = node.stmt
        new: Dict[str, FrozenSet[object]] = dict(state)
        if isinstance(stmt, ast.Assign):
            self._assign(stmt, node, new)
        if node.label != "if":
            for call in _calls_in(stmt):
                self._call(call, new)
        self._escapes(stmt, new)
        return new

    def _assign(self, stmt: ast.Assign, node: CfgNode,
                new: Dict[str, FrozenSet[object]]) -> None:
        if len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        value = stmt.value
        # P003: <base>.degraded = True / False
        if (isinstance(target, ast.Attribute) and target.attr == "degraded"
                and isinstance(value, ast.Constant)):
            base = flow.dotted_name(target.value)
            if base is not None:
                key = _TENANT + base
                held = new.get(key, frozenset())
                if value.value is True:
                    new[key] = frozenset({"degraded"})
                elif value.value is False:
                    if "degraded" in held and "flushed" not in held:
                        self._emit(
                            "P003", stmt,
                            f"{base} re-promoted (degraded = False) "
                            f"without flushing its dirty mirror first")
                    new.pop(key, None)
            return
        if not isinstance(target, ast.Name):
            return
        var = target.id
        inner = value.value if isinstance(
            value, (ast.Yield, ast.YieldFrom)) else value
        # P004: steps list construction.
        if isinstance(inner, (ast.List, ast.ListComp)):
            new[_STEPS + var] = frozenset({"building"})
            return
        if not isinstance(inner, ast.Call):
            # Rebinding a tracked name to something untracked.
            for prefix in (_QP, _PLAN, _STEPS):
                new.pop(prefix + var, None)
            return
        resolved = self.resolver.resolve(inner.func) or ""
        tail = resolved.rsplit(".", 1)[-1]
        if tail == "QueuePair" or (
                isinstance(inner.func, ast.Attribute)
                and inner.func.attr == "create_qp"):
            deferred = False
            dynamic = False
            for kw in inner.keywords:
                if kw.arg == "deferred":
                    if isinstance(kw.value, ast.Constant):
                        deferred = bool(kw.value.value)
                    else:
                        dynamic = True
            if dynamic:
                new[_QP + var] = frozenset({"deferred", "established"})
            elif deferred:
                new[_QP + var] = frozenset({"deferred"})
            else:
                new[_QP + var] = frozenset({"established"})
            return
        if tail == "plan_rebalance" or (
                isinstance(inner.func, ast.Attribute)
                and inner.func.attr == "plan_rebalance"):
            new[_PLAN + var] = frozenset({("planned", id(stmt))})
            self.plan_anchors[id(stmt)] = (stmt.lineno, stmt.col_offset,
                                           var)
            return
        if tail == "list" and inner.args:
            new[_STEPS + var] = frozenset({"building"})

    def _call(self, call: ast.Call,
              new: Dict[str, FrozenSet[object]]) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            self._interprocedural(call, new)
            return
        attr = func.attr
        base = func.value
        var = base.id if isinstance(base, ast.Name) else None
        # -- P001 -----------------------------------------------------
        if var is not None and _QP + var in new:
            states = new[_QP + var]
            if attr in _POST_ATTRS:
                if "deferred" in states and "established" not in states:
                    self._emit("P001", call,
                               f"{attr}() on {var} before it is "
                               f"established: the QP is still deferred "
                               f"on some path")
                elif states == frozenset({"reclaimed"}):
                    self._emit("P001", call,
                               f"{attr}() on {var} after reclaim: the "
                               f"QP is gone from its endpoints")
            elif attr in _ESTABLISH_ATTRS:
                if states == frozenset({"reclaimed"}):
                    self._emit("P001", call,
                               f"{attr}() on {var} after reclaim: a "
                               f"reclaimed QP can never be "
                               f"re-established")
                new[_QP + var] = frozenset({"established"})
            elif attr == "reclaim":
                if states == frozenset({"reclaimed"}):
                    self._emit("P001", call,
                               f"reclaim() on {var} twice: guard with "
                               f"`if not {var}.reclaimed`")
                new[_QP + var] = frozenset({"reclaimed"})
        # -- P002 -----------------------------------------------------
        if attr == "execute":
            for arg in call.args:
                if not isinstance(arg, ast.Name):
                    continue
                key = _PLAN + arg.id
                if key not in new:
                    continue
                if any(isinstance(s, tuple) and s[0] == "consumed"
                       for s in new[key]):
                    self._emit("P002", call,
                               f"rebalance plan {arg.id} executed "
                               f"twice: each plan's write gates and "
                               f"stream arcs are single-use")
                new[key] = frozenset({("consumed",)})
        # -- P003: flush marks the tenant re-promotable ----------------
        if "flush" in attr:
            marks: List[str] = []
            receiver = flow.dotted_name(base)
            if receiver is not None:
                marks.append(receiver)
            for arg in call.args:
                dotted = flow.dotted_name(arg)
                if dotted is not None:
                    marks.append(dotted)
            for mark in marks:
                key = _TENANT + mark
                if key in new and "degraded" in new[key]:
                    new[key] = new[key] | {"flushed"}
        # -- P004 -----------------------------------------------------
        if var is not None and _STEPS + var in new:
            states = new[_STEPS + var]
            if attr in _MUTATORS and "sealed" in states:
                self._emit("P004", call,
                           f"{var}.{attr}() after the steps were sealed "
                           f"into a VerbProgram: the mutation never "
                           f"reaches the wire")
        if attr == "post_program":
            for arg in call.args:
                if (isinstance(arg, ast.Name)
                        and _STEPS + arg.id in new
                        and "sealed" not in new[_STEPS + arg.id]):
                    self._emit("P004", call,
                               f"post_program({arg.id}) with an "
                               f"unsealed step list: wrap it in "
                               f"VerbProgram first so validation runs")
        # Sealing: steps var referenced in a VerbProgram(...) call.
        resolved = self.resolver.resolve(func) or ""
        if resolved.rsplit(".", 1)[-1] == "VerbProgram":
            self._seal(call, new)
        self._interprocedural(call, new)

    def _seal(self, call: ast.Call,
              new: Dict[str, FrozenSet[object]]) -> None:
        for name in _names_in(call):
            key = _STEPS + name
            if key in new:
                new[key] = new[key] | {"sealed"}

    def _interprocedural(self, call: ast.Call,
                         new: Dict[str, FrozenSet[object]]) -> None:
        """P001 across helpers: passing a may-unestablished QP to a
        local function summarized as posting on that parameter."""
        if isinstance(call.func, ast.Name) and (
                self.resolver.resolve(call.func) or
                "").rsplit(".", 1)[-1] == "VerbProgram":
            self._seal(call, new)
        callee = self.graph.resolve_call(call.func, self.cls)
        if callee is None:
            return
        callee_func = self.graph.functions.get(callee)
        if callee_func is None:
            return
        callee_params = [a.arg for a in callee_func.args.args
                         if a.arg not in ("self", "cls")]
        posts_on = self.qp_summaries.get(callee, set())
        for index, arg in enumerate(call.args):
            if not isinstance(arg, ast.Name):
                continue
            key = _QP + arg.id
            if key not in new or index >= len(callee_params):
                continue
            if callee_params[index] not in posts_on:
                continue
            states = new[key]
            if "deferred" in states and "established" not in states:
                self._emit("P001", call,
                           f"{callee}() posts on {arg.id}, which is "
                           f"still deferred on some path at this call "
                           f"site")
            elif states == frozenset({"reclaimed"}):
                self._emit("P001", call,
                           f"{callee}() posts on {arg.id} after it was "
                           f"reclaimed")

    def _protocol_consumed(self, call: ast.Call) -> bool:
        """Calls whose arguments the typestate transfer itself models;
        their arguments must stay tracked past this statement."""
        if isinstance(call.func, ast.Attribute) and call.func.attr in (
                "execute", "post_program"):
            return True
        resolved = self.resolver.resolve(call.func) or ""
        return resolved.rsplit(".", 1)[-1] in ("VerbProgram", "tuple")

    def _escapes(self, stmt: ast.stmt,
                 new: Dict[str, FrozenSet[object]]) -> None:
        """Ownership transfers end local tracking (may-analysis stays
        sound: we only ever *stop* reporting)."""
        escaped: Set[str] = set()
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            escaped |= _names_in(stmt.value)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    escaped |= _names_in(stmt.value)
        for call in _calls_in(stmt):
            if self._protocol_consumed(call):
                continue
            func_names: Set[str] = set()
            if isinstance(call.func, ast.Attribute):
                func_names = _names_in(call.func.value)
            for arg in list(call.args) + [kw.value for kw in
                                          call.keywords]:
                for name in _names_in(arg):
                    if name not in func_names:
                        escaped.add(name)
        for name in escaped:
            new.pop(_QP + name, None)
            new.pop(_PLAN + name, None)
            new.pop(_STEPS + name, None)

    # -- branch refinement --------------------------------------------

    def _refine(self, node: CfgNode, kind: str,
                state: State) -> Optional[State]:
        """`if qp.reclaimed:` / `if not qp.reclaimed:` refine the QP
        typestate down each arm."""
        if node.label != "if" or not isinstance(node.stmt, ast.If):
            return None
        test = node.stmt.test
        negated = False
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            negated = True
            test = test.operand
        if not (isinstance(test, ast.Attribute)
                and test.attr == "reclaimed"
                and isinstance(test.value, ast.Name)):
            return None
        key = _QP + test.value.id
        if key not in state:
            return None
        reclaimed_arm = (kind == "true") != negated
        new = dict(state)
        if reclaimed_arm:
            new[key] = frozenset({"reclaimed"})
        else:
            remaining = new[key] - {"reclaimed"}
            new[key] = remaining if remaining else frozenset(
                {"established"})
        return new

    def run(self) -> List[Finding]:
        in_states, _out = flow.forward(
            self.cfg, {}, self._transfer, refine_edge=self._refine)
        # P002 leak check: plans still `planned` at the normal exit.
        # The raise exit is deliberately excluded -- an exception raised
        # while driving execute(plan) is a failed execution, not a
        # dropped plan, and the whole rebalance unwinds with it.
        reported: Set[int] = set()
        for exit_id in (self.cfg.exit,):
            for key, states in in_states.get(exit_id, {}).items():
                if not key.startswith(_PLAN):
                    continue
                for item in states:
                    if (isinstance(item, tuple) and item
                            and item[0] == "planned"):
                        anchor = item[1]
                        assert isinstance(anchor, int)
                        if anchor in reported:
                            continue
                        reported.add(anchor)
                        lineno, col, var = self.plan_anchors.get(
                            anchor, (0, 0, key[len(_PLAN):]))
                        rule = RULES["P002"]
                        self.findings.append(Finding(
                            rule="P002", severity=rule.severity,
                            path=self.path, line=lineno, col=col,
                            message=f"rebalance plan {var} is never "
                                    f"executed on some path: the "
                                    f"membership change silently does "
                                    f"not stream",
                            hint=rule.hint,
                            detail={"function": self.qualname}))
        return self.findings


def analyze_protocols(tree: ast.Module, path: str,
                      resolver: Resolver) -> List[Finding]:
    """Run every P-rule over one parsed module."""
    graph = ModuleGraph(tree, resolver.imports)
    qp_summaries = _qp_summaries(graph)
    findings: List[Finding] = []
    for qualname, func, cls in flow.iter_functions(tree):
        analysis = _FunctionProtocols(path, qualname, func, cls, graph,
                                      resolver, qp_summaries)
        findings.extend(analysis.run())
    return findings
