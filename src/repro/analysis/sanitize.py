"""Replay-divergence sanitizer: run twice, diff the kernel schedule.

The determinism contract behind the fault log, the shard replay gate,
and the sweep result cache is "same seed, bit-identical run".  The
sanitizer checks it end to end: it runs a workload twice from the same
seed while recording every kernel scheduling action (process spawns,
resumes, event triggers, interrupts) *and* every draw from every
:class:`repro.sim.rng.RngRegistry` stream, then bisects the first
diverging trace entry with prefix-digest binary search and attributes
it -- either to a named RNG stream whose draw sequence differs, or to a
pure scheduling divergence (wall-clock, global state, iteration order).

The recorder observes workloads that build their own Environments
internally via :func:`repro.sim.kernel.set_default_monitor`; RNG
observation monkeypatches :meth:`RngRegistry.stream` for the duration
of the run (wrappers are cached so stream identity is preserved).

Usage::

    report = sanitize(lambda seed: run_scenario("spot-churn", seed=seed))
    assert report.deterministic, report.describe()
"""

from __future__ import annotations

import contextlib
import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.analysis.hb import KernelMonitor
from repro.analysis.report import Finding
from repro.sim import kernel
from repro.sim.rng import RngRegistry

__all__ = ["DivergenceReport", "TraceRecorder", "WORKLOADS", "sanitize",
           "sanitize_schedulers"]


class TraceRecorder(KernelMonitor):
    """Records the kernel schedule (and RNG draws) as a flat trace.

    Entry shapes (all tuples, repr-stable across runs):

    * ``("spawn", pid, name)`` -- process creation, in creation order;
    * ``("resume", pid, name, event_type, now)`` -- a process resumed;
    * ``("step", pid, name, now)`` -- bootstrap / interrupt / failure;
    * ``("trigger", event_type, now)`` -- an event fired;
    * ``("interrupt", pid, name, now)`` -- someone interrupted ``pid``;
    * ``("rng", stream, method)`` -- one draw from a registry stream.

    Processes are identified by a deterministic spawn index, never by
    ``id()``, so two identical runs produce byte-identical traces.
    """

    def __init__(self) -> None:
        self.entries: List[tuple] = []
        self.rng_counts: Dict[str, int] = {}
        self._pids: Dict[Any, int] = {}
        self._next_pid = 1

    def _pid(self, process: Any) -> int:
        pid = self._pids.get(process)
        if pid is None:
            pid = self._pids[process] = self._next_pid
            self._next_pid += 1
        return pid

    def on_spawn(self, process: Any) -> None:
        self.entries.append(("spawn", self._pid(process), process.name))

    def on_resume(self, process: Any, event: Any) -> None:
        self.entries.append(("resume", self._pid(process), process.name,
                             type(event).__name__, process.env.now))

    def on_step(self, process: Any) -> None:
        self.entries.append(("step", self._pid(process), process.name,
                             process.env.now))

    def on_trigger(self, event: Any) -> None:
        self.entries.append(("trigger", type(event).__name__, event.env.now))

    def on_interrupt(self, process: Any) -> None:
        self.entries.append(("interrupt", self._pid(process), process.name,
                             process.env.now))

    def record_rng(self, stream: str, method: str) -> None:
        self.rng_counts[stream] = self.rng_counts.get(stream, 0) + 1
        self.entries.append(("rng", stream, method))


class _CountingStream:
    """Forwarding proxy over a numpy Generator that logs each draw."""

    __slots__ = ("_name", "_gen", "_recorder")

    def __init__(self, name: str, gen: Any, recorder: TraceRecorder):
        self._name = name
        self._gen = gen
        self._recorder = recorder

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._gen, attr)
        if not callable(value):
            return value
        name, recorder = self._name, self._recorder

        def draw(*args: Any, **kwargs: Any) -> Any:
            recorder.record_rng(name, attr)
            return value(*args, **kwargs)

        return draw


@contextlib.contextmanager
def _instrumented_rng(recorder: TraceRecorder) -> Iterator[None]:
    """Patch ``RngRegistry.stream`` to hand out counting proxies.

    Proxies are cached per (registry, stream) so the registry's
    same-name-same-object identity guarantee survives instrumentation.
    """
    original = RngRegistry.stream
    wrappers: Dict[Tuple[int, str], _CountingStream] = {}

    def stream(self: RngRegistry, stream_name: str) -> Any:
        gen = original(self, stream_name)
        key = (id(self), stream_name)
        wrapper = wrappers.get(key)
        if wrapper is None or wrapper._gen is not gen:
            wrapper = _CountingStream(stream_name, gen, recorder)
            wrappers[key] = wrapper
        return wrapper

    RngRegistry.stream = stream  # type: ignore[method-assign]
    try:
        yield
    finally:
        RngRegistry.stream = original  # type: ignore[method-assign]


@dataclass(frozen=True)
class DivergenceReport:
    """The outcome of one two-run replay comparison."""

    label: str
    seed: int
    deterministic: bool
    digest_a: str
    digest_b: str
    events_a: int
    events_b: int
    divergence_index: Optional[int] = None
    entry_a: Optional[tuple] = None
    entry_b: Optional[tuple] = None
    context: Tuple[tuple, ...] = ()
    rng_divergence: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def attribution(self) -> str:
        """One line naming the most likely source of the divergence."""
        if self.deterministic:
            return "deterministic"
        if self.rng_divergence:
            streams = ", ".join(sorted(self.rng_divergence))
            return (f"RNG stream(s) {streams} drew different numbers of "
                    f"values between the runs")
        return ("schedule divergence with identical RNG draw counts: "
                "suspect wall-clock reads, leaked global state, or "
                "unordered iteration (run `repro lint`)")

    def describe(self) -> str:
        if self.deterministic:
            return (f"replay OK: {self.label!r} seed={self.seed} is "
                    f"bit-identical over {self.events_a} kernel events "
                    f"(digest {self.digest_a[:16]})")
        lines = [
            f"replay DIVERGED: {self.label!r} seed={self.seed} at kernel "
            f"event {self.divergence_index} "
            f"({self.events_a} vs {self.events_b} events)",
            f"  run A: {self.entry_a!r}",
            f"  run B: {self.entry_b!r}",
        ]
        if self.context:
            lines.append("  last agreed events:")
            lines.extend(f"    {entry!r}" for entry in self.context)
        for stream in sorted(self.rng_divergence):
            count_a, count_b = self.rng_divergence[stream]
            lines.append(f"  rng stream {stream!r}: {count_a} draws in "
                         f"run A vs {count_b} in run B")
        lines.append(f"  attribution: {self.attribution}")
        return "\n".join(lines)

    def to_findings(self) -> List[Finding]:
        if self.deterministic:
            return []
        return [Finding(
            rule="DIVERGENCE", severity="error",
            path=f"<replay:{self.label}>",
            line=0, col=0,
            message=f"same-seed replay diverged at kernel event "
                    f"{self.divergence_index}: "
                    f"{self.entry_a!r} vs {self.entry_b!r}",
            hint=self.attribution,
            detail={
                "seed": self.seed,
                "events": [self.events_a, self.events_b],
                "entry_a": list(self.entry_a or ()),
                "entry_b": list(self.entry_b or ()),
                "rng_divergence": {k: list(v) for k, v in
                                   sorted(self.rng_divergence.items())},
            })]


def _record(workload: Callable[[int], Any], seed: int,
            scheduler: Optional[str] = None) -> TraceRecorder:
    """Run ``workload(seed)`` once under full instrumentation.

    Every install here is paired with a ``finally`` restore so a raising
    workload can never leak the recorder (or a scheduler override) into
    the caller's process-wide state.
    """
    recorder = TraceRecorder()
    previous_scheduler = (kernel.set_default_scheduler(scheduler)
                          if scheduler is not None else None)
    try:
        previous = kernel.set_default_monitor(recorder)
        try:
            with _instrumented_rng(recorder):
                workload(seed)
        finally:
            kernel.set_default_monitor(previous)
    finally:
        if scheduler is not None:
            kernel.set_default_scheduler(previous_scheduler)
    return recorder


def _prefix_digests(entries: List[tuple]) -> List[bytes]:
    """Chained digests: ``digests[i]`` fingerprints ``entries[:i]``."""
    digests = [b""]
    state = hashlib.sha256()
    for entry in entries:
        state.update(repr(entry).encode())
        digests.append(state.digest())
    return digests


def _first_divergence(a: List[tuple], b: List[tuple]) -> int:
    """Bisect the first index where the traces disagree."""
    digests_a = _prefix_digests(a)
    digests_b = _prefix_digests(b)
    limit = min(len(a), len(b))
    lo, hi = 0, limit  # invariant: prefixes of length lo agree
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if digests_a[mid] == digests_b[mid]:
            lo = mid
        else:
            hi = mid - 1
    return lo  # == limit when one trace is a prefix of the other


def _compare(run_a: TraceRecorder, run_b: TraceRecorder, seed: int,
             label: str, context_events: int) -> DivergenceReport:
    """Diff two recorded runs into a :class:`DivergenceReport`."""
    trace_a, trace_b = run_a.entries, run_b.entries
    digest_a = hashlib.sha256(
        repr(trace_a).encode()).hexdigest()
    digest_b = hashlib.sha256(
        repr(trace_b).encode()).hexdigest()
    if digest_a == digest_b:
        return DivergenceReport(
            label=label, seed=seed, deterministic=True,
            digest_a=digest_a, digest_b=digest_b,
            events_a=len(trace_a), events_b=len(trace_b))

    index = _first_divergence(trace_a, trace_b)
    entry_a = trace_a[index] if index < len(trace_a) else ("<end of trace>",)
    entry_b = trace_b[index] if index < len(trace_b) else ("<end of trace>",)
    context = tuple(trace_a[max(0, index - context_events):index])

    # Attribute over the *whole* traces, not just the divergent prefix:
    # trace entries record that a draw happened, not the value drawn, so
    # prefix counts can agree even when the streams consumed different
    # sequences (an extra draw displacing a later one).
    counts_a: Dict[str, int] = {}
    counts_b: Dict[str, int] = {}
    for trace, counts in ((trace_a, counts_a), (trace_b, counts_b)):
        for entry in trace:
            if entry[0] == "rng":
                counts[entry[1]] = counts.get(entry[1], 0) + 1
    rng_divergence = {
        stream: (counts_a.get(stream, 0), counts_b.get(stream, 0))
        for stream in sorted(set(counts_a) | set(counts_b))
        if counts_a.get(stream, 0) != counts_b.get(stream, 0)}

    return DivergenceReport(
        label=label, seed=seed, deterministic=False,
        digest_a=digest_a, digest_b=digest_b,
        events_a=len(trace_a), events_b=len(trace_b),
        divergence_index=index, entry_a=entry_a, entry_b=entry_b,
        context=context, rng_divergence=rng_divergence)


def sanitize(workload: Callable[[int], Any], seed: int = 0,
             label: str = "workload",
             context_events: int = 5) -> DivergenceReport:
    """Run ``workload(seed)`` twice and diff the kernel event traces.

    ``workload`` must be re-entrant: it builds all of its own state
    (Environments, registries, caches) from the seed argument.  Returns
    a :class:`DivergenceReport`; ``report.deterministic`` is the gate.
    """
    run_a = _record(workload, seed)
    run_b = _record(workload, seed)
    return _compare(run_a, run_b, seed, label, context_events)


def sanitize_schedulers(workload: Callable[[int], Any], seed: int = 0,
                        label: str = "workload",
                        context_events: int = 5) -> DivergenceReport:
    """Run ``workload(seed)`` under both kernel schedulers and diff.

    Run A uses the binary heap, run B the calendar queue.  The contract
    (DESIGN.md §5h) is that the event-list implementation is never
    observable in event ordering, so the two traces must be
    byte-identical -- same schedule, same RNG draw sequence.  A
    divergence here is a calendar-queue ordering bug, not a workload
    nondeterminism bug; the report's ``label`` is suffixed so the two
    failure modes read differently in CI logs.
    """
    run_heap = _record(workload, seed, scheduler="heap")
    run_calendar = _record(workload, seed, scheduler="calendar")
    return _compare(run_heap, run_calendar, seed,
                    f"{label}[heap-vs-calendar]", context_events)


# ---------------------------------------------------------------------------
# Named workloads for `python -m repro sanitize`
# ---------------------------------------------------------------------------

def _workload_measure(seed: int) -> None:
    """One small instrumented measurement run (the sweep hot path)."""
    from repro.core.config import RdmaConfig
    from repro.core.measurement import measure_config
    from repro.obs.metrics import MetricsRegistry

    measure_config(RdmaConfig(1, 0, 1, 4), 64, seed=seed,
                   batches_per_connection=20, warmup_batches=5,
                   metrics=MetricsRegistry())


def _workload_chaos(seed: int) -> None:
    """The spot-churn fault-injection scenario (repro.faults)."""
    from repro.faults import run_scenario

    run_scenario("spot-churn", seed=seed)


def _workload_tenants(seed: int) -> None:
    """The noisy-neighbor multi-tenant scenario (repro.tenant).

    Exercises the serving tier end to end under the replay sanitizer:
    token-bucket admission with shedding, weighted slot scheduling, a
    mid-run region kill with degradation fail-open, and the recovery
    flush must all trace identically across runs.
    """
    from repro.faults import run_scenario

    run_scenario("noisy-neighbor", seed=seed)


def _workload_programs(seed: int) -> None:
    """A dependent-read measurement with verb programs enabled.

    Exercises the one-RTT GET path end to end: program-scoped kernel
    events (one trigger -> resume edge per program, not per step) must
    trace identically across runs and schedulers.
    """
    from repro.core.config import RdmaConfig
    from repro.core.measurement import measure_config
    from repro.obs.metrics import MetricsRegistry

    config = RdmaConfig(2, 0, 1, 4, use_verb_programs=True)
    measure_config(config, 256, seed=seed, read_fraction=1.0,
                   dependent_reads=True, batches_per_connection=20,
                   warmup_batches=5, metrics=MetricsRegistry())


def _workload_cplane(seed: int) -> None:
    """A pooled-lazy connection storm (repro.cplane).

    Exercises the elastic control plane end to end: deferred QP
    establishment through the batched connect worker, timed memory
    registration, session multiplexing with completion demux, and the
    idle harvest must all trace identically across runs.
    """
    from repro.cplane import run_connection_storm

    run_connection_storm(seed, clients=400, strategy="pooled-lazy",
                         reads_per_session=2)


# Deliberately nondeterministic demo: module state leaks across runs the
# way a forgotten global cache would, so the second run schedules
# differently and draws once more from its RNG stream.
_DEMO_LEAK = {"runs": 0}


def _workload_nondet_demo(seed: int) -> None:
    """A seeded workload broken by leaked module-global state (demo)."""
    from repro.sim.kernel import Environment

    _DEMO_LEAK["runs"] += 1
    leak = _DEMO_LEAK["runs"]
    env = Environment()
    rng = RngRegistry(seed).stream("demo")

    def worker():
        for _ in range(3):
            yield env.timeout(rng.random() * 1e-3)
            if leak > 1:  # the leaked state perturbs later runs only
                rng.random()
                yield env.timeout(1e-6 * leak)

    env.process(worker(), name="demo")
    env.run()


#: Name -> workload callable; each takes a seed and runs to completion.
WORKLOADS: Dict[str, Callable[[int], Any]] = {
    "measure": _workload_measure,
    "measure-programs": _workload_programs,
    "measure-tenants": _workload_tenants,
    "measure-cplane": _workload_cplane,
    "chaos-spot-churn": _workload_chaos,
    "demo-nondet": _workload_nondet_demo,
}
