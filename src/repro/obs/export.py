"""JSON export of a run's metrics.

The exported blob is the contract between the simulator and the
benchmark trajectory: every bench run writes a ``BENCH_<id>.json`` next
to its ``.txt`` table so that regressions in op latency (p50/p99
histograms) and throughput (counters over measured duration) are
machine-diffable across PRs.  Schema::

    {
      "schema": "repro.obs/v1",
      "name": "<run id>",
      "sim_now": <simulated seconds at snapshot>,
      "event_loop": {"steps": ..., "events": ..., "immediate_calls": ...,
                      "process_failures": ...},          # when env given
      "metrics": {"<dotted.name>": {"type": ..., ...}, ...},
      "spans": [...],                                     # when tracer given
      "extra": {...}                                      # caller context
    }
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = ["SCHEMA", "snapshot", "to_json", "write_json", "format_table"]

SCHEMA = "repro.obs/v1"


def _jsonable(value: Any) -> Any:
    """Replace the infinities empty histograms carry with None."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    return value


def snapshot(registry: MetricsRegistry, *, name: str = "",
             env=None, tracer: Optional[Tracer] = None,
             extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """One self-describing dict of everything the run measured."""
    blob: Dict[str, Any] = {
        "schema": SCHEMA,
        "name": name,
        "metrics": registry.snapshot(),
    }
    if env is not None:
        blob["sim_now"] = env.now
        blob["event_loop"] = env.event_loop_stats()
    if tracer is not None:
        blob["spans"] = tracer.to_list()
        if tracer.dropped:
            blob["spans_dropped"] = tracer.dropped
    if extra:
        blob["extra"] = extra
    return _jsonable(blob)


def to_json(registry: MetricsRegistry, *, name: str = "", env=None,
            tracer: Optional[Tracer] = None,
            extra: Optional[Dict[str, Any]] = None, indent: int = 2) -> str:
    return json.dumps(
        snapshot(registry, name=name, env=env, tracer=tracer, extra=extra),
        indent=indent, sort_keys=True)


def write_json(path, registry: MetricsRegistry, *, name: str = "",
               env=None, tracer: Optional[Tracer] = None,
               extra: Optional[Dict[str, Any]] = None) -> pathlib.Path:
    """Write the snapshot to ``path`` and return it."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_json(registry, name=name or path.stem, env=env,
                            tracer=tracer, extra=extra) + "\n")
    return path


def _si(value: float) -> str:
    """Seconds with a readable unit (metrics are overwhelmingly times)."""
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e9:
        return f"{value:.3g}"
    if magnitude >= 1:
        return f"{value:.4g}"
    if magnitude >= 1e-3:
        return f"{value * 1e3:.4g}m"
    if magnitude >= 1e-6:
        return f"{value * 1e6:.4g}u"
    return f"{value * 1e9:.4g}n"


def format_table(blob: Dict[str, Any]) -> str:
    """Human view of a snapshot for the ``python -m repro metrics`` CLI."""
    lines = [f"{'metric':<44} {'type':<9} value"]
    for name, metric in sorted(blob.get("metrics", {}).items()):
        kind = metric.get("type", "?")
        if kind == "histogram":
            value = (f"n={metric['count']} mean={_si(metric['mean'])} "
                     f"p50={_si(metric['p50'])} p99={_si(metric['p99'])}")
        elif kind == "gauge":
            value = f"{_si(metric['value'])} (max {_si(metric['max'])})"
        else:
            value = _si(metric["value"])
        lines.append(f"{name:<44} {kind:<9} {value}")
    loop = blob.get("event_loop")
    if loop:
        lines.append("")
        lines.append("event loop: " + "  ".join(
            f"{key}={value}" for key, value in sorted(loop.items())))
    if "sim_now" in blob:
        lines.append(f"simulated time: {blob['sim_now']:.6f}s")
    return "\n".join(lines)
