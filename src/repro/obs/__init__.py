"""Observability for the simulated data path.

The reproduction's north star is performance, and performance claims are
only as good as the instrumentation behind them.  This package is the
measurement substrate:

* :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket latency histograms (p50/p99 without storing
  samples), cheap enough for the simulator's hot paths;
* :mod:`repro.obs.tracing` -- lightweight spans keyed to *simulated*
  time, for auditing where an operation's latency went;
* :mod:`repro.obs.export` -- JSON snapshots, used by the benchmark
  suite to persist ``BENCH_*.json`` metric blobs alongside each figure.

Instrumented components (queue pairs, the fabric, the client engine,
migration, FASTER devices) look for a registry on their
:class:`~repro.sim.kernel.Environment` at construction time::

    registry = MetricsRegistry()
    env = Environment()
    registry.install(env)          # before building the testbed
    ...build fabric / servers / data path...
    print(registry.to_json())

When no registry is installed the hot paths skip all bookkeeping, so an
uninstrumented simulation pays only a ``None`` check.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import Span, Tracer
from repro.obs.export import snapshot, to_json, write_json

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "snapshot",
    "to_json",
    "write_json",
]
