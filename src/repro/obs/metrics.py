"""Counters, gauges, and fixed-bucket histograms.

The registry is designed for the simulator's hot paths: metric objects
are looked up once (at component construction) and then updated with
plain attribute arithmetic -- no string formatting, no locking, no
per-sample allocation.  Histograms use fixed bucket bounds so that
recording is O(log buckets) and memory is O(buckets) regardless of how
many billions of observations a long soak run makes; percentiles are
reconstructed from the bucket counts with linear interpolation, the
same trade Prometheus histograms make.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "split_labeled_name",
]


def _geometric_buckets(lo: float, hi: float, per_decade: int) -> tuple:
    """Bucket upper bounds from ``lo`` to ``hi``, ``per_decade`` per 10x."""
    n = int(round(math.log10(hi / lo) * per_decade))
    return tuple(lo * 10.0 ** (i / per_decade) for i in range(n + 1))


def _label_key(labels: Dict[str, str]) -> tuple:
    """Canonical (sorted) identity of one label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labeled_name(base: str, labels: Dict[str, str]) -> str:
    """``base{k="v",...}`` -- the flat snapshot key of a labeled child."""
    inner = ",".join(f'{k}="{v}"' for k, v in _label_key(labels))
    return f"{base}{{{inner}}}"


def split_labeled_name(name: str) -> str:
    """The base (family) name of a possibly-labeled metric name."""
    brace = name.find("{")
    return name if brace < 0 else name[:brace]


class _LabeledMixin:
    """Shared ``labels()`` machinery for Counter/Gauge/Histogram.

    A metric without labels is a *family*: calling
    ``metric.labels(shard="s3")`` returns (creating on first use) a child
    of the same class named ``metric{shard="s3"}``.  Children update
    independently of the family -- the family's own value stays whatever
    direct ``inc``/``set``/``observe`` calls made it -- which keeps label
    fan-out allocation-free on the hot path: look the child up once at
    construction, then update plain attributes.
    """

    __slots__ = ()

    def labels(self, **labels: str):
        if not labels:
            raise ValueError(f"metric {self.name!r}: labels() needs at "
                             f"least one label")
        if self._labels is not None:
            raise ValueError(f"metric {self.name!r} is already labeled; "
                             f"nested labels are not supported")
        key = _label_key(labels)
        if self._children is None:
            self._children = {}
        child = self._children.get(key)
        if child is None:
            child = self._make_child(labels)
            self._children[key] = child
        return child

    def children(self) -> list:
        """Labeled children, sorted by label identity (deterministic)."""
        if not self._children:
            return []
        return [self._children[key] for key in sorted(self._children)]


#: 100 ns .. 10 s, eight buckets per decade: fine enough to resolve the
#: paper's 5 us vs 7.1 us optimization steps, coarse enough to stay tiny.
DEFAULT_LATENCY_BUCKETS = _geometric_buckets(1e-7, 10.0, per_decade=8)


class Counter(_LabeledMixin):
    """A monotonically increasing count (ops issued, bytes moved)."""

    __slots__ = ("name", "value", "_labels", "_children")

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.value = 0.0
        self._labels = dict(labels) if labels else None
        self._children = None

    def _make_child(self, labels: Dict[str, str]) -> "Counter":
        return Counter(_labeled_name(self.name, labels), labels)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def to_dict(self) -> dict:
        out = {"type": "counter", "value": self.value}
        if self._labels:
            out["labels"] = dict(sorted(self._labels.items()))
        return out


class Gauge(_LabeledMixin):
    """An instantaneous level (backlog depth, in-flight ops).

    Tracks the running maximum alongside the current value so a snapshot
    taken at the end of a run still shows the high-water mark.
    """

    __slots__ = ("name", "value", "max_value", "_labels", "_children")

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.value = 0.0
        self.max_value = 0.0
        self._labels = dict(labels) if labels else None
        self._children = None

    def _make_child(self, labels: Dict[str, str]) -> "Gauge":
        return Gauge(_labeled_name(self.name, labels), labels)

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def to_dict(self) -> dict:
        out = {"type": "gauge", "value": self.value, "max": self.max_value}
        if self._labels:
            out["labels"] = dict(sorted(self._labels.items()))
        return out


class Histogram(_LabeledMixin):
    """Fixed-bucket distribution with percentile reconstruction.

    ``bounds`` are bucket *upper* edges; observations above the last
    bound land in a +Inf overflow bucket.  Exact count/sum/min/max are
    kept alongside, so means are exact and only percentiles are
    bucket-quantized.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "count", "sum",
                 "min", "max", "_labels", "_children")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                 labels: Optional[Dict[str, str]] = None):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._labels = dict(labels) if labels else None
        self._children = None

    def _make_child(self, labels: Dict[str, str]) -> "Histogram":
        # Children inherit the family's bucket layout, so merging and
        # cross-shard comparisons always line up.
        return Histogram(_labeled_name(self.name, labels), self.bounds,
                         labels)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bisect.bisect_left(self.bounds, value)
        if index == len(self.bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch of observations in one vectorized pass.

        Bucket placement uses ``searchsorted(side='left')``, which agrees
        with :meth:`observe`'s ``bisect_left`` exactly, and the batch sum
        is accumulated left to right, so on a fresh histogram the result
        is bit-identical to a per-sample :meth:`observe` loop -- the
        contract the bench-blob replay path relies on.
        """
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        self.count += int(arr.size)
        # builtins.sum over the list is a sequential (left-to-right) C
        # loop; numpy's pairwise summation would differ in the last ulp.
        self.sum += sum(arr.tolist())
        lo = float(arr.min())
        hi = float(arr.max())
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi
        indices = np.searchsorted(self.bounds, arr, side="left")
        per_bucket = np.bincount(indices, minlength=len(self.bounds) + 1)
        self.overflow += int(per_bucket[len(self.bounds)])
        counts = self.counts
        for index in np.flatnonzero(per_bucket[:len(self.bounds)]):
            counts[index] += int(per_bucket[index])

    def merge_dict(self, blob: dict) -> None:
        """Fold a :meth:`to_dict` snapshot from another histogram in.

        Used by the sweep executor to replay a worker's (or a cached
        run's) metrics into the parent registry.  The snapshot's sparse
        bucket keys are matched against this histogram's bounds; a key
        that does not correspond to any bound means the histograms were
        built with different bucket layouts, which is a caller bug.
        """
        if not blob.get("count"):
            return
        self.count += blob["count"]
        self.sum += blob["sum"]
        if blob["min"] < self.min:
            self.min = blob["min"]
        if blob["max"] > self.max:
            self.max = blob["max"]
        key_to_index = {f"{upper:.3e}": i
                        for i, upper in enumerate(self.bounds)}
        for key, bucket_count in blob["buckets"].items():
            if key == "+inf":
                self.overflow += bucket_count
            else:
                try:
                    self.counts[key_to_index[key]] += bucket_count
                except KeyError:
                    raise ValueError(
                        f"histogram {self.name!r}: snapshot bucket {key} "
                        f"does not match this histogram's bounds") from None

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``0 <= q <= 100``).

        Linear interpolation inside the bucket holding the target rank;
        clamped to the exact observed min/max so single-bucket
        distributions still report sane numbers.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} out of [0, 100]")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        seen = 0
        lower = 0.0
        for upper, bucket_count in zip(self.bounds, self.counts):
            if bucket_count:
                seen += bucket_count
                if seen >= rank:
                    fraction = 1.0 - (seen - rank) / bucket_count
                    estimate = lower + fraction * (upper - lower)
                    return min(max(estimate, self.min), self.max)
            lower = upper
        return self.max  # rank fell in the overflow bucket

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def to_dict(self) -> dict:
        # Sparse encoding: only non-empty buckets, keyed by upper bound.
        sparse = {f"{upper:.3e}": count
                  for upper, count in zip(self.bounds, self.counts) if count}
        if self.overflow:
            sparse["+inf"] = self.overflow
        out = {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.p50,
            "p99": self.p99,
            "buckets": sparse,
        }
        if self.bounds != DEFAULT_LATENCY_BUCKETS:
            # Non-default layouts carry their bounds so merge_snapshot
            # can rebuild the histogram in a fresh registry; default
            # layouts stay compact (and byte-compatible with pre-existing
            # benchmark blobs).
            out["bounds"] = list(self.bounds)
        if self._labels:
            out["labels"] = dict(sorted(self._labels.items()))
        return out


class MetricsRegistry:
    """Get-or-create home for every metric of one simulation run.

    Names are dotted paths (``engine.op_latency``,
    ``device.ssd.service_time``); the snapshot keeps them flat, which is
    what the benchmark JSON blobs and the CLI table both want.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get_or_create(self, name: str, kind, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(name, Histogram, bounds)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, dict]:
        flat: Dict[str, dict] = {}
        for name, metric in self._metrics.items():
            flat[name] = metric.to_dict()
            for child in metric.children():
                flat[child.name] = child.to_dict()
        return {name: flat[name] for name in sorted(flat)}

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram buckets add; gauges take the snapshot's
        value (and the max of the high-water marks), matching what a
        sequential run that ``set()`` them in the same order would show.
        Labeled entries (``name{k="v"}`` keys carrying a ``labels``
        dict) are routed back through ``family.labels(...)``, so
        snapshot -> merge round-trips label structure, not just flat
        names.  Merging per-task snapshots in task order is how the
        sweep executor makes serial, parallel, and cache-hit runs
        produce the same registry contents.
        """
        for name, blob in snapshot.items():
            kind = blob["type"]
            labels = blob.get("labels")
            base = split_labeled_name(name) if labels else name
            if kind == "counter":
                counter = self.counter(base)
                if labels:
                    counter = counter.labels(**labels)
                counter.inc(blob["value"])
            elif kind == "gauge":
                gauge = self.gauge(base)
                if labels:
                    gauge = gauge.labels(**labels)
                gauge.set(blob["value"])
                if blob["max"] > gauge.max_value:
                    gauge.max_value = blob["max"]
            elif kind == "histogram":
                bounds = blob.get("bounds", DEFAULT_LATENCY_BUCKETS)
                histogram = self.histogram(base, bounds)
                if labels:
                    histogram = histogram.labels(**labels)
                histogram.merge_dict(blob)
            else:
                raise ValueError(
                    f"metric {name!r}: unknown snapshot type {kind!r}")

    # ------------------------------------------------------------------
    # Environment integration
    # ------------------------------------------------------------------

    def install(self, env) -> "MetricsRegistry":
        """Attach this registry to ``env`` so components built afterwards
        instrument themselves.  Deliberately does *not* touch
        ``env.on_process_failure``: installing metrics must never change
        failure semantics (the kernel already counts failures in its
        event-loop stats)."""
        env.metrics = self
        return self


def registry_of(env) -> Optional[MetricsRegistry]:
    """The registry installed on ``env``, or None.

    Components call this once at construction; the ``getattr`` default
    keeps old hand-built Environments (tests, notebooks) working.
    """
    return getattr(env, "metrics", None)
