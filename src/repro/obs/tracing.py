"""Span tracing keyed to simulated time.

Metrics aggregate; traces explain.  A :class:`Tracer` records named
spans against the *simulated* clock (``env.now``), so a trace of one
operation shows exactly where its microseconds went -- NIC processing,
wire time, server service, completion handling -- with zero wall-clock
noise.  Spans are kept in a bounded ring so tracing a million-op soak
run keeps the most recent window instead of exhausting memory.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One timed interval of simulated work."""

    __slots__ = ("tracer", "name", "start", "end", "parent_id", "span_id",
                 "attrs")

    def __init__(self, tracer: "Tracer", name: str, start: float,
                 span_id: int, parent_id: Optional[int],
                 attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def annotate(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(self, **attrs: Any) -> "Span":
        """Close the span at the current simulated time (idempotent)."""
        if attrs:
            self.attrs.update(attrs)
        if self.end is None:
            self.end = self.tracer.env.now
            self.tracer._record(self)
        return self

    # Context-manager sugar: ``with tracer.span("qp.execute"): ...`` is
    # only usable outside generator processes (no yield inside), so the
    # explicit begin/finish API is the common one in the data path.
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", repr(exc))
        self.finish()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        state = (f"{self.duration * 1e6:.3f}us"
                 if self.end is not None else "open")
        return f"<Span {self.name!r} {state}>"


class Tracer:
    """Records completed spans into a bounded ring buffer."""

    def __init__(self, env, max_spans: int = 4096):
        self.env = env
        self._spans: Deque[Span] = deque(maxlen=max_spans)
        self._next_id = 0
        self._dropped = 0

    def span(self, name: str, parent: Optional[Span] = None,
             **attrs: Any) -> Span:
        """Open a span starting now; close it with :meth:`Span.finish`."""
        self._next_id += 1
        return Span(self, name, self.env.now, self._next_id,
                    parent.span_id if parent is not None else None, attrs)

    def _record(self, span: Span) -> None:
        if len(self._spans) == self._spans.maxlen:
            self._dropped += 1
        self._spans.append(span)

    @property
    def spans(self) -> List[Span]:
        """Completed spans, oldest first (bounded window)."""
        return list(self._spans)

    @property
    def dropped(self) -> int:
        """Spans evicted from the ring after it filled."""
        return self._dropped

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self._spans if s.name == name]

    def to_list(self) -> List[dict]:
        return [span.to_dict() for span in self._spans]

    def clear(self) -> None:
        self._spans.clear()
        self._dropped = 0
