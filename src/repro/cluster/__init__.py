"""Data-center resource management substrate.

This package provides what Redy's cache manager needs from the cloud
platform, plus the synthetic cluster-trace study of §2.1:

* :mod:`repro.cluster.vmtypes` -- the VM size menu with full and spot
  prices;
* :mod:`repro.cluster.server` -- physical servers with core/memory
  accounting and the stranded-memory predicate;
* :mod:`repro.cluster.allocator` -- the cluster VM allocator: placement,
  spot instances, and reclamation with a 30-120 s early warning;
* :mod:`repro.cluster.traces` -- a synthetic trace generator calibrated
  to the paper's §2.1 measurements of Azure Compute clusters;
* :mod:`repro.cluster.stranding` -- stranding-event detection and the
  reachable-stranded-memory analysis behind Figures 1 and 2.
"""

from repro.cluster.allocator import AllocationError, Vm, VmAllocator
from repro.cluster.prediction import SpotLifetimePredictor
from repro.cluster.pricing import SpotMarket
from repro.cluster.server import PhysicalServer
from repro.cluster.vmtypes import (
    AZURE_MENU,
    STRANDING_THRESHOLD_GB,
    VmType,
    harvest_vm_type,
)

__all__ = [
    "AllocationError",
    "AZURE_MENU",
    "PhysicalServer",
    "STRANDING_THRESHOLD_GB",
    "SpotLifetimePredictor",
    "SpotMarket",
    "Vm",
    "VmAllocator",
    "VmType",
    "harvest_vm_type",
]
