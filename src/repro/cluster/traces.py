"""Synthetic cluster-trace generator for the §2.1 stranded-memory study.

The paper measured 100 Azure Compute clusters over 75 days and reported
distributional facts: ~46% of memory unallocated at the median (p10 37%,
p1 28%), ~8% stranded at the median (16% at p90, 23% at p99), strong
diurnal patterns with a peak-to-trough ratio of ~2, and stranding events
with quartile durations of 6 / 13 / 22 minutes.

We cannot use the proprietary traces, so this generator synthesizes a
statistically similar workload: Poisson VM arrivals with diurnal rate
modulation, log-normal lifetimes, a VM-shape mix spanning compute-heavy
to memory-heavy, and per-cluster demand weights that spread utilization
across clusters the way the paper's fleet-wide distribution requires.
The *analysis* applied to the synthetic trace
(:mod:`repro.cluster.stranding`) is exactly what one would run on the
real one.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.cluster.vmtypes import STRANDING_THRESHOLD_GB

__all__ = ["TraceConfig", "TraceResult", "generate_trace"]

_DAY_S = 86_400.0


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the synthetic cluster workload."""

    clusters: int = 5
    racks_per_cluster: int = 10
    servers_per_rack: int = 20
    server_cores: int = 48
    server_memory_gb: float = 384.0
    duration_hours: float = 48.0
    snapshot_interval_s: float = 600.0
    #: Long-run average fraction of fleet cores allocated.  High core
    #: pressure is what strands memory.
    target_core_utilization: float = 1.02
    #: Relative amplitude of the diurnal arrival-rate sine.  Saturation
    #: clips the peak, so this is set above the nominal value that would
    #: give the paper's ~2 peak-to-trough ratio.
    diurnal_amplitude: float = 0.60
    #: Median VM lifetime; short lifetimes make stranding events short.
    median_vm_lifetime_minutes: float = 70.0
    lifetime_sigma: float = 1.3
    #: VM shape mix as (cores, memory_gb, weight).  The average memory per
    #: core (~5.4 GB here vs the servers' 8 GB) is what leaves memory
    #: unallocated when cores fill up.
    vm_shapes: Tuple[Tuple[int, float, float], ...] = (
        (2, 4.0, 0.04),    # compute-lean web server
        (4, 8.0, 0.07),    # 2 GB/core
        (8, 16.0, 0.06),
        (16, 32.0, 0.03),
        (4, 16.0, 0.13),   # 4 GB/core general purpose
        (8, 32.0, 0.12),
        (16, 64.0, 0.10),
        (2, 16.0, 0.16),   # 8 GB/core memory heavy
        (8, 64.0, 0.17),
        (16, 128.0, 0.12),
    )
    #: Dispersion of per-cluster demand weights (log-normal sigma); this
    #: spreads utilization across clusters like the paper's fleet.
    cluster_weight_sigma: float = 0.55
    #: Per-cluster tilt toward memory-heavy or compute-heavy VM shapes
    #: (sigma of a normal exponent on the shape's memory-per-core score).
    cluster_shape_tilt_sigma: float = 0.55
    seed: int = 0

    @property
    def n_servers(self) -> int:
        return self.clusters * self.racks_per_cluster * self.servers_per_rack

    @property
    def duration_s(self) -> float:
        return self.duration_hours * 3600.0


@dataclass
class TraceResult:
    """Everything the §2.1 analyses need."""

    config: TraceConfig
    snapshot_times: np.ndarray
    #: Shape (n_snapshots, n_clusters): per-cluster unallocated fraction.
    unallocated_fraction: np.ndarray
    #: Shape (n_snapshots, n_clusters): per-cluster stranded fraction.
    stranded_fraction: np.ndarray
    #: Shape (n_snapshots, n_servers): stranded GB per server.
    per_server_stranded_gb: np.ndarray
    #: Completed stranding-event durations, seconds.
    stranding_durations_s: np.ndarray
    server_cluster: np.ndarray
    server_rack: np.ndarray
    total_arrivals: int
    rejected_arrivals: int

    @property
    def mean_stranded_gb_per_server(self) -> np.ndarray:
        return self.per_server_stranded_gb.mean(axis=0)


def generate_trace(config: TraceConfig = TraceConfig()) -> TraceResult:
    """Run the synthetic workload and collect snapshots and events."""
    rng = np.random.default_rng(config.seed)
    n = config.n_servers

    server_cluster = np.repeat(
        np.arange(config.clusters),
        config.racks_per_cluster * config.servers_per_rack)
    rack_global = np.tile(
        np.repeat(np.arange(config.racks_per_cluster),
                  config.servers_per_rack), config.clusters)

    alloc_cores = np.zeros(n, dtype=np.int64)
    alloc_mem = np.zeros(n, dtype=np.float64)

    shapes = np.array([(c, m) for c, m, _w in config.vm_shapes])
    shape_weights = np.array([w for _c, _m, w in config.vm_shapes])
    shape_weights = shape_weights / shape_weights.sum()
    mean_vm_cores = float((shapes[:, 0] * shape_weights).sum())

    cluster_weights = np.exp(
        rng.normal(0.0, config.cluster_weight_sigma, size=config.clusters))
    cluster_weights /= cluster_weights.sum()

    # Per-cluster shape mixes: some clusters skew memory-heavy, others
    # compute-heavy, widening the fleet-wide utilization distribution.
    memory_score = np.log2(shapes[:, 1] / shapes[:, 0]) - 2.0
    tilts = rng.normal(0.0, config.cluster_shape_tilt_sigma,
                       size=config.clusters)
    cluster_shape_weights = shape_weights * np.exp(
        np.outer(tilts, memory_score))
    cluster_shape_weights /= cluster_shape_weights.sum(
        axis=1, keepdims=True)

    # Arrival rate so the steady state hits the core-utilization target.
    mean_lifetime_s = (config.median_vm_lifetime_minutes * 60.0
                       * math.exp(config.lifetime_sigma ** 2 / 2))
    target_vms = (config.target_core_utilization * n * config.server_cores
                  / mean_vm_cores)
    base_rate = target_vms / mean_lifetime_s

    # Per-server stranding bookkeeping.
    stranded_since = np.full(n, -1.0)
    durations: List[float] = []

    def update_stranding(server: int, now: float) -> None:
        stranded = (alloc_cores[server] >= config.server_cores
                    and (config.server_memory_gb - alloc_mem[server])
                    >= STRANDING_THRESHOLD_GB)
        if stranded and stranded_since[server] < 0:
            stranded_since[server] = now
        elif not stranded and stranded_since[server] >= 0:
            durations.append(now - stranded_since[server])
            stranded_since[server] = -1.0

    # Event loop: departures in a heap; arrivals sampled on the fly.
    departures: List[tuple[float, int]] = []
    vm_homes: dict[int, tuple[int, int, float]] = {}
    next_vm_id = 0

    snapshot_times: List[float] = []
    unalloc_rows: List[np.ndarray] = []
    stranded_rows: List[np.ndarray] = []
    per_server_rows: List[np.ndarray] = []

    cluster_mem_total = np.zeros(config.clusters)
    for cluster in range(config.clusters):
        cluster_mem_total[cluster] = (
            config.racks_per_cluster * config.servers_per_rack
            * config.server_memory_gb)

    def take_snapshot() -> None:
        free_mem = config.server_memory_gb - alloc_mem
        stranded_mask = ((alloc_cores >= config.server_cores)
                         & (free_mem >= STRANDING_THRESHOLD_GB))
        stranded_gb = np.where(stranded_mask, free_mem, 0.0)
        unalloc_by_cluster = np.bincount(
            server_cluster, weights=free_mem, minlength=config.clusters)
        stranded_by_cluster = np.bincount(
            server_cluster, weights=stranded_gb, minlength=config.clusters)
        unalloc_rows.append(unalloc_by_cluster / cluster_mem_total)
        stranded_rows.append(stranded_by_cluster / cluster_mem_total)
        per_server_rows.append(stranded_gb.copy())

    def diurnal_rate(t: float) -> float:
        phase = 2.0 * math.pi * t / _DAY_S
        return base_rate * (1.0 + config.diurnal_amplitude * math.sin(phase))

    peak_rate = base_rate * (1.0 + config.diurnal_amplitude)
    now = 0.0
    next_arrival = float(rng.exponential(1.0 / peak_rate))
    next_snapshot = 0.0
    total_arrivals = rejected = 0
    warmup = 2.0 * mean_lifetime_s

    while True:
        next_departure = departures[0][0] if departures else math.inf
        now = min(next_arrival, next_departure, next_snapshot)
        if now > config.duration_s + warmup:
            break

        if now == next_snapshot:
            if now >= warmup:
                snapshot_times.append(now - warmup)
                take_snapshot()
            next_snapshot += config.snapshot_interval_s
            continue

        if now == next_departure:
            _, vm_id = heapq.heappop(departures)
            server, cores, mem = vm_homes.pop(vm_id)
            alloc_cores[server] -= cores
            alloc_mem[server] -= mem
            update_stranding(server, now)
            continue

        # Arrival (thinned to realize the diurnal rate).
        next_arrival = now + float(rng.exponential(1.0 / peak_rate))
        if rng.random() > diurnal_rate(now) / peak_rate:
            continue
        total_arrivals += 1
        cluster = int(rng.choice(config.clusters, p=cluster_weights))
        shape_index = rng.choice(len(shapes),
                                 p=cluster_shape_weights[cluster])
        cores, mem = int(shapes[shape_index, 0]), float(shapes[shape_index, 1])
        cluster_servers = np.flatnonzero(server_cluster == cluster)
        candidates = rng.choice(cluster_servers,
                                size=min(8, len(cluster_servers)),
                                replace=False)
        fallback = rng.choice(n, size=min(8, n), replace=False)
        placed = False
        for server in list(candidates) + list(fallback):
            if (alloc_cores[server] + cores <= config.server_cores
                    and alloc_mem[server] + mem <= config.server_memory_gb):
                alloc_cores[server] += cores
                alloc_mem[server] += mem
                vm_id = next_vm_id
                next_vm_id += 1
                lifetime = (config.median_vm_lifetime_minutes * 60.0
                            * math.exp(rng.normal(0.0,
                                                  config.lifetime_sigma)))
                heapq.heappush(departures, (now + lifetime, vm_id))
                vm_homes[vm_id] = (int(server), cores, mem)
                update_stranding(int(server), now)
                placed = True
                break
        if not placed:
            rejected += 1

    return TraceResult(
        config=config,
        snapshot_times=np.asarray(snapshot_times),
        unallocated_fraction=np.asarray(unalloc_rows),
        stranded_fraction=np.asarray(stranded_rows),
        per_server_stranded_gb=np.asarray(per_server_rows),
        stranding_durations_s=np.asarray(durations),
        server_cluster=server_cluster,
        server_rack=rack_global,
        total_arrivals=total_arrivals,
        rejected_arrivals=rejected,
    )
