"""A dynamic spot market (§6.1).

"At any given time, different VM types might have spot instances
available.  The cache manager can exploit such cost-saving opportunities
by periodically issuing an allocation request for a cheap VM and
migrating the cache to it when it becomes available."

:class:`SpotMarket` evolves each VM type's spot price as a clamped
geometric random walk between a floor and the on-demand price, updating
on a fixed interval.  Subscribers (the cost optimizer) are notified on
every tick -- the "alert the cache manager when spot VMs of a certain
type become available" API extension §6.1 proposes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.cluster.vmtypes import VmType
from repro.sim.kernel import Environment

__all__ = ["SpotMarket"]


class SpotMarket:
    """Per-VM-type spot prices evolving in simulated time."""

    def __init__(self, env: Environment, menu: Sequence[VmType],
                 rng: np.random.Generator, *,
                 update_interval_s: float = 60.0,
                 volatility: float = 0.20,
                 floor_fraction: float = 0.10,
                 ceiling_fraction: float = 0.95):
        if update_interval_s <= 0:
            raise ValueError("update_interval_s must be positive")
        if not 0 < floor_fraction < ceiling_fraction <= 1.0:
            raise ValueError("need 0 < floor < ceiling <= 1")
        self.env = env
        self.menu = list(menu)
        self.rng = rng
        self.update_interval_s = update_interval_s
        self.volatility = volatility
        self.floor_fraction = floor_fraction
        self.ceiling_fraction = ceiling_fraction
        self._prices: Dict[str, float] = {
            t.name: t.spot_price_per_hour for t in menu}
        self._subscribers: List[Callable[[], None]] = []
        env.process(self._tick(), name="spot-market")

    def spot_price(self, vm_type: VmType) -> float:
        """Current spot price per hour for ``vm_type``."""
        return self._prices[vm_type.name]

    def price(self, vm_type: VmType, spot: bool) -> float:
        return self.spot_price(vm_type) if spot else vm_type.price_per_hour

    def subscribe(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` after every market tick."""
        self._subscribers.append(callback)

    def cheapest_covering(self, cores: int, memory_gb: float) -> List[VmType]:
        """Menu entries covering (cores, memory), by current spot price."""
        fits = [t for t in self.menu if t.fits_requirements(cores, memory_gb)]
        return sorted(fits, key=self.spot_price)

    def _tick(self):
        while True:
            yield self.env.timeout(self.update_interval_s)
            for vm_type in self.menu:
                step = float(np.exp(self.rng.normal(0.0, self.volatility)))
                price = self._prices[vm_type.name] * step
                floor = vm_type.price_per_hour * self.floor_fraction
                ceiling = vm_type.price_per_hour * self.ceiling_fraction
                self._prices[vm_type.name] = min(max(price, floor), ceiling)
            for callback in list(self._subscribers):
                callback()
