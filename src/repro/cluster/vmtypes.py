"""The VM size menu.

The cache manager "must choose VMs from the menu of VM sizes offered by
the cloud provider.  Each VM size has fixed cores and memory" (§6.1).
Prices are representative pay-as-you-go / spot rates; what matters for
the reproduction is their *relative* structure: spot is ~60-90% cheaper,
and there are "relatively few VM sizes with a high ratio of memory to
cores" -- the constraint §6.1 calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["AZURE_MENU", "STRANDING_THRESHOLD_GB", "VmType"]

#: A server counts as stranded when all cores are allocated while at
#: least this much memory remains unallocated (§2.1).
STRANDING_THRESHOLD_GB = 1.0


@dataclass(frozen=True)
class VmType:
    """One entry of the provider's VM menu."""

    name: str
    cores: int
    memory_gb: float
    price_per_hour: float
    spot_price_per_hour: float

    def __post_init__(self) -> None:
        if self.cores < 0 or self.memory_gb <= 0:
            raise ValueError(f"invalid VM shape: {self}")
        if self.cores == 0 and not self.name.startswith("harvest"):
            # Only harvest VMs (memory carved out of stranded servers,
            # accessed one-sided with zero server cores) may be core-less.
            raise ValueError(f"only harvest VMs may have zero cores: {self}")
        if not 0 < self.spot_price_per_hour <= self.price_per_hour:
            raise ValueError(
                f"spot price must be in (0, full price]: {self}")

    @property
    def memory_per_core(self) -> float:
        return self.memory_gb / self.cores

    def fits_requirements(self, cores: int, memory_gb: float) -> bool:
        return self.cores >= cores and self.memory_gb >= memory_gb

    def price(self, spot: bool) -> float:
        return self.spot_price_per_hour if spot else self.price_per_hour


#: A representative general-purpose menu (D/E-series-like shapes).
AZURE_MENU: List[VmType] = [
    VmType("d2", cores=2, memory_gb=8, price_per_hour=0.096,
           spot_price_per_hour=0.019),
    VmType("d4", cores=4, memory_gb=16, price_per_hour=0.192,
           spot_price_per_hour=0.038),
    VmType("d8", cores=8, memory_gb=32, price_per_hour=0.384,
           spot_price_per_hour=0.077),
    VmType("d16", cores=16, memory_gb=64, price_per_hour=0.768,
           spot_price_per_hour=0.154),
    VmType("d32", cores=32, memory_gb=128, price_per_hour=1.536,
           spot_price_per_hour=0.307),
    VmType("e2", cores=2, memory_gb=16, price_per_hour=0.126,
           spot_price_per_hour=0.025),
    VmType("e4", cores=4, memory_gb=32, price_per_hour=0.252,
           spot_price_per_hour=0.050),
    VmType("e8", cores=8, memory_gb=64, price_per_hour=0.504,
           spot_price_per_hour=0.101),
    VmType("e16", cores=16, memory_gb=128, price_per_hour=1.008,
           spot_price_per_hour=0.202),
    VmType("e32", cores=32, memory_gb=256, price_per_hour=2.016,
           spot_price_per_hour=0.403),
    VmType("f4", cores=4, memory_gb=8, price_per_hour=0.169,
           spot_price_per_hour=0.034),
    VmType("f8", cores=8, memory_gb=16, price_per_hour=0.338,
           spot_price_per_hour=0.068),
    VmType("f16", cores=16, memory_gb=32, price_per_hour=0.676,
           spot_price_per_hour=0.135),
]


def cheapest_covering(menu: Sequence[VmType], cores: int, memory_gb: float,
                      spot: bool = False) -> List[VmType]:
    """Menu entries that cover (cores, memory), cheapest first."""
    candidates = [t for t in menu if t.fits_requirements(cores, memory_gb)]
    return sorted(candidates, key=lambda t: t.price(spot))


#: Nominal bookkeeping price of harvested stranded memory, $/GB/hour.
#: "Stranded memory is essentially free" (§8.3); the tiny non-zero value
#: keeps price arithmetic well-defined.
HARVEST_PRICE_PER_GB_HOUR = 1e-4


def harvest_vm_type(memory_gb: float) -> VmType:
    """A core-less memory slice carved out of a stranded server.

    Accessed purely one-sided (the s = 0 configurations of Table 2), so
    zero server cores suffice -- "All latency-optimal configurations use
    one-sided memory access using no server cores, so Redy is
    particularly cheap for this case" (§7.2).
    """
    price = max(memory_gb * HARVEST_PRICE_PER_GB_HOUR, 1e-6)
    return VmType(name=f"harvest-{memory_gb:g}gb", cores=0,
                  memory_gb=memory_gb, price_per_hour=price,
                  spot_price_per_hour=price)
