"""The cluster VM allocator.

This is the platform service Redy's cache manager talks to (Figure 4).
It places VMs on physical servers, supports *spot* instances on
otherwise-idle capacity, and -- crucially for Redy's robustness story --
reclaims spot VMs with an early warning: "Today's cloud providers give
an early warning of 30-120 seconds" (§3.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.server import PhysicalServer
from repro.cluster.vmtypes import VmType, harvest_vm_type
from repro.sim.kernel import Environment

__all__ = ["AllocationError", "ReclaimNotice", "Vm", "VmAllocator"]

#: Default reclamation warning, middle of the paper's 30-120 s range.
DEFAULT_RECLAIM_NOTICE_S = 30.0


class AllocationError(Exception):
    """The request cannot be satisfied (no effect, §3.2)."""


@dataclass(frozen=True)
class ReclaimNotice:
    """Early warning that a spot VM will be taken away."""

    vm_id: int
    deadline: float


@dataclass
class Vm:
    """A running VM hosting (part of) a cache."""

    vm_id: int
    vm_type: VmType
    server: PhysicalServer
    spot: bool
    created_at: float
    alive: bool = True
    reclaim_deadline: Optional[float] = None
    #: Fired with a ReclaimNotice when the allocator decides to reclaim.
    on_reclaim_notice: List[Callable[[ReclaimNotice], None]] = field(
        default_factory=list)
    #: Fired when the VM actually dies (reclaim finalized, or failure).
    on_terminated: List[Callable[["Vm"], None]] = field(default_factory=list)

    @property
    def placement(self) -> tuple[int, int]:
        return (self.server.cluster, self.server.rack)

    def hourly_cost(self) -> float:
        return self.vm_type.price(self.spot)


class VmAllocator:
    """Places VMs on a fixed fleet of physical servers."""

    def __init__(self, env: Environment, servers: Sequence[PhysicalServer],
                 reclaim_notice_s: float = DEFAULT_RECLAIM_NOTICE_S):
        if not servers:
            raise AllocationError("allocator needs at least one server")
        self.env = env
        self.servers = list(servers)
        self.reclaim_notice_s = reclaim_notice_s
        self.vms: Dict[int, Vm] = {}
        # Per-allocator, not module-global: VM ids seed endpoint names
        # and RNG stream names downstream, so they must be a function of
        # this run alone for same-seed runs to be bit-identical
        # (the repro.faults determinism contract).
        self._vm_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _candidate_servers(self, vm_type: VmType,
                           near: Optional[object],
                           max_switch_hops: Optional[int],
                           exclude_servers: Optional[frozenset] = None
                           ) -> List[PhysicalServer]:
        if near is not None and not isinstance(near, tuple):
            near = (near.cluster, near.rack)

        def hops(server: PhysicalServer) -> int:
            if near is None:
                return 0
            if server.cluster != near[0]:
                return 5
            if server.rack != near[1]:
                return 3
            return 1

        candidates = [
            s for s in self.servers
            if s.can_host(vm_type.cores, vm_type.memory_gb)
            and (max_switch_hops is None or hops(s) <= max_switch_hops)
            and (exclude_servers is None
                 or s.server_id not in exclude_servers)
        ]
        # Best fit on cores, then prefer network proximity: tight packing
        # keeps large holes (and stranding-friendly headroom) intact.
        candidates.sort(key=lambda s: (hops(s), s.free_cores))
        return candidates

    def allocate(self, vm_type: VmType, *, spot: bool = False,
                 near: Optional[object] = None,
                 max_switch_hops: Optional[int] = None,
                 exclude_servers: Optional[frozenset] = None) -> Vm:
        """Place one VM; raises :class:`AllocationError` when impossible.

        ``near`` (a :class:`PhysicalServer` or a ``(cluster, rack)``
        tuple) and ``max_switch_hops`` express the cache manager's
        network-distance requirement ("available within the required
        network distance", §6.1).  ``exclude_servers`` keeps replicas off
        each other's fault domains.
        """
        candidates = self._candidate_servers(vm_type, near, max_switch_hops,
                                             exclude_servers)
        if not candidates:
            # Harvested memory yields to paying allocations: start
            # reclaiming harvest VMs that block this placement, so a
            # retry after their notice period succeeds.
            evicting = self._evict_blocking_harvest(vm_type)
            raise AllocationError(
                f"no server can host {vm_type.name} "
                f"({vm_type.cores}c/{vm_type.memory_gb}GB)"
                + (f"; reclaiming {evicting} harvest VM(s)"
                   if evicting else ""))
        server = candidates[0]
        vm = Vm(vm_id=next(self._vm_ids), vm_type=vm_type, server=server,
                spot=spot, created_at=self.env.now)
        server.place(vm.vm_id, vm_type.cores, vm_type.memory_gb)
        self.vms[vm.vm_id] = vm
        return vm

    def allocate_harvest(self, memory_gb: float, *,
                         near: Optional[object] = None,
                         max_switch_hops: Optional[int] = None,
                         exclude_servers: Optional[frozenset] = None) -> Vm:
        """Carve ``memory_gb`` of stranded memory into a harvest VM.

        Only servers that are currently *stranded* (all cores allocated,
        >= 1 GB memory free) qualify -- this is the resource §2.1 showed
        is abundant and §8.3 calls essentially free.  Harvest VMs are
        always reclaimable (spot semantics).
        """
        vm_type = harvest_vm_type(memory_gb)
        candidates = self._candidate_servers(vm_type, near, max_switch_hops,
                                             exclude_servers)
        candidates = [s for s in candidates
                      if s.is_stranded and s.free_memory_gb >= memory_gb]
        if not candidates:
            raise AllocationError(
                f"no stranded server offers {memory_gb} GB")
        server = candidates[0]
        vm = Vm(vm_id=next(self._vm_ids), vm_type=vm_type, server=server,
                spot=True, created_at=self.env.now)
        server.place(vm.vm_id, 0, memory_gb)
        self.vms[vm.vm_id] = vm
        return vm

    def _evict_blocking_harvest(self, vm_type: VmType) -> int:
        """Reclaim harvest VMs whose memory would unblock ``vm_type``."""
        evicting = 0
        for server in self.servers:
            if server.free_cores < vm_type.cores:
                continue
            harvested = [
                self.vms[vm_id] for vm_id in server.vm_footprints
                if vm_id in self.vms
                and self.vms[vm_id].vm_type.cores == 0
                and self.vms[vm_id].reclaim_deadline is None
            ]
            reclaimable_gb = sum(vm.vm_type.memory_gb for vm in harvested)
            if server.free_memory_gb + reclaimable_gb < vm_type.memory_gb:
                continue
            for vm in harvested:
                self.reclaim(vm)
                evicting += 1
            if evicting:
                break
        return evicting

    def release(self, vm: Vm) -> None:
        """Voluntary deallocation by the owner."""
        if not vm.alive:
            return
        vm.alive = False
        vm.server.evict(vm.vm_id)
        self.vms.pop(vm.vm_id, None)

    # ------------------------------------------------------------------
    # Reclamation and failures
    # ------------------------------------------------------------------

    def reclaim(self, vm: Vm,
                notice_s: Optional[float] = None) -> ReclaimNotice:
        """Start reclaiming a spot VM.

        The owner gets a :class:`ReclaimNotice` now; after the notice
        period the VM is terminated whether or not it migrated away.
        """
        if not vm.spot:
            raise AllocationError(f"vm {vm.vm_id} is not a spot instance")
        if not vm.alive or vm.reclaim_deadline is not None:
            raise AllocationError(f"vm {vm.vm_id} is already being reclaimed")
        notice = ReclaimNotice(
            vm_id=vm.vm_id,
            deadline=self.env.now + (self.reclaim_notice_s
                                     if notice_s is None else notice_s))
        vm.reclaim_deadline = notice.deadline
        for callback in list(vm.on_reclaim_notice):
            callback(notice)
        self.env.process(self._finalize_reclaim(vm, notice),
                         name=f"reclaim-vm-{vm.vm_id}")
        return notice

    def _finalize_reclaim(self, vm: Vm, notice: ReclaimNotice):
        yield self.env.timeout(max(0.0, notice.deadline - self.env.now))
        if vm.alive:
            self._terminate(vm)

    def fail(self, vm: Vm) -> None:
        """Hard failure: no warning, the VM is gone now."""
        if vm.alive:
            self._terminate(vm)

    def _terminate(self, vm: Vm) -> None:
        vm.alive = False
        vm.server.evict(vm.vm_id)
        self.vms.pop(vm.vm_id, None)
        for callback in list(vm.on_terminated):
            callback(vm)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def total_stranded_memory_gb(self) -> float:
        return sum(s.stranded_memory_gb for s in self.servers)

    def utilization(self) -> tuple[float, float]:
        """(core, memory) allocation fractions across the fleet."""
        total_cores = sum(s.cores for s in self.servers)
        total_memory = sum(s.memory_gb for s in self.servers)
        used_cores = sum(s.allocated_cores for s in self.servers)
        used_memory = sum(s.allocated_memory_gb for s in self.servers)
        return used_cores / total_cores, used_memory / total_memory
