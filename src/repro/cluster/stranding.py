"""Stranded-memory analysis: the numbers behind §2.1 and Figures 1-2.

All functions operate on a :class:`~repro.cluster.traces.TraceResult`
and would work unchanged on a real cluster trace with the same schema.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.traces import TraceResult

__all__ = [
    "UtilizationSummary",
    "reachable_stranded_memory",
    "stranding_duration_percentiles",
    "utilization_summary",
]


@dataclass(frozen=True)
class UtilizationSummary:
    """Fleet-wide memory statistics across clusters and time (§2.1)."""

    #: Unallocated-memory fraction: median / 10th / 1st percentile.
    unallocated_median: float
    unallocated_p10: float
    unallocated_p1: float
    #: Stranded-memory fraction: median / 90th / 99th percentile.
    stranded_median: float
    stranded_p90: float
    stranded_p99: float
    #: Diurnal peak-to-trough ratio of allocated memory.
    peak_to_trough: float


def utilization_summary(trace: TraceResult) -> UtilizationSummary:
    """Summarize unallocated and stranded memory across clusters x time.

    Paper targets: median 46% unallocated (p10 37%, p1 28%); median 8%
    stranded, 16% at p90, 23% at p99; peak-to-trough ~2.
    """
    unalloc = trace.unallocated_fraction.ravel()
    stranded = trace.stranded_fraction.ravel()

    # Peak-to-trough of *allocated* memory over the daily cycle,
    # fleet-wide (the diurnal signal §2.1 reports).
    allocated = 1.0 - trace.unallocated_fraction.mean(axis=1)
    smoothed = np.convolve(allocated, np.ones(7) / 7.0, mode="valid")
    trough = max(float(smoothed.min()), 1e-9)
    peak = float(smoothed.max())

    return UtilizationSummary(
        unallocated_median=float(np.percentile(unalloc, 50)),
        unallocated_p10=float(np.percentile(unalloc, 10)),
        unallocated_p1=float(np.percentile(unalloc, 1)),
        stranded_median=float(np.percentile(stranded, 50)),
        stranded_p90=float(np.percentile(stranded, 90)),
        stranded_p99=float(np.percentile(stranded, 99)),
        peak_to_trough=peak / trough,
    )


def stranding_duration_percentiles(
        trace: TraceResult,
        percentiles: tuple[float, ...] = (25, 50, 75)) -> np.ndarray:
    """Stranding-event duration percentiles in minutes.

    Paper (Figure 2): 6 / 13 / 22 minutes at the quartiles.
    """
    if trace.stranding_durations_s.size == 0:
        raise ValueError("trace produced no stranding events; "
                         "raise target_core_utilization")
    return np.percentile(trace.stranding_durations_s / 60.0,
                         list(percentiles))


def reachable_stranded_memory(trace: TraceResult,
                              switch_hops: int) -> np.ndarray:
    """Per-server stranded memory (GB) reachable within ``switch_hops``.

    Figure 1 plots the CDF of this quantity across servers: one switch
    reaches the server's own rack, three its cluster, five the whole
    data center.  Uses the time-averaged stranded memory per server.
    """
    stranded = trace.mean_stranded_gb_per_server
    cluster = trace.server_cluster
    rack = trace.server_rack
    if switch_hops >= 5:
        return np.full(stranded.shape, stranded.sum())
    if switch_hops >= 3:
        per_cluster = np.bincount(cluster, weights=stranded)
        return per_cluster[cluster]
    if switch_hops >= 1:
        # (cluster, rack) composite key.
        n_racks = rack.max() + 1
        key = cluster * n_racks + rack
        per_rack = np.bincount(key, weights=stranded)
        return per_rack[key]
    raise ValueError("switch_hops must be >= 1")


def reachability_cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative fraction) pairs for CDF plotting."""
    ordered = np.sort(values)
    fractions = np.arange(1, len(ordered) + 1) / len(ordered)
    return ordered, fractions
