"""Spot-VM lifetime prediction (§6.1).

"Recent research has shown how to predict the lifetime of spot VMs
[11].  This would enable the allocation of VMs that satisfy the
requested duration.  It could also suggest preemptively migrating a
VM's cache, knowing it will likely be reclaimed soon."

:class:`SpotLifetimePredictor` learns an empirical lifetime distribution
per VM type from observed reclaims (censored observations -- VMs
released by their owner before any reclaim -- only extend the sample's
optimism and are tracked separately).  The cache layer asks it for a
*safe age*: the age beyond which historically more than ``risk`` of
reclaimed VMs were already gone, which is when a cautious owner starts
moving its regions.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

import numpy as np

__all__ = ["SpotLifetimePredictor"]


class SpotLifetimePredictor:
    """Empirical per-VM-type reclaim-lifetime model."""

    def __init__(self, min_samples: int = 5):
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.min_samples = min_samples
        self._reclaim_lifetimes: Dict[str, List[float]] = defaultdict(list)
        self._censored: Dict[str, int] = defaultdict(int)

    def observe(self, vm_type_name: str, lifetime_s: float,
                reclaimed: bool) -> None:
        """Record one finished VM: its age at reclaim, or a censored
        observation if it was released voluntarily."""
        if lifetime_s < 0:
            raise ValueError("lifetime must be >= 0")
        if reclaimed:
            self._reclaim_lifetimes[vm_type_name].append(lifetime_s)
        else:
            self._censored[vm_type_name] += 1

    def sample_count(self, vm_type_name: str) -> int:
        return len(self._reclaim_lifetimes[vm_type_name])

    def has_model(self, vm_type_name: str) -> bool:
        return self.sample_count(vm_type_name) >= self.min_samples

    def lifetime_quantile(self, vm_type_name: str,
                          quantile: float) -> Optional[float]:
        """The ``quantile`` of observed reclaim lifetimes, or None when
        the sample is too small to trust."""
        if not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.has_model(vm_type_name):
            return None
        samples = self._reclaim_lifetimes[vm_type_name]
        return float(np.quantile(samples, quantile))

    def safe_age(self, vm_type_name: str,
                 risk: float = 0.1) -> Optional[float]:
        """Age at which historically ``risk`` of reclaimed VMs were
        already gone: the preemptive-migration trigger."""
        return self.lifetime_quantile(vm_type_name, risk)

    def expected_remaining(self, vm_type_name: str,
                           age_s: float) -> Optional[float]:
        """Mean residual lifetime at ``age_s``, from the empirical tail."""
        if not self.has_model(vm_type_name):
            return None
        samples = np.asarray(self._reclaim_lifetimes[vm_type_name])
        tail = samples[samples > age_s]
        if tail.size == 0:
            return 0.0
        return float(tail.mean() - age_s)
