"""Physical servers: core/memory accounting and the stranding predicate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cluster.vmtypes import STRANDING_THRESHOLD_GB

__all__ = ["PhysicalServer"]


@dataclass
class PhysicalServer:
    """One server in the data center.

    Placement coordinates follow the fabric's three-distance topology:
    same rack = 1 switch, same cluster = 3, different clusters = 5.
    """

    server_id: int
    cluster: int
    rack: int
    cores: int
    memory_gb: float
    allocated_cores: int = 0
    allocated_memory_gb: float = 0.0
    #: vm_id -> (cores, memory_gb), for release accounting.
    vm_footprints: Dict[int, tuple[int, float]] = field(default_factory=dict)

    @property
    def free_cores(self) -> int:
        return self.cores - self.allocated_cores

    @property
    def free_memory_gb(self) -> float:
        return self.memory_gb - self.allocated_memory_gb

    @property
    def is_stranded(self) -> bool:
        """All cores allocated while >= 1 GB of memory sits unallocated
        (§2.1's definition of a stranding event being in progress)."""
        return (self.free_cores == 0
                and self.free_memory_gb >= STRANDING_THRESHOLD_GB)

    @property
    def stranded_memory_gb(self) -> float:
        """Memory unusable by this server because its cores are gone."""
        return self.free_memory_gb if self.is_stranded else 0.0

    def can_host(self, cores: int, memory_gb: float) -> bool:
        return self.free_cores >= cores and self.free_memory_gb >= memory_gb

    def place(self, vm_id: int, cores: int, memory_gb: float) -> None:
        if not self.can_host(cores, memory_gb):
            raise ValueError(
                f"server {self.server_id} cannot host {cores}c/"
                f"{memory_gb}GB (free: {self.free_cores}c/"
                f"{self.free_memory_gb}GB)")
        if vm_id in self.vm_footprints:
            raise ValueError(f"vm {vm_id} already on server {self.server_id}")
        self.allocated_cores += cores
        self.allocated_memory_gb += memory_gb
        self.vm_footprints[vm_id] = (cores, memory_gb)

    def evict(self, vm_id: int) -> None:
        cores, memory_gb = self.vm_footprints.pop(vm_id)
        self.allocated_cores -= cores
        self.allocated_memory_gb -= memory_gb
