"""redy-repro: a full Python reproduction of Redy (VLDB 2021).

Redy is a cloud cache service over RDMA-accessible remote memory with
SLO-driven configuration, stranded-memory economics, and live region
migration.  This package reimplements the complete system -- and every
substrate its evaluation depends on -- on a calibrated discrete-event
simulated testbed:

* :mod:`repro.sim` -- the discrete-event kernel;
* :mod:`repro.hardware` -- calibrated NIC/CPU/SSD/fabric cost profiles;
* :mod:`repro.net` -- the RDMA model (verbs, queue pairs, rings);
* :mod:`repro.cluster` -- VM allocation, spot markets, reclamation,
  synthetic cluster traces, stranded-memory analysis;
* :mod:`repro.core` -- Redy itself: the data path, the configuration
  space and SLO search, the cache manager/client/server, migration,
  replication, and the cost/preemption optimizers;
* :mod:`repro.faster` -- a FASTER-style key-value store with tiered
  storage devices (the paper's §8 integration);
* :mod:`repro.workloads` -- YCSB workloads and ready-made scenarios.

Start with ``examples/quickstart.py`` or
:func:`repro.workloads.scenarios.build_cluster`.
"""

__version__ = "1.0.0"
