"""Calibrated hardware cost profiles.

The paper's evaluation ran on Azure Standard_HB60rs VMs (60 vCPUs, 228 GB
RAM) with NVIDIA Mellanox ConnectX-5 NICs.  We cannot run on that testbed,
so this package captures its *cost structure* -- the per-component
latencies and rates that determine where Redy's protocol wins and loses.
Every constant is annotated with the paper observation it is calibrated
against; the calibration is validated end-to-end by the Figure 3/7/8/11/12
benchmark suites.
"""

from repro.hardware.cpu import CpuSpec
from repro.hardware.nic import NicSpec
from repro.hardware.ssd import SsdSpec
from repro.hardware.profiles import (
    AZURE_HPC,
    FabricSpec,
    TestbedProfile,
    SWITCH_HOPS_INTER_CLUSTER,
    SWITCH_HOPS_INTRA_CLUSTER,
    SWITCH_HOPS_INTRA_RACK,
)

__all__ = [
    "AZURE_HPC",
    "CpuSpec",
    "FabricSpec",
    "NicSpec",
    "SsdSpec",
    "SWITCH_HOPS_INTER_CLUSTER",
    "SWITCH_HOPS_INTRA_CLUSTER",
    "SWITCH_HOPS_INTRA_RACK",
    "TestbedProfile",
]
