"""CPU-side cost model for the Redy data path.

These constants drive the software components of latency and throughput:
thread handoffs through ring buffers, batch assembly, server-side request
processing, and the penalties that the paper's static optimizations
(Section 4.3) remove -- lock contention and cross-NUMA scheduling jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import NS, US

__all__ = ["CpuSpec"]


@dataclass(frozen=True)
class CpuSpec:
    """Timing parameters of the client/server CPUs (EPYC 7551 class).

    Calibration anchors (Figures 7 and 8):

    * lock-free handoff vs locked handoff: lock-free cuts p99 tail ~7x and
      lifts throughput 68.7%.
    * one-sided fast path vs two-sided ring for single-op batches: median
      19 us -> 12 us, +45.3% throughput.
    * NUMA affinitization: removes ``numa_penalty`` + scheduling jitter,
      7.1 us -> 5 us median and +52% throughput in the ablation.
    """

    #: Physical cores per socket and sockets per VM (HB60rs: 2 x 30).
    cores_per_numa: int = 30
    numa_nodes: int = 2

    #: App thread -> client thread handoff through the lock-free batch ring.
    handoff_lockfree: float = 0.15 * US

    #: Same handoff through a mutex-protected queue (ablation baseline).
    handoff_locked: float = 1.20 * US

    #: Mean extra delay from lock contention under load (ablation baseline).
    #: The contended path is also the source of the 7x p99 tail.
    lock_contention_mean: float = 3.7 * US
    lock_contention_p99: float = 50.0 * US

    #: Client-thread fixed cost to assemble/flush one request batch.
    batch_prepare: float = 0.25 * US

    #: Client-thread incremental cost per request in a batch.
    client_per_op: float = 10.0 * NS

    #: Cost to run one application callback on completion.
    callback: float = 0.10 * US

    #: Server thread poll cycle over its message rings.  A request batch
    #: waits on average half a cycle before the server notices it.
    server_poll_cycle: float = 2.2 * US

    #: Server fixed cost to parse one request batch and post the response.
    server_batch_overhead: float = 0.80 * US

    #: Server incremental cost per request (bookkeeping + copy setup).
    #: Calibrated so a few server cores sustain ~100 MOPS with b=512
    #: batches -- the §7.3 searches average only 1.6 server cores.
    server_per_op: float = 22.0 * NS

    #: Server memory copy bandwidth for payload bytes, Gbit/s.
    memory_bandwidth_gbps: float = 300.0

    #: Multiplicative per-op slowdown per additional server thread, modeling
    #: shared-cache and memory-channel contention.  This is what caps the
    #: throughput-optimal configuration near the paper's 205 MOPS.
    server_contention_per_thread: float = 0.050

    #: Extra *observed latency* per data-path direction when threads are
    #: not NUMA-affinitized: scheduler-migration jitter delays when work
    #: is noticed without consuming thread capacity.
    numa_penalty_mean: float = 0.60 * US
    numa_penalty_p99: float = 6.0 * US

    #: Extra *CPU work* per op on the client thread when threads are not
    #: NUMA-affinitized (cross-socket cache-line traffic).  This is the
    #: throughput side of the Figure 8 NUMA ablation (+52%).
    numa_cpu_per_op: float = 1.0 * US

    def server_op_cost(self, payload_bytes: int, server_threads: int) -> float:
        """Server-side cost to execute one read/write request of ``payload_bytes``.

        Includes the contention factor for ``server_threads`` concurrently
        active server threads.
        """
        contention = 1.0 + self.server_contention_per_thread * max(
            0, server_threads - 1)
        copy_time = payload_bytes * 8 / (self.memory_bandwidth_gbps * 1e9)
        return (self.server_per_op + copy_time) * contention

    @property
    def total_cores(self) -> int:
        return self.cores_per_numa * self.numa_nodes
