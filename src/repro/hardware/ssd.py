"""SSD service-time model (Azure premium SSD class).

The paper's Section 1.1 framing: SSD access time is ~100 us but "highly
variable and often higher, due to garbage collection and concurrent
writes", with bandwidth 16-24 Gbit/s versus RDMA's 48-200 Gbit/s.  This
model reproduces exactly those properties: a ~100 us-class base latency, a
log-normal service distribution, occasional garbage-collection stalls, and
bounded internal parallelism that saturates near 20 Gbit/s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.clock import US

__all__ = ["SsdSpec"]


@dataclass(frozen=True)
class SsdSpec:
    """Timing/capacity parameters of one server-attached SSD."""

    name: str = "azure-premium-ssd"

    #: Median 4K read service time.
    read_latency_median: float = 90.0 * US

    #: Median 4K write (program) service time.
    write_latency_median: float = 110.0 * US

    #: Sigma of the log-normal service-time distribution (unitless).
    latency_sigma: float = 0.35

    #: Probability that a request lands behind a garbage-collection stall.
    gc_probability: float = 0.01

    #: Mean added delay when it does.
    gc_stall_mean: float = 2_000.0 * US

    #: Sequential bandwidth, Gbit/s (paper: SSDs are 16-24 Gbit/s).
    bandwidth_gbps: float = 20.0

    #: Internal parallelism: concurrent requests the device can service.
    internal_parallelism: int = 8

    def transfer_time(self, size_bytes: int) -> float:
        """Bandwidth-limited component for a transfer of ``size_bytes``."""
        return size_bytes * 8 / (self.bandwidth_gbps * 1e9)

    def sample_latency(self, size_bytes: int, is_write: bool,
                       rng: np.random.Generator) -> float:
        """Draw one end-to-end service time for a request.

        Combines the log-normal base latency, the size-dependent transfer
        time, and (with probability :attr:`gc_probability`) an exponential
        garbage-collection stall.
        """
        median = self.write_latency_median if is_write else self.read_latency_median
        # Log-normal parameterized so exp(mu) is the median.
        base = median * float(np.exp(rng.normal(0.0, self.latency_sigma)))
        latency = base + self.transfer_time(size_bytes)
        if rng.random() < self.gc_probability:
            latency += float(rng.exponential(self.gc_stall_mean))
        return latency

    def mean_latency(self, size_bytes: int, is_write: bool) -> float:
        """Expected service time (used by analytic capacity planning)."""
        median = self.write_latency_median if is_write else self.read_latency_median
        lognormal_mean = median * float(np.exp(self.latency_sigma**2 / 2))
        return (lognormal_mean + self.transfer_time(size_bytes)
                + self.gc_probability * self.gc_stall_mean)
