"""Named testbed profiles: NIC + CPU + SSD + fabric in one bundle.

:data:`AZURE_HPC` is the default profile, calibrated against the paper's
Azure HB60rs / ConnectX-5 testbed.  All higher layers take a
:class:`TestbedProfile` so alternative hardware (for sensitivity studies)
drops in without code changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hardware.cpu import CpuSpec
from repro.hardware.nic import NicSpec
from repro.hardware.ssd import SsdSpec
from repro.sim.clock import US

__all__ = [
    "AZURE_HPC",
    "FabricSpec",
    "TestbedProfile",
    "SWITCH_HOPS_INTRA_RACK",
    "SWITCH_HOPS_INTRA_CLUSTER",
    "SWITCH_HOPS_INTER_CLUSTER",
]

#: The three network distances of a typical data center (paper §5.2):
#: one switch (intra-rack), three (intra-cluster), five (inter-cluster).
SWITCH_HOPS_INTRA_RACK = 1
SWITCH_HOPS_INTRA_CLUSTER = 3
SWITCH_HOPS_INTER_CLUSTER = 5


@dataclass(frozen=True)
class FabricSpec:
    """Network fabric timing parameters.

    Calibrated so a one-switch round trip lands at ~2.9 us, the network
    component of the latency-optimal configuration in Figure 3.
    """

    #: One-way latency contributed by each switch traversal.
    hop_latency: float = 0.75 * US

    #: One-way NIC wire-entry cost (tx serializer, PHY), excluded from
    #: per-message NIC processing because it is paid per direction.
    wire_entry: float = 0.35 * US

    #: One-way NIC wire-exit cost.
    wire_exit: float = 0.35 * US

    #: Shared bandwidth of each rack's uplink to the rest of the fabric,
    #: Gbit/s.  None models a non-blocking fabric (the paper's HPC
    #: cluster); a finite value makes concurrent cross-rack flows from
    #: one rack contend -- the oversubscription concern of the
    #: disaggregation literature the paper cites.
    rack_uplink_gbps: float | None = None

    def one_way_base(self, switch_hops: int) -> float:
        """One-way propagation latency excluding serialization, seconds."""
        return self.wire_entry + switch_hops * self.hop_latency + self.wire_exit

    def round_trip_base(self, switch_hops: int) -> float:
        """Round-trip propagation latency excluding serialization.

        At one switch this is 2.9 us -- the light-blue network bar of
        Figure 7 for the latency-optimal configuration.
        """
        return 2.0 * self.one_way_base(switch_hops)


@dataclass(frozen=True)
class TestbedProfile:
    """Everything the simulation needs to know about the hardware."""

    name: str = "azure-hpc"
    nic: NicSpec = field(default_factory=NicSpec)
    cpu: CpuSpec = field(default_factory=CpuSpec)
    ssd: SsdSpec = field(default_factory=SsdSpec)
    fabric: FabricSpec = field(default_factory=FabricSpec)

    #: Fraction of VM cores assumed available to a Redy cache during
    #: offline modeling (paper §5.2: "a VM has up to 60 cores, of which we
    #: assume half are available to a Redy cache").
    modeling_core_fraction: float = 0.5

    #: Relative standard deviation of measurement noise applied when the
    #: simulated testbed "measures" a configuration.  This is what makes
    #: predicted and real curves differ slightly in Figures 13/14.
    measurement_noise: float = 0.03

    @property
    def modeling_cores(self) -> int:
        """Client cores available during offline modeling (C in Table 2)."""
        return int(self.cpu.total_cores * self.modeling_core_fraction)

    def with_overrides(self, **kwargs) -> "TestbedProfile":
        """Return a copy with some fields replaced (for sensitivity studies)."""
        return replace(self, **kwargs)


#: Default profile matching the paper's evaluation testbed.
AZURE_HPC = TestbedProfile()
