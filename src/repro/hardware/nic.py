"""RDMA NIC cost model (ConnectX-5 class).

The NIC is the heart of the latency model.  An RDMA verb's end-to-end cost
decomposes into: doorbell (MMIO post), payload acquisition (inlined in the
work request, or fetched from host memory over PCIe), wire serialization,
per-hop switch latency (owned by the fabric model, not the NIC), remote
delivery DMA, and completion-queue reaping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.clock import US

__all__ = ["NicSpec", "QpContextCache"]

#: Transport-layer header bytes per RDMA message (RoCE/IB headers + CRC).
MESSAGE_HEADER_BYTES = 60


@dataclass(frozen=True)
class NicSpec:
    """Timing/capacity parameters of one RDMA NIC.

    Calibration anchors (paper section in parentheses):

    * ``inline_threshold_bytes = 172`` -- measured inline cutoff on the
      paper's testbed (§7.2): writes up to this size avoid the PCIe fetch,
      which is why small writes beat small reads in Figure 11.
    * ``max_queue_depth = 16`` -- NIC-specific in-flight operation bound
      (Table 2) on Azure HPC.
    * ``line_rate_gbps = 100`` -- ConnectX-5 port speed.
    """

    name: str = "ConnectX-5"

    #: Port speed in Gbit/s.  100 Gbit/s = 12.5 GB/s.
    line_rate_gbps: float = 100.0

    #: Largest write payload that can ride inside the work request itself.
    inline_threshold_bytes: int = 172

    #: NIC-enforced bound on in-flight operations per QP (Table 2 upper
    #: bound for q).
    max_queue_depth: int = 16

    #: Cost of posting one work request (doorbell MMIO + WQE build), seconds.
    doorbell: float = 0.20 * US

    #: Base PCIe round trip to fetch a non-inline payload from host memory.
    dma_fetch_base: float = 0.40 * US

    #: PCIe payload bandwidth in Gbit/s (PCIe 3.0 x16 effective).
    pcie_gbps: float = 120.0

    #: Cost of delivering an inbound payload into host memory (DMA write).
    rx_dma: float = 0.15 * US

    #: Cost for software to reap one completion-queue entry.
    completion_poll: float = 0.15 * US

    #: Fixed NIC processing per message on the sending side (WQE
    #: scheduling, transport state).
    per_message_processing: float = 0.25 * US

    #: Per-step execution latency of a chained verb program at the
    #: responder NIC (WQE interpretation + transport state update for one
    #: chained step; the step's own DMA cost is charged separately).
    #: Chained WQEs execute from on-NIC memory without a PCIe round trip
    #: per step, which is what makes one-RTT dependent reads profitable.
    program_step_latency: float = 0.10 * US

    #: Fraction of ``per_message_processing`` a work request pays when it
    #: rides behind another WR's doorbell (one MMIO write + one WQE-ring
    #: DMA fetch cover the whole batch; per-WR transport state remains).
    doorbell_batch_discount: float = 0.4

    #: Max messages/second one QP can sustain (millions).  This is what the
    #: raw nd_read_bw/nd_write_bw baseline hits for small records, and what
    #: Redy's batching side-steps (Figure 12: 10x over raw at 16 B).
    message_rate_mops_per_qp: float = 16.0

    #: Aggregate message rate of the whole NIC (millions/second).
    message_rate_mops_total: float = 165.0

    # -- Control-plane costs (Swift: the connect path is *not* free) ---
    #
    # These parameters only bite when control-plane modeling is enabled
    # (``Fabric(model_control_plane=True)`` or an installed
    # ``repro.cplane.ControlPlane``); the paper's long-lived-client
    # benchmarks keep the historical zero-cost setup path.

    #: Software + firmware cost to allocate one QP and write its initial
    #: context through the NIC command interface (``CREATE_QP``).
    qp_create_latency: float = 14.0 * US

    #: One ``MODIFY_QP`` state transition through the command interface.
    #: A reliable connection walks RESET -> INIT -> RTR -> RTS, i.e.
    #: ``qp_state_transitions`` of these.
    qp_modify_latency: float = 9.0 * US

    #: State transitions per connection establishment (RESET->INIT->
    #: RTR->RTS).
    qp_state_transitions: int = 3

    #: Out-of-band connection-manager handshake round trips (REQ/REP +
    #: RTU) before the first data verb may be posted.
    connect_handshake_rtts: int = 2

    #: Wire bytes of one connection-manager handshake message (CM MAD).
    connect_message_bytes: int = 256

    #: Fraction of the QP create + modify command cost a follower pays
    #: when several establishments are driven through one command-queue
    #: doorbell (Swift-style batched connect).  The handshake RTTs are
    #: per-connection and never discounted.
    connect_batch_discount: float = 0.35

    #: Fixed cost to register one memory region (ibv_reg_mr syscall,
    #: pinning setup, NIC translation-table entry).
    mr_register_base: float = 30.0 * US

    #: Additional registration cost per GiB of region size (page pinning
    #: + MTT upload scale linearly with the mapped range).
    mr_register_per_gb: float = 0.25

    #: On-NIC QP-context (ICM) cache capacity, in QP contexts.  Each
    #: *active* QP needs its context resident to process a verb; with
    #: more live QPs than entries, ops thrash the cache.
    qp_context_cache_entries: int = 128

    #: Extra per-op service time when a verb's QP context is not
    #: resident and must be fetched from host memory over PCIe.
    qp_context_miss_penalty: float = 0.55 * US

    def wire_time(self, payload_bytes: int) -> float:
        """Serialization delay of one message of ``payload_bytes`` on the wire."""
        bits = (payload_bytes + MESSAGE_HEADER_BYTES) * 8
        return bits / (self.line_rate_gbps * 1e9)

    def dma_fetch(self, payload_bytes: int) -> float:
        """PCIe fetch cost for a non-inline payload of ``payload_bytes``."""
        bits = payload_bytes * 8
        return self.dma_fetch_base + bits / (self.pcie_gbps * 1e9)

    def can_inline(self, payload_bytes: int) -> bool:
        """Whether a write payload rides inline in the work request."""
        return payload_bytes <= self.inline_threshold_bytes

    def mr_register_latency(self, region_bytes: int) -> float:
        """Registration latency of one region: base + size-proportional
        pinning/translation-upload cost."""
        return (self.mr_register_base
                + self.mr_register_per_gb * region_bytes / (1 << 30))

    def qp_setup_cpu_latency(self, batched: bool = False) -> float:
        """Command-interface cost to create + connect one QP (create
        plus the RESET->INIT->RTR->RTS transitions), before the
        out-of-band handshake RTTs.  ``batched`` applies the shared-
        doorbell discount for establishments driven as one command
        batch."""
        cost = (self.qp_create_latency
                + self.qp_state_transitions * self.qp_modify_latency)
        return cost * self.connect_batch_discount if batched else cost

    @property
    def bytes_per_second(self) -> float:
        return self.line_rate_gbps * 1e9 / 8


class QpContextCache:
    """Per-NIC LRU cache of resident QP contexts (the ICM cache).

    Every verb processed by a NIC -- as requester or responder --
    touches its QP's context.  The cache holds ``entries`` contexts;
    touching a resident QP is free, touching a non-resident one costs
    :attr:`NicSpec.qp_context_miss_penalty` of extra service time (the
    PCIe fetch that brings the context back) and evicts the least
    recently used entry.  This is the per-QP NIC state pressure that
    makes 10^5 naive per-client QPs melt a cache VM even after all of
    them are established.

    Deterministic by construction: plain insertion-ordered dict, no
    wall-clock, no randomness; eviction order is a pure function of the
    touch sequence.
    """

    __slots__ = ("entries", "hits", "misses", "evictions", "_resident")

    def __init__(self, entries: int):
        if entries < 1:
            raise ValueError(f"cache needs >= 1 entry, got {entries}")
        self.entries = entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: qp_id -> None, in LRU order (oldest first).
        self._resident: Dict[int, None] = {}

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, qp_id: int) -> bool:
        return qp_id in self._resident

    def touch(self, qp_id: int) -> bool:
        """Reference ``qp_id``'s context; returns True on a hit.

        A miss installs the context, evicting the LRU entry when full.
        """
        resident = self._resident
        if qp_id in resident:
            self.hits += 1
            del resident[qp_id]      # move to most-recently-used
            resident[qp_id] = None
            return True
        self.misses += 1
        if len(resident) >= self.entries:
            oldest = next(iter(resident))
            del resident[oldest]
            self.evictions += 1
        resident[qp_id] = None
        return False

    def evict(self, qp_id: int) -> None:
        """Drop one QP's context (QP destroyed/reclaimed)."""
        self._resident.pop(qp_id, None)

    def resident_ids(self) -> tuple:
        """Resident QP ids in LRU order (oldest first) -- test hook."""
        return tuple(self._resident)

    def stats(self) -> Dict[str, int]:
        return {"entries": self.entries, "resident": len(self._resident),
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}
