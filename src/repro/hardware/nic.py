"""RDMA NIC cost model (ConnectX-5 class).

The NIC is the heart of the latency model.  An RDMA verb's end-to-end cost
decomposes into: doorbell (MMIO post), payload acquisition (inlined in the
work request, or fetched from host memory over PCIe), wire serialization,
per-hop switch latency (owned by the fabric model, not the NIC), remote
delivery DMA, and completion-queue reaping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import US

__all__ = ["NicSpec"]

#: Transport-layer header bytes per RDMA message (RoCE/IB headers + CRC).
MESSAGE_HEADER_BYTES = 60


@dataclass(frozen=True)
class NicSpec:
    """Timing/capacity parameters of one RDMA NIC.

    Calibration anchors (paper section in parentheses):

    * ``inline_threshold_bytes = 172`` -- measured inline cutoff on the
      paper's testbed (§7.2): writes up to this size avoid the PCIe fetch,
      which is why small writes beat small reads in Figure 11.
    * ``max_queue_depth = 16`` -- NIC-specific in-flight operation bound
      (Table 2) on Azure HPC.
    * ``line_rate_gbps = 100`` -- ConnectX-5 port speed.
    """

    name: str = "ConnectX-5"

    #: Port speed in Gbit/s.  100 Gbit/s = 12.5 GB/s.
    line_rate_gbps: float = 100.0

    #: Largest write payload that can ride inside the work request itself.
    inline_threshold_bytes: int = 172

    #: NIC-enforced bound on in-flight operations per QP (Table 2 upper
    #: bound for q).
    max_queue_depth: int = 16

    #: Cost of posting one work request (doorbell MMIO + WQE build), seconds.
    doorbell: float = 0.20 * US

    #: Base PCIe round trip to fetch a non-inline payload from host memory.
    dma_fetch_base: float = 0.40 * US

    #: PCIe payload bandwidth in Gbit/s (PCIe 3.0 x16 effective).
    pcie_gbps: float = 120.0

    #: Cost of delivering an inbound payload into host memory (DMA write).
    rx_dma: float = 0.15 * US

    #: Cost for software to reap one completion-queue entry.
    completion_poll: float = 0.15 * US

    #: Fixed NIC processing per message on the sending side (WQE
    #: scheduling, transport state).
    per_message_processing: float = 0.25 * US

    #: Per-step execution latency of a chained verb program at the
    #: responder NIC (WQE interpretation + transport state update for one
    #: chained step; the step's own DMA cost is charged separately).
    #: Chained WQEs execute from on-NIC memory without a PCIe round trip
    #: per step, which is what makes one-RTT dependent reads profitable.
    program_step_latency: float = 0.10 * US

    #: Fraction of ``per_message_processing`` a work request pays when it
    #: rides behind another WR's doorbell (one MMIO write + one WQE-ring
    #: DMA fetch cover the whole batch; per-WR transport state remains).
    doorbell_batch_discount: float = 0.4

    #: Max messages/second one QP can sustain (millions).  This is what the
    #: raw nd_read_bw/nd_write_bw baseline hits for small records, and what
    #: Redy's batching side-steps (Figure 12: 10x over raw at 16 B).
    message_rate_mops_per_qp: float = 16.0

    #: Aggregate message rate of the whole NIC (millions/second).
    message_rate_mops_total: float = 165.0

    def wire_time(self, payload_bytes: int) -> float:
        """Serialization delay of one message of ``payload_bytes`` on the wire."""
        bits = (payload_bytes + MESSAGE_HEADER_BYTES) * 8
        return bits / (self.line_rate_gbps * 1e9)

    def dma_fetch(self, payload_bytes: int) -> float:
        """PCIe fetch cost for a non-inline payload of ``payload_bytes``."""
        bits = payload_bytes * 8
        return self.dma_fetch_base + bits / (self.pcie_gbps * 1e9)

    def can_inline(self, payload_bytes: int) -> bool:
        """Whether a write payload rides inline in the work request."""
        return payload_bytes <= self.inline_threshold_bytes

    @property
    def bytes_per_second(self) -> float:
        return self.line_rate_gbps * 1e9 / 8
