"""Parallel sweep execution over independent measurement tasks.

The grid sweeps behind every figure reproduction are embarrassingly
parallel: each grid point is one :func:`measure_config` call with its
own seed, its own :class:`~repro.sim.kernel.Environment`, and no shared
state.  :class:`SweepRunner` fans those calls across a
``ProcessPoolExecutor``, collects results in task order, and falls back
to in-process serial execution when ``max_workers=1`` or a pool cannot
be created (restricted sandboxes, missing OS semaphores).

Determinism contract: a task's result depends only on the task's own
fields (config, profile, parameters, seed), never on scheduling.  The
runner therefore guarantees that serial, parallel, and cache-hit runs
over the same task list return bit-identical ``MeasurementResult``
values and -- because each task's metrics are captured as a snapshot
and merged in task order -- identical registry contents too.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import RdmaConfig
from repro.core.measurement import MeasurementResult, measure_config
from repro.exec.cache import ResultCache, cache_key
from repro.hardware.profiles import AZURE_HPC, TestbedProfile
from repro.obs.metrics import MetricsRegistry

__all__ = ["SweepRunner", "SweepTask", "tasks_for"]


@dataclass(frozen=True)
class SweepTask:
    """One grid point: the full argument set of a ``measure_config`` call."""

    config: RdmaConfig
    record_size: int
    profile: TestbedProfile = AZURE_HPC
    switch_hops: int = 1
    read_fraction: float = 0.5
    batches_per_connection: int = 120
    warmup_batches: int = 30
    extra_outstanding: int = 0
    seed: int = 0
    #: Pointer-chasing GET workload (index word -> record); the config's
    #: ``use_verb_programs`` picks the transport.  Changes measured
    #: results, so it is part of the cache key.
    dependent_reads: bool = False
    #: Kernel event-list implementation ("calendar"/"heap"); None
    #: inherits the process-wide default.  Scheduler choice never
    #: affects measured results (the equivalence suite pins this), so
    #: it is deliberately *excluded* from the cache key: both
    #: schedulers hit the same cached blob.
    scheduler: Optional[str] = None
    #: Cosmetic display label for reports/progress output.  Never
    #: affects the measurement, so -- like ``scheduler`` -- it is
    #: excluded from the cache key: relabelled sweeps still hit.
    label: str = ""

    def cache_key(self) -> str:
        return cache_key(
            config=self.config,
            profile=self.profile,
            switch_hops=self.switch_hops,
            record_size=self.record_size,
            read_fraction=self.read_fraction,
            batches_per_connection=self.batches_per_connection,
            warmup_batches=self.warmup_batches,
            extra_outstanding=self.extra_outstanding,
            seed=self.seed,
            dependent_reads=self.dependent_reads,
        )


def tasks_for(configs: Iterable[RdmaConfig], *, record_size: int,
              base_seed: int = 0, seed_stride: int = 1,
              **params) -> List[SweepTask]:
    """Tasks for a config list with deterministic per-task seeds.

    Task ``i`` gets ``base_seed + i * seed_stride``; a ``seed_stride``
    of 0 reuses one seed across the grid (the fig07/08 ladder does
    this, keeping the noise draw identical between stages).
    """
    return [SweepTask(config=config, record_size=record_size,
                      seed=base_seed + index * seed_stride, **params)
            for index, config in enumerate(configs)]


def _execute_task(task: SweepTask) -> Tuple[MeasurementResult, Dict]:
    """Worker body: run one task with a private metrics registry.

    Module-level (not a closure) so it pickles into pool workers.  The
    registry is always attached: instrumentation only observes -- it
    never perturbs simulated timing or RNG draws -- and capturing the
    snapshot unconditionally means every cache blob can replay the full
    observability surface later.
    """
    registry = MetricsRegistry()
    result = measure_config(
        task.config, task.record_size,
        profile=task.profile,
        switch_hops=task.switch_hops,
        read_fraction=task.read_fraction,
        batches_per_connection=task.batches_per_connection,
        warmup_batches=task.warmup_batches,
        extra_outstanding=task.extra_outstanding,
        seed=task.seed,
        metrics=registry,
        scheduler=task.scheduler,
        dependent_reads=task.dependent_reads,
    )
    return result, registry.snapshot()


class SweepRunner:
    """Runs a batch of :class:`SweepTask` with caching and parallelism.

    Parameters
    ----------
    max_workers:
        Pool size; ``None`` means ``os.cpu_count()``.  ``1`` forces the
        serial path (no pool is created at all).
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely.
    metrics:
        Optional parent :class:`MetricsRegistry`.  Per-task snapshots
        are merged into it in task order, and the runner publishes its
        own counters under ``exec.*`` (``tasks``, ``cache_hits``,
        ``cache_misses``) plus ``exec.workers`` / ``exec.wall_seconds``
        gauges.
    """

    def __init__(self, *, max_workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 metrics: Optional[MetricsRegistry] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.cache = cache
        self.metrics = metrics
        #: Mode of the last run() -- "parallel" or "serial"; tests and
        #: the CLI report it.
        self.last_mode: Optional[str] = None

    def run(self, tasks: Sequence[SweepTask]) -> List[MeasurementResult]:
        """Execute ``tasks``; results are returned in task order."""
        tasks = list(tasks)
        started = time.perf_counter()  # repro-lint: disable=D001 -- wall time of the executor itself; feeds exec.wall_seconds, never sim state
        outcomes: List[Optional[Tuple[MeasurementResult, Dict]]] = (
            [None] * len(tasks))
        keys: List[Optional[str]] = [None] * len(tasks)

        pending: List[int] = []
        for index, task in enumerate(tasks):
            if self.cache is not None:
                keys[index] = task.cache_key()
                blob = self.cache.get(keys[index])
                if blob is not None:
                    outcomes[index] = (MeasurementResult(**blob["result"]),
                                       blob["snapshot"])
                    continue
            pending.append(index)

        cache_hits = len(tasks) - len(pending)
        self._execute(tasks, pending, outcomes)

        if self.cache is not None:
            for index in pending:
                result, snapshot = outcomes[index]
                self.cache.put(keys[index], {
                    "task": dataclasses.asdict(tasks[index]),
                    "result": dataclasses.asdict(result),
                    "snapshot": snapshot,
                })

        if self.metrics is not None:
            for outcome in outcomes:
                self.metrics.merge_snapshot(outcome[1])
            self.metrics.counter("exec.tasks").inc(len(tasks))
            self.metrics.counter("exec.cache_hits").inc(cache_hits)
            self.metrics.counter("exec.cache_misses").inc(len(pending))
            self.metrics.gauge("exec.workers").set(self._worker_budget())
            self.metrics.gauge("exec.wall_seconds").set(
                time.perf_counter() - started)  # repro-lint: disable=D001 -- executor wall-clock gauge, excluded from digests
        return [outcome[0] for outcome in outcomes]

    def _worker_budget(self) -> int:
        if self.max_workers is not None:
            return self.max_workers
        import os
        return os.cpu_count() or 1

    def _execute(self, tasks: Sequence[SweepTask], pending: Sequence[int],
                 outcomes: List) -> None:
        if len(pending) > 1 and self._worker_budget() > 1:
            try:
                workers = min(self._worker_budget(), len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [(index, pool.submit(_execute_task,
                                                   tasks[index]))
                               for index in pending]
                    for index, future in futures:
                        outcomes[index] = future.result()
                self.last_mode = "parallel"
                return
            except (OSError, ImportError, NotImplementedError,
                    PermissionError):
                # No usable pool in this environment (sandboxed /dev/shm,
                # missing multiprocessing semaphores): degrade to serial.
                pass
        for index in pending:
            outcomes[index] = _execute_task(tasks[index])
        self.last_mode = "serial"
