"""Content-addressed on-disk cache for measurement results.

A sweep over a configuration grid is a pure function of its inputs: each
:func:`repro.core.measurement.measure_config` call is fully determined
by the ``RdmaConfig``, the hardware profile, the measurement parameters,
and the seed.  The cache exploits that purity -- the key is a SHA-256
over the canonical JSON encoding of exactly those inputs (plus a code
version salt, bumped whenever the simulator's numerics change), and the
value is a JSON blob holding the frozen ``MeasurementResult`` plus the
run's full metrics snapshot, so a cache hit replays both the numbers
*and* the observability surface bit-for-bit.

Blobs live under ``benchmarks/_results/.cache/`` by default, one file
per key, named ``<first 16 hex chars>.json``.  JSON round-trips Python
floats exactly (``repr`` shortest-form), which is what makes cached
results bit-identical to live ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["CODE_VERSION", "ResultCache", "cache_key"]

#: Bump whenever a change alters measurement numerics (kernel event
#: ordering, RNG stream layout, timing model): old cache entries then
#: miss instead of serving stale results.
CODE_VERSION = "repro-exec/v3"  # v3: dependent-read workloads + verb-program transport toggle

#: Blob schema tag, checked on read so a future layout change cannot be
#: misinterpreted as a hit.
_BLOB_SCHEMA = "repro.exec/v1"


def _canonical(value: Any) -> Any:
    """Reduce a value to canonical JSON-encodable form for hashing.

    Dataclasses (``RdmaConfig``, ``TestbedProfile`` and its nested
    device specs) become sorted-key dicts; floats rely on JSON's exact
    shortest-repr round-trip.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _canonical(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__} for "
                    f"cache keying: {value!r}")


def cache_key(**inputs: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``inputs``.

    The code version salt is always mixed in; callers pass the
    measurement inputs (config, profile, params, seed).
    """
    payload = _canonical(dict(inputs, code_version=CODE_VERSION))
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


class ResultCache:
    """One directory of ``<key>.json`` measurement blobs.

    Reads and writes are atomic-enough for the sweep use case: a blob is
    written to a temp file and renamed into place, so concurrent workers
    racing on the same key both leave a complete file behind.
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key[:16]}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The blob stored for ``key``, or None on a miss."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                blob = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return None
        if blob.get("schema") != _BLOB_SCHEMA or blob.get("key") != key:
            # Schema drift or a (16-hex-char) filename collision with a
            # different full key: treat as a miss, never as wrong data.
            self.misses += 1
            return None
        self.hits += 1
        return blob

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        """Store ``payload`` under ``key``; returns the blob path."""
        self.root.mkdir(parents=True, exist_ok=True)
        blob = dict(payload, schema=_BLOB_SCHEMA, key=key)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(blob, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for entry in self.root.iterdir()
                   if entry.suffix == ".json")
