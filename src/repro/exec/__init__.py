"""Parallel sweep execution with content-addressed result caching.

``repro.exec`` turns the reproduction's configuration sweeps from
serial batch jobs into cheap, repeatable operations (the Swift/elastic
control-plane framing from PAPERS.md):

* :class:`~repro.exec.runner.SweepRunner` fans independent
  ``measure_config`` calls across a process pool with deterministic
  per-task seeds and ordered result collection, falling back to serial
  execution when only one worker is available.
* :class:`~repro.exec.cache.ResultCache` stores each task's frozen
  result plus its full metrics snapshot under a SHA-256 key of the
  task's inputs, so re-running a sweep is near-instant and replays the
  same numbers bit-for-bit.

See DESIGN.md ("The sweep executor") for the worker model, the cache
key layout, and the determinism guarantees.
"""

from repro.exec.cache import CODE_VERSION, ResultCache, cache_key
from repro.exec.runner import SweepRunner, SweepTask, tasks_for

__all__ = [
    "CODE_VERSION",
    "ResultCache",
    "SweepRunner",
    "SweepTask",
    "cache_key",
    "tasks_for",
]
