"""Shared resources for simulation processes.

Two primitives cover the reproduction's needs:

* :class:`Store` -- an unbounded-or-bounded FIFO of items; the simulated
  analogue of the lock-free ring buffers in Redy's data path and of device
  request queues in the FASTER substrate.
* :class:`Resource` -- counted slots with FIFO admission; used for NIC DMA
  engines and SSD internal parallelism.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.kernel import Environment, Event, SimulationError

__all__ = ["Resource", "Store"]


class Store:
    """A FIFO channel between producer and consumer processes.

    ``put`` blocks while the store is full (when ``capacity`` is bounded);
    ``get`` blocks while it is empty.  Waiters are served in FIFO order,
    which mirrors the in-order guarantee Redy gets from reliable RDMA
    connections.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"Store capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` is accepted."""
        event = self.env.event()
        if self._getters:
            # Hand the item straight to the oldest waiting consumer.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif not self.is_full:
            self._items.append(item)
            event.succeed()
        else:
            event.on_abandon = self._cancel_put
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.is_full:
            return False
        self._items.append(item)
        return True

    def get(self) -> Event:
        """Return an event that fires with the next item.

        A consumer that abandons the wait (it was interrupted) is pulled
        back out of the queue -- and if an item was already handed to it
        in the same instant, the item is returned to the store -- so no
        item is ever lost to an orphaned waiter.
        """
        event = self.env.event()
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            event.on_abandon = self._cancel_get
            self._getters.append(event)
        return event

    def _cancel_get(self, event: Event) -> None:
        try:
            self._getters.remove(event)
            return
        except ValueError:
            pass
        if event.triggered and event.ok:
            # A put() handed its item over in the same instant the
            # consumer was interrupted; reclaim it for the next consumer.
            self._restock(event.value)

    def _cancel_put(self, event: Event) -> None:
        for index, (pending, _item) in enumerate(self._putters):
            if pending is event:
                del self._putters[index]
                return

    def _restock(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            # Front of the queue: the item was logically next in FIFO
            # order.  May transiently exceed a bounded capacity; that is
            # the correct accounting -- the item was already admitted.
            self._items.appendleft(item)

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, item)."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self._admit_putter()
        return True, item

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            event, item = self._putters.popleft()
            self._items.append(item)
            event.succeed()


class Resource:
    """``slots`` interchangeable units acquired and released by processes.

    Usage::

        yield resource.acquire()
        try:
            yield env.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, env: Environment, slots: int = 1):
        if slots < 1:
            raise SimulationError(f"Resource needs >= 1 slot, got {slots}")
        self.env = env
        self.slots = slots
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires once a slot is held.

        A waiter that abandons the wait (it was interrupted) is removed
        from the queue -- and if a slot was already handed to it in the
        same instant, the slot is released again -- so ``in_use`` credits
        can never leak to processes that will never run.
        """
        event = self.env.event()
        if self._in_use < self.slots:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        event.on_abandon = self._cancel_acquire
        return event

    def _cancel_acquire(self, event: Event) -> None:
        try:
            self._waiters.remove(event)
            return
        except ValueError:
            pass
        if event.triggered and event.ok:
            # The slot was granted (at acquire time or via a release
            # handoff) but its owner was interrupted before resuming;
            # pass it on so the credit is not permanently leaked.
            self.release()

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        if self._waiters:
            # Hand the slot directly to the oldest waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1
