"""Shared resources for simulation processes.

Two primitives cover the reproduction's needs:

* :class:`Store` -- an unbounded-or-bounded FIFO of items; the simulated
  analogue of the lock-free ring buffers in Redy's data path and of device
  request queues in the FASTER substrate.
* :class:`Resource` -- counted slots with FIFO admission; used for NIC DMA
  engines and SSD internal parallelism.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.kernel import Environment, Event, SimulationError

__all__ = ["Resource", "Store"]


class Store:
    """A FIFO channel between producer and consumer processes.

    ``put`` blocks while the store is full (when ``capacity`` is bounded);
    ``get`` blocks while it is empty.  Waiters are served in FIFO order,
    which mirrors the in-order guarantee Redy gets from reliable RDMA
    connections.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"Store capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` is accepted."""
        event = self.env.event()
        if self._getters:
            # Hand the item straight to the oldest waiting consumer.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif not self.is_full:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.is_full:
            return False
        self._items.append(item)
        return True

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = self.env.event()
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, item)."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self._admit_putter()
        return True, item

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            event, item = self._putters.popleft()
            self._items.append(item)
            event.succeed()


class Resource:
    """``slots`` interchangeable units acquired and released by processes.

    Usage::

        yield resource.acquire()
        try:
            yield env.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, env: Environment, slots: int = 1):
        if slots < 1:
            raise SimulationError(f"Resource needs >= 1 slot, got {slots}")
        self.env = env
        self.slots = slots
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        event = self.env.event()
        if self._in_use < self.slots:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        if self._waiters:
            # Hand the slot directly to the oldest waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1
