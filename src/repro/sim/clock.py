"""Time units for the simulation kernel.

The kernel's native unit is the second, stored as a float.  All latency
arithmetic in the reproduction is done at microsecond-to-minute scale, which
float64 represents with sub-picosecond resolution, so drift is a non-issue
for the horizons we simulate (hours).
"""

#: One second, the native time unit.
S = 1.0

#: One millisecond.
MS = 1e-3

#: One microsecond.  Most RDMA latencies are a handful of these.
US = 1e-6

#: One nanosecond.  Used for per-byte wire/memory costs.
NS = 1e-9

#: One minute.  Used by the cluster-trace generator.
MINUTE = 60.0


def format_time(seconds: float) -> str:
    """Render a duration with a human-appropriate unit.

    >>> format_time(4.1e-6)
    '4.100us'
    >>> format_time(0.25)
    '250.000ms'
    """
    if seconds < 1e-6:
        return f"{seconds / NS:.3f}ns"
    if seconds < 1e-3:
        return f"{seconds / US:.3f}us"
    if seconds < 1.0:
        return f"{seconds / MS:.3f}ms"
    if seconds < MINUTE:
        return f"{seconds:.3f}s"
    return f"{seconds / MINUTE:.2f}min"
