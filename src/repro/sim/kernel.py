"""The discrete-event simulation kernel.

The kernel follows the classic event-list design: an
:class:`Environment` owns a binary heap of scheduled events, and
:class:`Process` objects are Python generators that advance by yielding
events.  When a yielded event fires, the process resumes with the event's
value (or the event's exception is thrown into it).

The feature set is intentionally small -- timeouts, one-shot events,
processes, and interrupts -- because that is exactly what the higher
layers (RDMA fabric, cache engine, cluster allocator) need.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "set_default_monitor",
]

#: Monitor installed on every Environment created while set (see
#: :func:`set_default_monitor`).  ``None`` keeps the kernel hook-free.
_default_monitor: Optional[Any] = None


def set_default_monitor(monitor: Optional[Any]) -> Optional[Any]:
    """Install ``monitor`` on all subsequently-created Environments.

    The replay sanitizer (:mod:`repro.analysis.sanitize`) uses this to
    observe workloads that build their own Environments internally.
    Returns the previous default so callers can restore it.  A monitor
    implements the :class:`repro.analysis.hb.KernelMonitor` protocol;
    every hook call is guarded by a ``None`` check, so unmonitored runs
    pay one attribute load per hook site.
    """
    global _default_monitor
    previous = _default_monitor
    _default_monitor = monitor
    return previous


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupting party supplies ``cause``, which the interrupted
    process can inspect to decide how to react (the migration and
    reclamation code paths use this to distinguish "VM reclaimed" from
    "cache deleted").
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle priorities.  Lower value fires first at equal timestamps.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait on.

    An event moves through three states: *pending* (created), *triggered*
    (scheduled on the event list with a value or an exception), and
    *processed* (callbacks ran).  Waiting on an already-processed event
    resumes the waiter immediately on the next kernel step.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered",
                 "_processed", "on_abandon", "_hb")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Lazily allocated on the first waiter; ``None`` both before any
        #: waiter registers and after processing (``_processed`` is the
        #: authoritative lifecycle flag).  Skipping the per-event list
        #: allocation matters: the measurement loop creates one event per
        #: simulated operation.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._processed = False
        #: Called (once) when the sole waiting process abandons this wait
        #: -- e.g. it was interrupted.  Resource containers use it to pull
        #: the orphaned waiter out of their queues so items and slots are
        #: not handed to a process that will never consume them.
        self.on_abandon: Optional[Callable[["Event"], None]] = None
        #: Happens-before stamp (the triggering process's vector clock),
        #: written by an attached kernel monitor; ``None`` when unmonitored.
        self._hb: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """True if the event succeeded, False if it failed, None if pending."""
        return self._ok

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        # Inlined Environment._enqueue: succeed() fires once per
        # simulated operation, and the delay is always zero.
        env = self.env
        env._sequence += 1
        heappush(env._heap, (env._now, priority, env._sequence,
                             _EVENT_DISPATCH, self))
        monitor = env.monitor
        if monitor is not None:
            monitor.on_trigger(self)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception is thrown into every waiting process.
        """
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.env._enqueue(self, delay=0.0, priority=priority)
        monitor = self.env.monitor
        if monitor is not None:
            monitor.on_trigger(self)
        return self

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._processed:
            # Already processed: deliver on the next kernel step so that
            # resume ordering stays deterministic.
            self.env._call_soon(callback, self)
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    def _notify_abandoned(self) -> None:
        """Tell the event's producer that its waiter walked away."""
        hook, self.on_abandon = self.on_abandon, None
        if hook is not None:
            hook(self)

    def __repr__(self) -> str:
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


#: The pre-bound handler every event entry carries on the heap; its
#: identity tells the dispatch loop "this entry is an event" without an
#: isinstance() per step.
_EVENT_DISPATCH = Event._run_callbacks


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        # Fast path: one Timeout per simulated operation.  The delay is
        # validated here, once -- _enqueue trusts its (kernel-internal)
        # callers -- and the Event fields are initialized directly in
        # their final triggered state instead of calling
        # ``Event.__init__`` and overwriting half of what it set.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = None
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self.on_abandon = None
        self._hb = None
        self.delay = delay
        env._sequence += 1
        heappush(env._heap, (env._now + delay, PRIORITY_NORMAL,
                             env._sequence, _EVENT_DISPATCH, self))


class Process(Event):
    """A generator-driven simulation process.

    The process itself is an event that fires when the generator returns
    (its value is the generator's return value) or raises.  This makes
    processes joinable: ``yield other_process`` waits for completion.
    """

    __slots__ = ("_generator", "_waiting_on", "name", "_send", "_throw",
                 "_resume_handler")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Pre-bound handler slots: ``_step`` runs once per yield, so the
        # send/throw/resume bound methods are built a single time here
        # instead of being re-created (and garbage-collected) per step.
        self._send = generator.send
        self._throw = generator.throw
        self._resume_handler = self._resume
        monitor = env.monitor
        if monitor is not None:
            monitor.on_spawn(self)
        # Bootstrap: resume the generator on the next kernel step.
        env._call_soon(Process._bootstrap, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        Interrupting a finished process is a no-op, mirroring the
        at-most-once semantics of VM reclamation notices.  The check is
        repeated when the scheduled throw actually fires: the process may
        finish (or a second interrupt may land) between the call and the
        throw, and throwing into a finished generator would corrupt the
        kernel ("already triggered").
        """
        if self._triggered:
            return
        self._detach_from_wait()
        monitor = self.env.monitor
        if monitor is not None:
            monitor.on_interrupt(self)
        self.env._call_soon(self._fire_interrupt, cause,
                            priority=PRIORITY_URGENT)

    def _detach_from_wait(self) -> None:
        """Stop listening to whatever the process is waiting on."""
        target, self._waiting_on = self._waiting_on, None
        if target is None or not target.callbacks:
            return
        try:
            target.callbacks.remove(self._resume_handler)
        except ValueError:
            return
        # Only the party that actually removed the resume callback owns
        # the abandonment: the wait is now orphaned and the resource that
        # produced the event must reclaim the item/slot.
        target._notify_abandoned()

    def _fire_interrupt(self, cause: Any) -> None:
        if self._triggered:
            # Finished (or was torn down by an earlier interrupt) between
            # scheduling and firing: at-most-once delivery, drop it.
            return
        # A prior interrupt may have resumed the process onto a *new*
        # wait; detach from that one too before throwing.
        self._detach_from_wait()
        self.env._interrupts_thrown += 1
        self._step(throw=Interrupt(cause))

    def _bootstrap(self) -> None:
        if not self._triggered:
            self._step(send=None)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        if self._waiting_on is not event:
            # Stale delivery: waiting on an already-processed event is
            # delivered via _call_soon, which an interrupt cannot unhook
            # from the heap.  The interrupt moved the process on; drop it.
            return
        self._waiting_on = None
        monitor = self.env.monitor
        if monitor is not None:
            monitor.on_resume(self, event)
        # Inlined send path of _step: _resume is the single hottest
        # callback in the kernel (once per yield of every running
        # process), so the extra frame is worth eliding.  Semantics are
        # identical -- the kernel tests cover both entry points.
        if event._ok:
            try:
                target = self._send(event._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001
                self._handle_failure(exc)
                return
            # Inlined Event._add_callback; the attribute fetch doubles as
            # the "is this an Event" check (replacing an isinstance() per
            # yield), and the common pending-no-waiters case costs a
            # single list allocation instead of a method call.
            handler = self._resume_handler
            try:
                if target._processed:
                    # Already processed: deliver on the next kernel step
                    # so resume ordering stays deterministic.
                    self.env._call_soon(handler, target)
                elif target.callbacks is None:
                    target.callbacks = [handler]
                else:
                    target.callbacks.append(handler)
            except AttributeError:
                raise SimulationError(
                    f"process {self.name!r} yielded {target!r}, "
                    f"expected an Event") from None
            self._waiting_on = target
        else:
            self._step(throw=event._value)

    def _handle_failure(self, exc: BaseException) -> None:
        # Always route the failure through fail() so the process event
        # triggers and `is_alive` flips -- raising from inside
        # Environment.step() would leave a permanently-alive zombie
        # whose joiners hang forever.  With no joiner registered yet
        # the failure is handed to the environment's
        # `on_process_failure` hook; without a hook it still
        # re-raises (after the state flip) so errors stay loud.
        had_joiners = bool(self.callbacks)
        self.fail(exc)
        self.env._process_failures += 1
        if not had_joiners:
            hook = self.env.on_process_failure
            if hook is not None:
                hook(self, exc)
            else:
                raise exc

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        monitor = self.env.monitor
        if monitor is not None:
            monitor.on_step(self)
        try:
            if throw is not None:
                target = self._throw(throw)
            else:
                target = self._send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to joiners
            self._handle_failure(exc)
            return
        # Inlined Event._add_callback (see _resume for rationale); the
        # attribute fetch doubles as the "is this an Event" check.
        handler = self._resume_handler
        try:
            if target._processed:
                self.env._call_soon(handler, target)
            elif target.callbacks is None:
                target.callbacks = [handler]
            else:
                target.callbacks.append(handler)
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, "
                f"expected an Event") from None
        self._waiting_on = target

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'done' if self._triggered else 'alive'}>"


class AllOf(Event):
    """Fires when every child event has fired; fails fast on first failure."""

    __slots__ = ("_pending", "_values")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        events = list(events)
        self._pending = len(events)
        self._values: list[Any] = [None] * len(events)
        if not events:
            self.succeed([])
            return
        for i, event in enumerate(events):
            event._add_callback(lambda ev, i=i: self._child_done(ev, i))

    def _child_done(self, event: Event, index: int) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._values[index] = event.value
        self._pending -= 1
        if self._pending == 0:
            self.succeed(list(self._values))


class AnyOf(Event):
    """Fires with (index, value) of the first child event to fire."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for i, event in enumerate(events):
            event._add_callback(lambda ev, i=i: self._child_done(ev, i))

    def _child_done(self, event: Event, index: int) -> None:
        if self._triggered:
            return
        if event.ok:
            self.succeed((index, event.value))
        else:
            self.fail(event.value)


class Environment:
    """Owns simulated time and the event list."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Any]] = []
        self._sequence = 0
        #: Called as ``hook(process, exc)`` when a process raises with no
        #: joiner registered to receive the failure.  When set, the hook
        #: owns the exception (the kernel stays running); when None, the
        #: exception re-raises out of :meth:`step` -- but only after the
        #: process event has been failed, so the kernel stays consistent.
        self.on_process_failure: Optional[
            Callable[["Process", BaseException], None]] = None
        #: Metrics registry attach point (see :mod:`repro.obs`); ``None``
        #: means instrumented components skip all bookkeeping.
        self.metrics: Any = None
        #: Kernel monitor (see :mod:`repro.analysis.hb`): receives
        #: spawn/resume/trigger/interrupt hooks when set.  Inherits the
        #: process-wide default so the replay sanitizer can observe
        #: workloads that construct their own Environments.
        self.monitor: Any = _default_monitor
        # Event-loop statistics (cheap ints, always on).
        self._steps = 0
        self._events_processed = 0
        self._immediate_calls = 0
        self._process_failures = 0
        self._interrupts_thrown = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def event_loop_stats(self) -> dict:
        """Counters describing the kernel's own work so far."""
        return {
            "steps": self._steps,
            "events": self._events_processed,
            "immediate_calls": self._immediate_calls,
            "process_failures": self._process_failures,
            "interrupts_thrown": self._interrupts_thrown,
            "pending": len(self._heap),
        }

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    #
    # Heap entries are ``(when, priority, sequence, fn, arg)``: the
    # handler is pre-bound at scheduling time so the dispatch loop calls
    # ``fn(arg)`` without type inspection.  ``sequence`` is unique, so
    # comparisons never reach the trailing elements.  Events carry
    # ``(Event._run_callbacks, event)`` -- that function's identity is
    # what distinguishes an event from an immediate call in the loop
    # statistics -- and immediate calls carry ``(fn, arg)``; the
    # single-argument convention is what lets waiter delivery and process
    # bootstrap schedule plain bound/class methods instead of allocating
    # a closure per call.

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        # Delay is validated by the callers that can produce a negative
        # one (Timeout.__init__); succeed()/fail() always pass 0.0.
        self._sequence += 1
        heappush(self._heap, (self._now + delay, priority, self._sequence,
                              _EVENT_DISPATCH, event))

    def _call_soon(self, fn: Callable[[Any], None], arg: Any,
                   priority: int = PRIORITY_NORMAL) -> None:
        self._sequence += 1
        heappush(self._heap,
                 (self._now, priority, self._sequence, fn, arg))

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Process the next entry on the event list."""
        if not self._heap:
            raise SimulationError("step() on an empty event list")
        when, _priority, _seq, fn, arg = heappop(self._heap)
        self._now = when
        self._steps += 1
        if fn is _EVENT_DISPATCH:
            self._events_processed += 1
        else:
            self._immediate_calls += 1
        fn(arg)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event list drains or simulated time reaches ``until``.

        ``until`` is an absolute timestamp; when reached, ``now`` is set to
        exactly ``until`` so callers can resume cleanly.

        The dispatch loop inlines :meth:`step` (same semantics, verified
        by the kernel tests): this is 75% of a measurement run, and the
        per-entry method call, bound-counter updates, and re-checked
        ``until`` guard are measurable at tens of thousands of steps per
        simulated second.  Loop statistics accumulate in locals and are
        flushed even when a handler raises.
        """
        heap = self._heap
        dispatch = _EVENT_DISPATCH
        steps = events = 0
        try:
            if until is None:
                while heap:
                    when, _priority, _seq, fn, arg = heappop(heap)
                    self._now = when
                    steps += 1
                    if fn is dispatch:
                        # Inlined Event._run_callbacks (the overwhelmingly
                        # common entry kind): one fewer frame per event.
                        events += 1
                        arg._processed = True
                        callbacks = arg.callbacks
                        if callbacks is not None:
                            arg.callbacks = None
                            for callback in callbacks:
                                callback(arg)
                    else:
                        fn(arg)
                return
            if until < self._now:
                raise SimulationError(
                    f"run(until={until}) is in the past (now={self._now})")
            while heap and heap[0][0] <= until:
                when, _priority, _seq, fn, arg = heappop(heap)
                self._now = when
                steps += 1
                if fn is dispatch:
                    events += 1
                    arg._processed = True
                    callbacks = arg.callbacks
                    if callbacks is not None:
                        arg.callbacks = None
                        for callback in callbacks:
                            callback(arg)
                else:
                    fn(arg)
            self._now = until
        finally:
            self._steps += steps
            self._events_processed += events
            self._immediate_calls += steps - events

    def run_process(self, generator: Generator[Event, Any, Any],
                    name: str = "") -> Any:
        """Convenience: run a single process to completion, return its value."""
        proc = self.process(generator, name=name)
        # Keep a callback registered so failures are captured, not raised
        # from the middle of the event loop.
        proc._add_callback(lambda ev: None)
        while self._heap and not proc.processed:
            self.step()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} starved: event list drained while waiting")
        if not proc.ok:
            raise proc.value
        return proc.value
