"""The discrete-event simulation kernel.

The kernel follows the classic event-list design: an
:class:`Environment` owns a queue of scheduled events, and
:class:`Process` objects are Python generators that advance by yielding
events.  When a yielded event fires, the process resumes with the event's
value (or the event's exception is thrown into it).

Two interchangeable schedulers implement the event list (selected per
Environment, or process-wide via :func:`set_default_scheduler`):

* ``"calendar"`` (default) -- a calendar/bucket queue tuned for the
  clustered timestamps the fabric model produces.  Work due *now* lives
  in plain FIFO deques (O(1) append/pop), the imminent horizon is a
  small binary heap, and everything beyond it is hashed into
  fixed-width time buckets that are promoted one at a time.  Bucket
  width auto-calibrates from the observed timeout delays, and an
  overflow list catches entries beyond the bucket window.
* ``"heap"`` -- the original single binary heap, kept as the A/B
  reference implementation for ``python -m repro kernelbench
  --scheduler`` and the cross-scheduler replay gate.

Scheduler choice is **not observable** in event ordering: both dispatch
in exactly the same ``(when, priority, insertion-order)`` total order,
which the scheduler-equivalence suite and ``repro sanitize`` verify
trace-for-trace.

The feature set is intentionally small -- timeouts, one-shot events,
processes, and interrupts -- because that is exactly what the higher
layers (RDMA fabric, cache engine, cluster allocator) need.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

try:
    from sys import getrefcount as _refcount
except ImportError:  # pragma: no cover - non-CPython: disable interning
    def _refcount(obj: Any) -> int:
        return -1  # never matches a recycle threshold

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "set_default_monitor",
    "set_default_scheduler",
]

#: Monitor installed on every Environment created while set (see
#: :func:`set_default_monitor`).  ``None`` keeps the kernel hook-free.
_default_monitor: Optional[Any] = None

#: Scheduler used by Environments that do not pass one explicitly.
_default_scheduler: str = "calendar"

#: Width of the far-bucket window: entries more than this many buckets
#: past the window base land on the overflow list until re-bucketed.
_CALENDAR_BUCKETS = 8192

#: Per-class cap on the Event/Timeout/Process freelists.
_FREELIST_MAX = 512


def set_default_monitor(monitor: Optional[Any]) -> Optional[Any]:
    """Install ``monitor`` on all subsequently-created Environments.

    The replay sanitizer (:mod:`repro.analysis.sanitize`) uses this to
    observe workloads that build their own Environments internally.
    Returns the previous default so callers can restore it.  A monitor
    implements the :class:`repro.analysis.hb.KernelMonitor` protocol;
    every hook call is guarded by a ``None`` check, so unmonitored runs
    pay one attribute load per hook site.
    """
    global _default_monitor
    previous = _default_monitor
    _default_monitor = monitor
    return previous


def set_default_scheduler(scheduler: Optional[str]) -> str:
    """Select the event-list implementation for new Environments.

    ``"calendar"`` (the default) or ``"heap"``; ``None`` restores
    ``"calendar"``.  Returns the previous default so callers can
    restore it (the kernelbench A/B flag and the cross-scheduler
    sanitize gate both wrap runs this way).  Existing Environments are
    unaffected.
    """
    global _default_scheduler
    if scheduler is None:
        scheduler = "calendar"
    if scheduler not in ("calendar", "heap"):
        raise SimulationError(
            f"unknown scheduler {scheduler!r}; expected 'calendar' or 'heap'")
    previous = _default_scheduler
    _default_scheduler = scheduler
    return previous


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupting party supplies ``cause``, which the interrupted
    process can inspect to decide how to react (the migration and
    reclamation code paths use this to distinguish "VM reclaimed" from
    "cache deleted").
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle priorities.  Lower value fires first at equal timestamps.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait on.

    An event moves through three states: *pending* (created), *triggered*
    (scheduled on the event list with a value or an exception), and
    *processed* (callbacks ran).  Waiting on an already-processed event
    resumes the waiter immediately on the next kernel step.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered",
                 "_processed", "on_abandon", "_hb")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Lazily allocated on the first waiter; ``None`` both before any
        #: waiter registers and after processing (``_processed`` is the
        #: authoritative lifecycle flag).  Skipping the per-event list
        #: allocation matters: the measurement loop creates one event per
        #: simulated operation.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._processed = False
        #: Called (once) when the sole waiting process abandons this wait
        #: -- e.g. it was interrupted.  Resource containers use it to pull
        #: the orphaned waiter out of their queues so items and slots are
        #: not handed to a process that will never consume them.
        self.on_abandon: Optional[Callable[["Event"], None]] = None
        #: Happens-before stamp (the triggering process's vector clock),
        #: written by an attached kernel monitor; ``None`` when unmonitored.
        self._hb: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """True if the event succeeded, False if it failed, None if pending."""
        return self._ok

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        # Inlined Environment scheduling: succeed() fires once per
        # simulated operation, and the delay is always zero -- in
        # calendar mode that is a plain deque append.
        env = self.env
        if env._use_heap:
            env._sequence += 1
            heappush(env._heap, (env._now, priority, env._sequence,
                                 _EVENT_DISPATCH, self))
        elif priority:
            env._immediate.append((_EVENT_DISPATCH, self))
        else:
            env._urgent.append((_EVENT_DISPATCH, self))
        monitor = env.monitor
        if monitor is not None:
            monitor.on_trigger(self)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception is thrown into every waiting process.
        """
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.env._enqueue(self, delay=0.0, priority=priority)
        monitor = self.env.monitor
        if monitor is not None:
            monitor.on_trigger(self)
        return self

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._processed:
            # Already processed: deliver on the next kernel step so that
            # resume ordering stays deterministic.
            self.env._call_soon(callback, self)
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)  # repro-lint: disable=L002 -- this IS the registration primitive; detach duty lies with callers (combinators keep handles)

    def _notify_abandoned(self) -> None:
        """Tell the event's producer that its waiter walked away."""
        hook, self.on_abandon = self.on_abandon, None
        if hook is not None:
            hook(self)

    def __repr__(self) -> str:
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


#: The pre-bound handler every event entry carries on the event list; its
#: identity tells the dispatch loop "this entry is an event" without an
#: isinstance() per step.
_EVENT_DISPATCH = Event._run_callbacks


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        self.env = env
        _arm_timeout(self, env, delay, value)


def _arm_timeout(timeout: Timeout, env: "Environment", delay: float,
                 value: Any) -> None:
    """(Re)initialize ``timeout`` in its triggered state and schedule it.

    Shared between :class:`Timeout` construction and the freelist reuse
    path in :meth:`Environment.timeout`.  The delay is validated here,
    once -- ``_enqueue`` trusts its (kernel-internal) callers -- and the
    Event fields are written directly in their final triggered state
    instead of calling ``Event.__init__`` and overwriting half of what
    it set.  Timeouts *are* triggers (they are born with their value),
    so an attached monitor receives ``on_trigger`` here exactly as it
    does from ``succeed()``/``fail()`` -- this is what gives the
    RaceDetector its trigger->resume happens-before edge on every
    timeout-driven resume.
    """
    if delay < 0:
        raise SimulationError(f"negative timeout delay: {delay}")
    timeout.callbacks = None
    timeout._value = value
    timeout._ok = True
    timeout._triggered = True
    timeout._processed = False
    timeout.on_abandon = None
    timeout._hb = None
    timeout.delay = delay
    if env._use_heap:
        env._sequence += 1
        heappush(env._heap, (env._now + delay, PRIORITY_NORMAL,
                             env._sequence, _EVENT_DISPATCH, timeout))
    else:
        now = env._now
        when = now + delay
        if when == now:
            # Zero delay (or one too small to move the float clock):
            # due at the current instant, FIFO behind earlier arrivals.
            env._immediate.append((_EVENT_DISPATCH, timeout))
        else:
            env._sequence += 1
            entry = (when, PRIORITY_NORMAL, env._sequence,
                     _EVENT_DISPATCH, timeout)
            if when < env._horizon:
                heappush(env._near, entry)
            else:
                env._far_insert(entry)
            # Track the running mean delay; it sets (and, via the decay,
            # tracks drift in) the calendar bucket width.
            count = env._delay_count + 1
            env._delay_count = count
            env._delay_sum += delay
            if env._width == 0.0:
                if count >= 128:
                    env._calibrate()
            elif count >= 8192:
                env._delay_sum *= 0.5
                env._delay_count = 4096
    monitor = env.monitor
    if monitor is not None:
        monitor.on_trigger(timeout)


class Process(Event):
    """A generator-driven simulation process.

    The process itself is an event that fires when the generator returns
    (its value is the generator's return value) or raises.  This makes
    processes joinable: ``yield other_process`` waits for completion.
    """

    __slots__ = ("_generator", "_waiting_on", "name", "_send", "_throw",
                 "_resume_handler")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Pre-bound handler slots: ``_step`` runs once per yield, so the
        # send/throw/resume bound methods are built a single time here
        # instead of being re-created (and garbage-collected) per step.
        self._send = generator.send
        self._throw = generator.throw
        self._resume_handler = self._resume
        monitor = env.monitor
        if monitor is not None:
            monitor.on_spawn(self)
        # Bootstrap: resume the generator on the next kernel step.
        env._call_soon(Process._bootstrap, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        Interrupting a finished process is a no-op, mirroring the
        at-most-once semantics of VM reclamation notices.  The check is
        repeated when the scheduled throw actually fires: the process may
        finish (or a second interrupt may land) between the call and the
        throw, and throwing into a finished generator would corrupt the
        kernel ("already triggered").
        """
        if self._triggered:
            return
        self._detach_from_wait()
        monitor = self.env.monitor
        if monitor is not None:
            monitor.on_interrupt(self)
        self.env._call_soon(self._fire_interrupt, cause,
                            priority=PRIORITY_URGENT)

    def _detach_from_wait(self) -> None:
        """Stop listening to whatever the process is waiting on."""
        target, self._waiting_on = self._waiting_on, None
        if target is None or not target.callbacks:
            return
        try:
            target.callbacks.remove(self._resume_handler)
        except ValueError:
            return
        # Only the party that actually removed the resume callback owns
        # the abandonment: the wait is now orphaned and the resource that
        # produced the event must reclaim the item/slot.
        target._notify_abandoned()

    def _fire_interrupt(self, cause: Any) -> None:
        if self._triggered:
            # Finished (or was torn down by an earlier interrupt) between
            # scheduling and firing: at-most-once delivery, drop it.
            return
        # A prior interrupt may have resumed the process onto a *new*
        # wait; detach from that one too before throwing.
        self._detach_from_wait()
        self.env._interrupts_thrown += 1
        self._step(throw=Interrupt(cause))

    def _bootstrap(self) -> None:
        if not self._triggered:
            self._step(send=None)

    def _resume(self, event: Event) -> None:
        if self._waiting_on is not event:
            # Stale delivery: waiting on an already-processed event is
            # delivered via _call_soon, which an interrupt cannot unhook
            # from the event list -- or the process finished/was
            # interrupted (then _waiting_on is None).  Either way the
            # event did not resume this process; drop it.
            return
        self._waiting_on = None
        monitor = self.env.monitor
        if monitor is not None:
            monitor.on_resume(self, event)
        # Inlined send path of _step: _resume is the single hottest
        # callback in the kernel (once per yield of every running
        # process), so the extra frame is worth eliding.  Semantics are
        # identical -- the kernel tests cover both entry points.
        if event._ok:
            try:
                target = self._send(event._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001
                self._handle_failure(exc)
                return
            # Inlined Event._add_callback; the attribute fetch doubles as
            # the "is this an Event" check (replacing an isinstance() per
            # yield), and the common pending-no-waiters case costs a
            # single list allocation instead of a method call.
            handler = self._resume_handler
            try:
                if target._processed:
                    # Already processed: deliver on the next kernel step
                    # so resume ordering stays deterministic.
                    self.env._call_soon(handler, target)
                elif target.callbacks is None:
                    target.callbacks = [handler]
                else:
                    target.callbacks.append(handler)
            except AttributeError:
                raise SimulationError(
                    f"process {self.name!r} yielded {target!r}, "
                    f"expected an Event") from None
            self._waiting_on = target
        else:
            self._step(throw=event._value)

    def _handle_failure(self, exc: BaseException) -> None:
        # Always route the failure through fail() so the process event
        # triggers and `is_alive` flips -- raising from inside
        # Environment.step() would leave a permanently-alive zombie
        # whose joiners hang forever.  With no joiner registered yet
        # the failure is handed to the environment's
        # `on_process_failure` hook; without a hook it still
        # re-raises (after the state flip) so errors stay loud.
        had_joiners = bool(self.callbacks)
        self.fail(exc)
        self.env._process_failures += 1
        if not had_joiners:
            hook = self.env.on_process_failure
            if hook is not None:
                hook(self, exc)
            else:
                raise exc

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        monitor = self.env.monitor
        if monitor is not None:
            monitor.on_step(self)
        try:
            if throw is not None:
                target = self._throw(throw)
            else:
                target = self._send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to joiners
            self._handle_failure(exc)
            return
        # Inlined Event._add_callback (see _resume for rationale); the
        # attribute fetch doubles as the "is this an Event" check.
        handler = self._resume_handler
        try:
            if target._processed:
                self.env._call_soon(handler, target)
            elif target.callbacks is None:
                target.callbacks = [handler]
            else:
                target.callbacks.append(handler)
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, "
                f"expected an Event") from None
        self._waiting_on = target

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'done' if self._triggered else 'alive'}>"


class _Combinator(Event):
    """Shared machinery for :class:`AllOf`/:class:`AnyOf`.

    Both watch a set of child events through per-child callbacks.  Once
    the combinator's outcome is decided (or its own waiter walks away),
    the callbacks registered on still-undecided children are *detached*
    and each such child gets :meth:`Event._notify_abandoned` -- exactly
    what :meth:`Process._detach_from_wait` does for a plain wait.
    Without the detach, hedged-read loops that race fresh timeouts
    against one long-lived event grow that event's callback list without
    bound, and resource slots granted to losing children leak.
    """

    __slots__ = ("_children", "_child_cbs")

    def _watch(self, events: list) -> None:
        self._children = events
        cbs = []
        append = cbs.append
        for i, event in enumerate(events):
            cb = (lambda ev, i=i: self._child_done(ev, i))
            append(cb)
            event._add_callback(cb)
        self._child_cbs = cbs

    def _child_done(self, event: Event, index: int) -> None:
        raise NotImplementedError

    def _detach_children(self, skip: int) -> None:
        """Unhook from every child except ``skip``; abandon orphaned waits.

        A child whose callbacks were already consumed (it processed) is
        left alone -- its late ``_child_done`` delivery is dropped by the
        ``_triggered`` guard.  A child that is pending, or triggered but
        not yet processed (it fired in the same instant the combinator
        was decided), still carries our callback: remove it and tell the
        child's producer, so a Store item or Resource slot handed to the
        losing wait is reclaimed instead of leaking.
        """
        children, self._children = self._children, None
        if not children:
            self._child_cbs = None
            return
        cbs, self._child_cbs = self._child_cbs, None
        for i, child in enumerate(children):
            if i == skip:
                continue
            callbacks = child.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(cbs[i])
                except ValueError:
                    continue
                child._notify_abandoned()

    def _notify_abandoned(self) -> None:
        # The combinator's own waiter walked away (it was interrupted):
        # propagate the abandonment to every remaining child before
        # running our own hook.
        self._detach_children(-1)
        hook, self.on_abandon = self.on_abandon, None
        if hook is not None:
            hook(self)


class AllOf(_Combinator):
    """Fires when every child event has fired; fails fast on first failure."""

    __slots__ = ("_pending", "_values")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        events = list(events)
        self._children = None
        self._child_cbs = None
        self._pending = len(events)
        self._values: list[Any] = [None] * len(events)
        if not events:
            self.succeed([])
            return
        self._watch(events)

    def _child_done(self, event: Event, index: int) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            self._detach_children(index)
            return
        self._values[index] = event._value
        self._pending -= 1
        if self._pending == 0:
            # Every child fired: nothing left to detach, just drop refs.
            self._children = None
            self._child_cbs = None
            self.succeed(list(self._values))


class AnyOf(_Combinator):
    """Fires with (index, value) of the first child event to fire."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        events = list(events)
        self._children = None
        self._child_cbs = None
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        self._watch(events)

    def _child_done(self, event: Event, index: int) -> None:
        if self._triggered:
            return
        if event._ok:
            self.succeed((index, event._value))
        else:
            self.fail(event._value)
        self._detach_children(index)


class Environment:
    """Owns simulated time and the event list."""

    def __init__(self, initial_time: float = 0.0,
                 scheduler: Optional[str] = None):
        self._now = float(initial_time)
        if scheduler is None:
            scheduler = _default_scheduler
        if scheduler not in ("calendar", "heap"):
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; "
                f"expected 'calendar' or 'heap'")
        #: Which event-list implementation this Environment runs on
        #: (``"calendar"`` or ``"heap"``); fixed at construction.
        self.scheduler = scheduler
        self._use_heap = scheduler == "heap"
        # -- heap scheduler state --
        self._heap: list[tuple] = []
        # -- calendar scheduler state --
        # Work due at the current instant: plain FIFO deques (appends
        # at `now` happen in sequence order, so FIFO *is* seq order).
        self._urgent: deque = deque()     # PRIORITY_URGENT at `now`
        self._immediate: deque = deque()  # PRIORITY_NORMAL at `now`
        # The imminent window [now, horizon): a small binary heap.
        self._near: list[tuple] = []
        # Beyond the horizon: fixed-width buckets keyed by
        # int(when / width); `_far_keys` is a min-heap over the live
        # bucket keys (each key pushed exactly once, at bucket creation).
        self._far: dict[int, list[tuple]] = {}
        self._far_keys: list[int] = []
        # Entries past the bucket window wait here until a re-bucket.
        self._overflow: list[tuple] = []
        self._width = 0.0          # 0.0 = not yet calibrated
        self._inv_width = 0.0
        self._horizon = float("inf")
        self._limit_key = 0
        self._delay_sum = 0.0
        self._delay_count = 0
        # -- interned-struct freelists (fed by the calendar run loop) --
        self._event_free: list[Event] = []
        self._timeout_free: list[Timeout] = []
        self._process_free: list[Process] = []
        self._sequence = 0
        #: Called as ``hook(process, exc)`` when a process raises with no
        #: joiner registered to receive the failure.  When set, the hook
        #: owns the exception (the kernel stays running); when None, the
        #: exception re-raises out of :meth:`step` -- but only after the
        #: process event has been failed, so the kernel stays consistent.
        self.on_process_failure: Optional[
            Callable[["Process", BaseException], None]] = None
        #: Metrics registry attach point (see :mod:`repro.obs`); ``None``
        #: means instrumented components skip all bookkeeping.
        self.metrics: Any = None
        #: Kernel monitor (see :mod:`repro.analysis.hb`): receives
        #: spawn/resume/trigger/interrupt hooks when set.  Inherits the
        #: process-wide default so the replay sanitizer can observe
        #: workloads that construct their own Environments.
        self.monitor: Any = _default_monitor
        # Event-loop statistics (cheap ints, always on).
        self._steps = 0
        self._events_processed = 0
        self._immediate_calls = 0
        self._process_failures = 0
        self._interrupts_thrown = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def event_loop_stats(self) -> dict:
        """Counters describing the kernel's own work so far."""
        return {
            "steps": self._steps,
            "events": self._events_processed,
            "immediate_calls": self._immediate_calls,
            "process_failures": self._process_failures,
            "interrupts_thrown": self._interrupts_thrown,
            "pending": self._pending_count(),
        }

    def _pending_count(self) -> int:
        if self._use_heap:
            return len(self._heap)
        return (len(self._urgent) + len(self._immediate) + len(self._near)
                + sum(map(len, self._far.values())) + len(self._overflow))

    def _has_pending(self) -> bool:
        if self._use_heap:
            return bool(self._heap)
        return bool(self._urgent or self._immediate or self._near
                    or self._far or self._overflow)

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        free = self._event_free
        if free:
            # Freelist reuse: the run loop only recycles an event once
            # its callbacks have run and nothing else references it, so
            # re-initializing the slots here is indistinguishable from a
            # fresh allocation (identity is never used for ordering).
            event = free.pop()
            event.callbacks = None
            event._value = None
            event._ok = None
            event._triggered = False
            event._processed = False
            event.on_abandon = None
            event._hb = None
            return event
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        # Inlined _arm_timeout: this factory runs once per simulated
        # fabric/CPU hop -- the hottest allocation site in a measurement
        # run -- so the freelist pop, slot re-init, and scheduling all
        # happen in-frame.  Semantics are identical to Timeout(); the
        # kernel tests and the scheduler-equivalence suite pin both
        # entry points.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        free = self._timeout_free
        if free:
            timeout = free.pop()
        else:
            timeout = Timeout.__new__(Timeout)
            timeout.env = self
        timeout.callbacks = None
        timeout._value = value
        timeout._ok = True
        timeout._triggered = True
        timeout._processed = False
        timeout.on_abandon = None
        timeout._hb = None
        timeout.delay = delay
        if self._use_heap:
            self._sequence += 1
            heappush(self._heap, (self._now + delay, PRIORITY_NORMAL,
                                  self._sequence, _EVENT_DISPATCH, timeout))
        else:
            now = self._now
            when = now + delay
            if when == now:
                self._immediate.append((_EVENT_DISPATCH, timeout))
            else:
                seq = self._sequence + 1
                self._sequence = seq
                entry = (when, PRIORITY_NORMAL, seq, _EVENT_DISPATCH,
                         timeout)
                if when < self._horizon:
                    heappush(self._near, entry)
                else:
                    self._far_insert(entry)
                count = self._delay_count + 1
                self._delay_count = count
                self._delay_sum += delay
                if self._width == 0.0:
                    if count >= 128:
                        self._calibrate()
                elif count >= 8192:
                    self._delay_sum *= 0.5
                    self._delay_count = 4096
        monitor = self.monitor
        if monitor is not None:
            monitor.on_trigger(timeout)
        return timeout

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        free = self._process_free
        if free and hasattr(generator, "send"):
            proc = free.pop()
            proc.callbacks = None
            proc._value = None
            proc._ok = None
            proc._triggered = False
            proc._processed = False
            proc.on_abandon = None
            proc._hb = None
            proc._generator = generator
            proc._waiting_on = None
            proc.name = name or getattr(generator, "__name__", "process")
            proc._send = generator.send
            proc._throw = generator.throw
            # proc._resume_handler is still this object's bound _resume.
            monitor = self.monitor
            if monitor is not None:
                monitor.on_spawn(proc)
            self._call_soon(Process._bootstrap, proc)
            return proc
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    #
    # Timed entries are ``(when, priority, sequence, fn, arg)``: the
    # handler is pre-bound at scheduling time so the dispatch loop calls
    # ``fn(arg)`` without type inspection.  ``sequence`` is unique, so
    # comparisons never reach the trailing elements.  Events carry
    # ``(Event._run_callbacks, event)`` -- that function's identity is
    # what distinguishes an event from an immediate call in the loop
    # statistics -- and immediate calls carry ``(fn, arg)``; the
    # single-argument convention is what lets waiter delivery and process
    # bootstrap schedule plain bound/class methods instead of allocating
    # a closure per call.
    #
    # In calendar mode, entries due at the current instant skip the
    # sequence counter entirely and land on the FIFO deques: nothing
    # already queued for `now` can carry a larger timestamp, a lower
    # priority value lives on its own deque, and FIFO order *is*
    # insertion order -- so the (when, priority, sequence) total order
    # is preserved without a single comparison.  Only future entries
    # pay for a sequence number and a near-heap push or far-bucket
    # append.  The scheduler-equivalence suite pins this ordering
    # against the reference heap.

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        # Delay is validated by the callers that can produce a negative
        # one (_arm_timeout); succeed()/fail() always pass 0.0.
        if self._use_heap:
            self._sequence += 1
            heappush(self._heap, (self._now + delay, priority,
                                  self._sequence, _EVENT_DISPATCH, event))
            return
        when = self._now + delay
        if when == self._now:
            if priority:
                self._immediate.append((_EVENT_DISPATCH, event))
            else:
                self._urgent.append((_EVENT_DISPATCH, event))
            return
        self._sequence += 1
        entry = (when, priority, self._sequence, _EVENT_DISPATCH, event)
        if when < self._horizon:
            heappush(self._near, entry)
        else:
            self._far_insert(entry)

    def _call_soon(self, fn: Callable[[Any], None], arg: Any,
                   priority: int = PRIORITY_NORMAL) -> None:
        if self._use_heap:
            self._sequence += 1
            heappush(self._heap,
                     (self._now, priority, self._sequence, fn, arg))
        elif priority:
            self._immediate.append((fn, arg))
        else:
            self._urgent.append((fn, arg))

    # -- calendar-queue internals ------------------------------------------

    def _far_insert(self, entry: tuple) -> None:
        key = int(entry[0] * self._inv_width)
        if key >= self._limit_key:
            self._overflow.append(entry)
            return
        bucket = self._far.get(key)
        if bucket is None:
            self._far[key] = [entry]
            heappush(self._far_keys, key)
        else:
            bucket.append(entry)

    def _calibrate(self) -> None:
        """First-time bucket sizing from the observed mean delay.

        Runs once, after enough timeout delays have been sampled.  The
        far buckets are empty by construction here (the horizon was
        infinite), so only the near heap needs care: the horizon is
        placed past its maximum entry, keeping the invariant that near
        entries sort strictly below everything bucketed.
        """
        width = self._delay_sum / self._delay_count
        if width < 1e-12:
            width = 1e-12
        self._width = width
        inv = 1.0 / width
        self._inv_width = inv
        top = self._now
        near = self._near
        if near:
            top_near = max(entry[0] for entry in near)
            if top_near > top:
                top = top_near
        base = int(top * inv) + 1
        self._horizon = base * width
        self._limit_key = base + _CALENDAR_BUCKETS

    def _promote(self) -> bool:
        """Refill the (empty) near heap from the calendar.

        Pops the earliest far bucket into the near heap and advances the
        horizon to that bucket's end; every remaining bucketed entry is
        at or past the new horizon, so near stays the authoritative
        front of the timeline.  When the buckets are exhausted too, the
        overflow list is re-bucketed around its earliest entry (also
        refreshing the width from the delay statistics, which is safe
        exactly then: there are no bucketed entries left to remap).
        Returns False when there is no timed work left at all.
        """
        while True:
            keys = self._far_keys
            if keys:
                key = heappop(keys)
                bucket = self._far.pop(key)
                near = self._near
                near.extend(bucket)
                if len(near) > 1:
                    heapify(near)
                self._horizon = (key + 1.0) * self._width
                return True
            if not self._overflow:
                return False
            self._rebucket()

    def _rebucket(self) -> None:
        entries = self._overflow
        self._overflow = []
        if self._delay_count:
            width = self._delay_sum / self._delay_count
        else:  # pragma: no cover - overflow implies sampled delays
            width = self._width
        if width < 1e-12:
            width = 1e-12
        self._width = width
        inv = 1.0 / width
        self._inv_width = inv
        base = int(min(entry[0] for entry in entries) * inv)
        self._horizon = base * width
        self._limit_key = base + _CALENDAR_BUCKETS
        insert = self._far_insert
        for entry in entries:
            insert(entry)

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Process the next entry on the event list."""
        if self._use_heap:
            if not self._heap:
                raise SimulationError("step() on an empty event list")
            when, _priority, _seq, fn, arg = heappop(self._heap)
            self._now = when
        elif self._urgent:
            fn, arg = self._urgent.popleft()
        elif self._near and self._near[0][0] <= self._now:
            _when, _priority, _seq, fn, arg = heappop(self._near)
        elif self._immediate:
            fn, arg = self._immediate.popleft()
        else:
            if not self._near and not self._promote():
                raise SimulationError("step() on an empty event list")
            self._now = self._near[0][0]
            _when, _priority, _seq, fn, arg = heappop(self._near)
        self._steps += 1
        if fn is _EVENT_DISPATCH:
            self._events_processed += 1
        else:
            self._immediate_calls += 1
        fn(arg)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event list drains or simulated time reaches ``until``.

        ``until`` is an absolute timestamp; when reached, ``now`` is set to
        exactly ``until`` so callers can resume cleanly.

        The dispatch loops inline :meth:`step` (same semantics, verified
        by the kernel tests and the scheduler-equivalence suite): this
        is 75% of a measurement run, and the per-entry method call,
        bound-counter updates, and re-checked ``until`` guard are
        measurable at tens of thousands of steps per simulated second.
        Loop statistics accumulate in locals and are flushed even when a
        handler raises.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})")
        if self._use_heap:
            self._run_heap(until)
        else:
            self._run_calendar(until)

    def _run_calendar(self, until: Optional[float]) -> None:
        urgent = self._urgent
        immediate = self._immediate
        near = self._near  # alias stays valid: _promote mutates in place
        dispatch = _EVENT_DISPATCH
        event_free = self._event_free
        timeout_free = self._timeout_free
        process_free = self._process_free
        pop_urgent = urgent.popleft
        pop_immediate = immediate.popleft
        # Hot-loop locals for what would otherwise be per-event global
        # (class/function) or builtin lookups.
        pop_heap = heappop
        freelist_max = _FREELIST_MAX
        refcount = _refcount
        timeout_cls = Timeout
        event_cls = Event
        process_cls = Process
        now = self._now
        steps = events = 0
        try:
            while True:
                # Drain everything due at the current instant.  Order:
                # urgent deque first (urgent entries only ever arise at
                # the current instant, and priority outranks sequence),
                # then near-heap entries that have come due (scheduled
                # for this instant *before* the clock reached it, so
                # their sequence numbers are smaller than anything a
                # callback appends to the deques now), then the normal
                # deque.  Same-timestamp events batch through here
                # without touching a heap.
                #
                # Phase A: near entries that have come due, with urgent
                # preemption.  Once the near heap holds nothing <= now
                # it cannot regain it this instant -- entries scheduled
                # *at* `now` go to the deques, never to near -- so
                # phase B drains the deques without re-checking it.
                while near and near[0][0] <= now:
                    if urgent:
                        fn, arg = pop_urgent()
                    else:
                        _when, _priority, _seq, fn, arg = pop_heap(near)
                    steps += 1
                    if fn is dispatch:
                        # Inlined Event._run_callbacks (the overwhelmingly
                        # common entry kind): one fewer frame per event.
                        events += 1
                        arg._processed = True
                        callbacks = arg.callbacks
                        if callbacks is not None:
                            arg.callbacks = None
                            for callback in callbacks:
                                callback(arg)
                        # Intern the spent struct for reuse -- but only
                        # when provably unreferenced: `arg` plus
                        # getrefcount's own parameter is 2 (a Process
                        # also self-references via its pre-bound resume
                        # handler slot).  Identity reuse is invisible to
                        # ordering (entries never compare by object), so
                        # recycling cannot perturb the schedule.
                        cls = arg.__class__
                        if cls is timeout_cls:
                            if (refcount(arg) == 2
                                    and len(timeout_free) < freelist_max):
                                timeout_free.append(arg)
                        elif cls is event_cls:
                            if (refcount(arg) == 2
                                    and len(event_free) < freelist_max):
                                event_free.append(arg)
                        elif cls is process_cls:
                            if (refcount(arg) == 3
                                    and len(process_free) < freelist_max):
                                process_free.append(arg)
                    else:
                        fn(arg)
                # Phase B: deque-only drain (dispatch block duplicated
                # from phase A -- the two-deque check is the whole point
                # of the split, so no shared helper frame).
                while True:
                    if urgent:
                        fn, arg = pop_urgent()
                    elif immediate:
                        fn, arg = pop_immediate()
                    else:
                        break
                    steps += 1
                    if fn is dispatch:
                        events += 1
                        arg._processed = True
                        callbacks = arg.callbacks
                        if callbacks is not None:
                            arg.callbacks = None
                            for callback in callbacks:
                                callback(arg)
                        cls = arg.__class__
                        if cls is timeout_cls:
                            if (refcount(arg) == 2
                                    and len(timeout_free) < freelist_max):
                                timeout_free.append(arg)
                        elif cls is event_cls:
                            if (refcount(arg) == 2
                                    and len(event_free) < freelist_max):
                                event_free.append(arg)
                        elif cls is process_cls:
                            if (refcount(arg) == 3
                                    and len(process_free) < freelist_max):
                                process_free.append(arg)
                    else:
                        fn(arg)
                # Advance simulated time to the next scheduled entry.
                if not near and not self._promote():
                    if until is not None:
                        self._now = until
                    return
                when = near[0][0]
                if until is not None and when > until:
                    self._now = until
                    return
                now = when
                self._now = when
        finally:
            self._steps += steps
            self._events_processed += events
            self._immediate_calls += steps - events

    def _run_heap(self, until: Optional[float]) -> None:
        # The original single-heap dispatch loop, kept verbatim as the
        # A/B reference scheduler.
        heap = self._heap
        dispatch = _EVENT_DISPATCH
        steps = events = 0
        try:
            if until is None:
                while heap:
                    when, _priority, _seq, fn, arg = heappop(heap)
                    self._now = when
                    steps += 1
                    if fn is dispatch:
                        events += 1
                        arg._processed = True
                        callbacks = arg.callbacks
                        if callbacks is not None:
                            arg.callbacks = None
                            for callback in callbacks:
                                callback(arg)
                    else:
                        fn(arg)
                return
            while heap and heap[0][0] <= until:
                when, _priority, _seq, fn, arg = heappop(heap)
                self._now = when
                steps += 1
                if fn is dispatch:
                    events += 1
                    arg._processed = True
                    callbacks = arg.callbacks
                    if callbacks is not None:
                        arg.callbacks = None
                        for callback in callbacks:
                            callback(arg)
                else:
                    fn(arg)
            self._now = until
        finally:
            self._steps += steps
            self._events_processed += events
            self._immediate_calls += steps - events

    def run_process(self, generator: Generator[Event, Any, Any],
                    name: str = "") -> Any:
        """Convenience: run a single process to completion, return its value."""
        proc = self.process(generator, name=name)
        # Keep a callback registered so failures are captured, not raised
        # from the middle of the event loop.
        proc._add_callback(lambda ev: None)
        while not proc.processed and self._has_pending():
            self.step()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} starved: event list drained while waiting")
        if not proc.ok:
            raise proc.value
        return proc.value
