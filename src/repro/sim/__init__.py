"""Discrete-event simulation kernel.

This package is the lowest-level substrate of the reproduction: a compact,
deterministic discrete-event simulator in the style of SimPy, specialized
for the needs of the Redy reproduction (microsecond-scale network protocol
simulation, resource contention, and interruptible processes for failure
and reclamation experiments).

Time is modelled as a ``float`` number of *seconds*.  Helper constants
(:data:`US`, :data:`MS`, :data:`S`) make intent explicit at call sites::

    yield env.timeout(4.1 * US)

Determinism: events scheduled for the same instant fire in (priority,
insertion-order), so a simulation with a fixed RNG seed replays exactly.
"""

from repro.sim.clock import MINUTE, MS, NS, S, US
from repro.sim.kernel import (
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    set_default_scheduler,
)
from repro.sim.resources import Resource, Store
from repro.sim.rng import RngRegistry

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "MINUTE",
    "MS",
    "NS",
    "Process",
    "Resource",
    "RngRegistry",
    "S",
    "SimulationError",
    "Store",
    "Timeout",
    "US",
    "set_default_scheduler",
]
