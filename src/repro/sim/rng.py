"""Per-component random-number streams.

Every stochastic component (trace generator, SSD tail model, measurement
noise, workload key-choosers) draws from its own named stream so that
adding randomness to one component never perturbs another.  Streams are
derived from a single root seed with ``numpy``'s SeedSequence spawning,
which guarantees independence.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of named, reproducible ``numpy`` generators.

    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("ssd")
    >>> b = rngs.stream("ssd")     # same name -> same stream object
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            # Derive a child seed from (root, name) deterministically:
            # hash the name into entropy so stream identity is stable
            # regardless of creation order.
            name_entropy = [ord(ch) for ch in name]
            child = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=tuple(name_entropy))
            self._streams[name] = np.random.Generator(np.random.PCG64(child))
        return self._streams[name]

    def fork(self, salt: int) -> "RngRegistry":
        """Return a registry with a seed derived from this one and ``salt``.

        Used by parameter sweeps to give each configuration its own
        independent randomness while staying reproducible.
        """
        return RngRegistry(seed=(self.seed * 1_000_003 + salt) % (2**63))
