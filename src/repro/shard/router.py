"""Sharded scale-out front-end over N member RedyCaches.

A single Redy cache tops out at the throughput of its backing VMs; the
scale-out tier aggregates N independent member caches behind one
read/write API.  The :class:`ShardRouter` splits the global address
space into fixed-size *slots*, maps each slot onto member shards
through the consistent-hash ring (:mod:`repro.shard.ring`), and fans
reads/writes to the owning members.

Design points (mirroring the single-cache machinery one level up):

* **Identity addressing.**  Every member provisions the full global
  address space; a slot lives at the same address on whichever shard
  owns it.  Rebalancing is then a plain read-from-source /
  write-to-target stream and members stay vanilla RedyCaches.
* **Replication.**  With ``replication=R`` each slot is owned by the R
  first distinct shards clockwise of its ring point.  Writes go to all
  live owners (ack when at least one lands); reads try the primary and
  fail over down the owner list.  R>=2 is what makes a hard VM kill
  survivable with zero lost acknowledged writes.
* **Backpressure.**  Per-shard in-flight accounting with a FIFO waiter
  queue bounds the queue depth any one member sees; callers queue at
  the router instead of overrunning a slow shard.
* **Hedged reads.**  Optionally, a read still unanswered after
  ``hedge_after_s`` issues a duplicate to the next replica (only if
  that replica has spare capacity) and takes the first answer --
  the classic tail-at-scale trick.
* **Hot keys.**  A sliding-window top-k detector
  (:mod:`repro.shard.hotkeys`) promotes hot slots to extra replicas and
  round-robins their reads, splitting zipfian hotspots across shards.

Everything is deterministic: routing is a pure function of the ring,
backpressure queues are FIFO, hedging and promotion decisions depend
only on sim time and the access stream.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.client import CacheIoResult, RedyCache
from repro.core.migration import MigrationPolicy
from repro.core.regions import AddressError
from repro.obs.metrics import registry_of
from repro.shard.hotkeys import HotKeyDetector, HotKeyPolicy
from repro.shard.rebalance import Rebalancer, RebalanceReport
from repro.shard.ring import HashRing, key_hash, plan_rebalance, range_contains
from repro.sim.kernel import Environment, Event

__all__ = ["ShardMember", "ShardRouter"]


class ShardMember:
    """One member cache plus the router's per-shard accounting."""

    __slots__ = ("name", "cache", "inflight", "waiters", "alive",
                 "departing", "reads", "writes", "inflight_gauge")

    def __init__(self, name: str, cache: RedyCache, metrics=None):
        self.name = name
        self.cache = cache
        #: Router-issued requests currently outstanding on this shard.
        self.inflight = 0
        #: Priority queue of processes waiting for an in-flight slot:
        #: ``(-priority, seq, event)`` heap entries, so a saturated shard
        #: grants slots highest-priority first and FIFO within a
        #: priority (the serving tier maps tenant weight to priority;
        #: everything else issues at the default 0).
        self.waiters: List[Tuple[int, int, Event]] = []
        self.alive = True
        #: True while this member is being drained off the ring.
        self.departing = False
        self.reads = self.writes = self.inflight_gauge = None
        if metrics is not None:
            self.reads = metrics.counter("shard.reads").labels(shard=name)
            self.writes = metrics.counter("shard.writes").labels(shard=name)
            self.inflight_gauge = (
                metrics.gauge("shard.inflight").labels(shard=name))


class ShardRouter:
    """Read/write front-end fanning across N member caches."""

    def __init__(self, env: Environment,
                 members: Mapping[str, RedyCache],
                 *,
                 slot_bytes: int = 1 << 16,
                 vnodes_per_shard: int = 64,
                 replication: int = 1,
                 max_inflight_per_shard: int = 32,
                 hedge_after_s: Optional[float] = None,
                 hotkeys: Optional[HotKeyPolicy] = None,
                 rebalance_policy: Optional[MigrationPolicy] = None,
                 control_plane=None):
        if not members:
            raise ValueError("router needs at least one member cache")
        if slot_bytes < 1:
            raise ValueError("slot_bytes must be >= 1")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if max_inflight_per_shard < 1:
            raise ValueError("max_inflight_per_shard must be >= 1")
        capacities = {cache.capacity for cache in members.values()}
        if len(capacities) != 1:
            raise ValueError("member caches must share one capacity "
                             f"(got {sorted(capacities)})")

        self.env = env
        self.capacity = capacities.pop()
        self.slot_bytes = slot_bytes
        self.n_slots = -(-self.capacity // slot_bytes)
        self.replication = replication
        self.max_inflight_per_shard = max_inflight_per_shard
        self.hedge_after_s = hedge_after_s
        self.hot_policy = hotkeys
        self.metrics = registry_of(env)

        self.ring = HashRing(sorted(members),
                             vnodes_per_shard=vnodes_per_shard)
        #: Precomputed slot -> ring point (the hot path never hashes).
        self._slot_points = [key_hash(slot) for slot in range(self.n_slots)]

        self._members: Dict[str, ShardMember] = {}
        for name in sorted(members):
            member = ShardMember(name, members[name], self.metrics)
            self._members[name] = member
            self._watch_member_vms(member)
        #: Members drained off the ring (kept for post-mortem counters).
        self.retired: Dict[str, ShardMember] = {}

        #: Routing overrides installed per completed move while a
        #: rebalance is in flight: (lo, hi, new_owners).
        self._overrides: List[Tuple[int, int, Tuple[str, ...]]] = []
        #: Write gates for ranges currently being streamed.
        self._gates: List[Tuple[int, int, Event]] = []
        #: Write gates for individual slots (hot-key promotion copies).
        self._slot_gates: Dict[int, Event] = {}

        self._detector = (HotKeyDetector(hotkeys)
                          if hotkeys is not None else None)
        #: Hot slot -> extra replica shard names (beyond the owners).
        self._hot: Dict[int, Tuple[str, ...]] = {}
        self._rr: Dict[int, int] = {}
        self._promoting: set = set()

        self.rebalancer = Rebalancer(self, policy=rebalance_policy)
        #: Completed rebalances, in order (the scale-out bench reads
        #: durations and byte counts off these).
        self.reports: List[RebalanceReport] = []
        #: Called (in registration order) with each completed
        #: RebalanceReport, after the ring has flipped.  Consumers that
        #: layer durability on the router (the tenant tier) use this to
        #: learn about lost slots the data path cannot observe: with
        #: replication=1 an emergency departure can swap the ring with
        #: nothing to stream, so reads over lost ranges silently
        #: succeed against stale survivor bytes.
        self.on_rebalance: List[Callable[[RebalanceReport], None]] = []
        #: Optional RDMA connection control plane
        #: (:class:`repro.cplane.ControlPlane`).  Binding it here makes
        #: membership changes reclaim pooled QPs to departed members,
        #: so a connection storm landing mid-rebalance cannot strand
        #: sessions against a corpse.
        self.control_plane = control_plane
        if control_plane is not None:
            control_plane.bind_router(self)
        #: Tail of the serialized membership-change chain.
        self._membership_tail: Optional[Event] = None

        #: Tie-break sequence for the per-shard priority waiter queues.
        self._waiter_seq = 0

        m = self.metrics
        self._c_reads = m.counter("router.reads") if m else None
        self._c_writes = m.counter("router.writes") if m else None
        self._c_failovers = m.counter("router.failovers") if m else None
        self._c_hedges = m.counter("router.hedges") if m else None
        self._c_hedge_wins = m.counter("router.hedge_wins") if m else None
        self._c_partial = m.counter("router.partial_writes") if m else None
        self._h_read_lat = m.histogram("router.read_latency") if m else None
        self._h_write_lat = m.histogram("router.write_latency") if m else None
        self._c_replica_reads = (m.counter("hotkeys.replica_reads")
                                 if m else None)
        self._c_promotions = m.counter("hotkeys.promotions") if m else None
        self._c_demotions = m.counter("hotkeys.demotions") if m else None
        #: Per-tenant accounting families (children created on demand).
        self._c_tenant_reads = m.counter("router.tenant_reads") if m else None
        self._c_tenant_writes = (m.counter("router.tenant_writes")
                                 if m else None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def members(self) -> List[str]:
        """Live member names, sorted."""
        return sorted(self._members)

    def member(self, name: str) -> ShardMember:
        return self._members[name]

    def hot_slots(self) -> Dict[int, Tuple[str, ...]]:
        """Currently promoted slots and their extra replicas."""
        return dict(self._hot)

    def placement(self) -> List[Tuple[int, int, Tuple[str, ...]]]:
        """The effective owner ranges (ring + live overrides)."""
        return self.ring.ranges(self.replication)

    def slot_of(self, addr: int) -> int:
        return addr // self.slot_bytes

    def owners_of_slot(self, slot: int) -> List[str]:
        return self._route_owners(self._slot_points[slot])

    # ------------------------------------------------------------------
    # Public I/O API (mirrors RedyCache.read/write)
    # ------------------------------------------------------------------

    def read(self, addr: int, size: int,
             callback: Optional[Callable[[CacheIoResult], None]] = None,
             *, tenant: Optional[str] = None, priority: int = 0) -> Event:
        done = self.env.event()
        if callback is not None:
            done._add_callback(lambda event: callback(event.value))
        self.env.process(self._io(True, addr, size, None, done,
                                  tenant=tenant, priority=priority),
                         name=f"router-read:{addr}")
        return done

    def write(self, addr: int, data: bytes,
              callback: Optional[Callable[[CacheIoResult], None]] = None,
              *, tenant: Optional[str] = None, priority: int = 0) -> Event:
        done = self.env.event()
        if callback is not None:
            done._add_callback(lambda event: callback(event.value))
        self.env.process(self._io(False, addr, len(data), data, done,
                                  tenant=tenant, priority=priority),
                         name=f"router-write:{addr}")
        return done

    def load(self, addr: int, data: bytes) -> None:
        """Zero-time bulk load onto every owner (and hot replica)."""
        end = addr + len(data)
        if addr < 0 or end > self.capacity:
            raise AddressError(f"load [{addr}, {end}) outside capacity "
                               f"{self.capacity}")
        for slot, frag_addr, length, offset in self._fragments(addr,
                                                               len(data)):
            payload = data[offset:offset + length]
            for name in self._write_targets(slot):
                member = self._members.get(name)
                if member is not None and member.alive:
                    member.cache.load(frag_addr, payload)

    # ------------------------------------------------------------------
    # Fragmentation and routing
    # ------------------------------------------------------------------

    def _fragments(self, addr: int,
                   size: int) -> List[Tuple[int, int, int, int]]:
        """Split [addr, addr+size) into per-slot (slot, addr, len, off)."""
        if size < 0:
            raise AddressError(f"negative size {size}")
        if addr < 0 or addr + size > self.capacity:
            raise AddressError(f"I/O [{addr}, {addr + size}) outside "
                               f"capacity {self.capacity}")
        fragments: List[Tuple[int, int, int, int]] = []
        offset = 0
        while offset < size or (size == 0 and not fragments):
            at = addr + offset
            slot = at // self.slot_bytes
            slot_end = min((slot + 1) * self.slot_bytes, self.capacity)
            length = min(size - offset, slot_end - at)
            fragments.append((slot, at, length, offset))
            offset += max(length, 1)
            if size == 0:
                break
        return fragments

    def _route_owners(self, point: int) -> List[str]:
        """Owner list for a ring point, override-aware.

        While a rebalance is in flight the old ring keeps routing;
        completed moves install overrides that win here until the plan
        finishes and the new ring is swapped in wholesale.
        """
        for lo, hi, owners in self._overrides:
            if range_contains(lo, hi, point):
                return list(owners)
        return self.ring.owners(point, self.replication)

    def _read_pool(self, slot: int) -> List[str]:
        """Candidate shards for a read, hottest-aware and rotated."""
        owners = self._route_owners(self._slot_points[slot])
        extras = self._hot.get(slot)
        if extras is None:
            return owners
        pool = owners + [name for name in extras if name not in owners]
        if len(pool) > 1:
            start = self._rr[slot] = (self._rr.get(slot, -1) + 1) % len(pool)
            pool = pool[start:] + pool[:start]
            if pool[0] != owners[0] and self._c_replica_reads:
                self._c_replica_reads.inc()
        return pool

    def _write_targets(self, slot: int) -> List[str]:
        """All shards a write to ``slot`` must reach (owners + hot)."""
        owners = self._route_owners(self._slot_points[slot])
        extras = self._hot.get(slot, ())
        return owners + [name for name in extras if name not in owners]

    # ------------------------------------------------------------------
    # Backpressure
    # ------------------------------------------------------------------

    def _acquire(self, member: ShardMember, priority: int = 0):
        while member.inflight >= self.max_inflight_per_shard:
            waiter = self.env.event()
            self._waiter_seq += 1
            heapq.heappush(member.waiters,
                           (-priority, self._waiter_seq, waiter))
            yield waiter
        member.inflight += 1
        if member.inflight_gauge:
            member.inflight_gauge.set(member.inflight)

    def _release(self, member: ShardMember) -> None:
        member.inflight -= 1
        if member.inflight_gauge:
            member.inflight_gauge.set(member.inflight)
        if member.waiters and member.inflight < self.max_inflight_per_shard:
            heapq.heappop(member.waiters)[2].succeed()

    def _issue(self, member: ShardMember, is_read: bool, addr: int,
               size_or_data, tenant: Optional[str] = None,
               priority: int = 0):
        """Acquire an in-flight slot and start one member I/O.

        Returns the member cache's completion event; the slot is
        released by callback, so even an abandoned hedge loser frees
        its slot when it eventually completes.  ``priority`` orders the
        backpressure queue (weighted issue order for the serving tier);
        ``tenant`` rides down to the engine for per-tenant accounting.
        """
        yield from self._acquire(member, priority)  # repro-lint: disable=L005 -- slot is released by the completion callback below, so abandoned hedge losers still free it
        if is_read:
            event = member.cache.read(addr, size_or_data, tenant=tenant)
            if member.reads:
                member.reads.inc()
        else:
            event = member.cache.write(addr, size_or_data, tenant=tenant)
            if member.writes:
                member.writes.inc()
        event._add_callback(lambda _e, m=member: self._release(m))
        return event

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def _io(self, is_read: bool, addr: int, size: int,
            data: Optional[bytes], done: Event,
            tenant: Optional[str] = None, priority: int = 0):
        started = self.env.now
        try:
            fragments = self._fragments(addr, size)
        except AddressError as exc:
            done.succeed(CacheIoResult(ok=False, error=str(exc)))
            return
        if False:
            yield  # pragma: no cover -- makes this a generator
        if tenant is not None:
            family = self._c_tenant_reads if is_read else self._c_tenant_writes
            if family is not None:
                family.labels(tenant=tenant).inc()
        parts: List[Event] = []
        for slot, frag_addr, length, offset in fragments:
            part = self.env.event()
            parts.append(part)
            if is_read:
                self.env.process(  # repro-lint: disable=L006 -- fragment completion is joined via `part` in all_of below
                    self._read_fragment(slot, frag_addr, length, part,
                                        tenant, priority),
                    name=f"router-read-frag:{slot}")
            else:
                payload = data[offset:offset + length]
                self.env.process(  # repro-lint: disable=L006 -- fragment completion is joined via `part` in all_of below
                    self._write_fragment(slot, frag_addr, payload, part,
                                         tenant, priority),
                    name=f"router-write-frag:{slot}")
        results = yield self.env.all_of(parts)
        latency = self.env.now - started
        failed = [r for r in results if not r.ok]
        if failed:
            done.succeed(CacheIoResult(ok=False, error=failed[0].error,
                                       latency=latency))
            return
        if is_read:
            if self._c_reads:
                self._c_reads.inc()
            if self._h_read_lat:
                self._h_read_lat.observe(latency)
            payload = (results[0].data if len(results) == 1
                       else b"".join(r.data for r in results))
            done.succeed(CacheIoResult(ok=True, data=payload,
                                       latency=latency))
        else:
            if self._c_writes:
                self._c_writes.inc()
            if self._h_write_lat:
                self._h_write_lat.observe(latency)
            done.succeed(CacheIoResult(ok=True, latency=latency))

    def _read_fragment(self, slot: int, addr: int, length: int,
                       done: Event, tenant: Optional[str] = None,
                       priority: int = 0):
        self._record_access(slot)
        pool = self._read_pool(slot)
        result = CacheIoResult(ok=False, error="no live shard for range")
        for i, name in enumerate(pool):
            member = self._members.get(name)
            if member is None or not member.alive:
                continue
            # Anything not served by the pool's first choice -- dead
            # primary skipped or a failed attempt retried -- is a
            # failover.
            if i and self._c_failovers:
                self._c_failovers.inc()
            result = yield from self._attempt_read(member, addr, length,
                                                   pool[i + 1:],
                                                   tenant, priority)
            if result.ok:
                break
        done.succeed(result)

    def _attempt_read(self, member: ShardMember, addr: int, length: int,
                      alternates: List[str], tenant: Optional[str] = None,
                      priority: int = 0):
        primary = yield from self._issue(member, True, addr, length,
                                         tenant, priority)
        if self.hedge_after_s is None:
            result = yield primary
            return result
        index, value = yield self.env.any_of(
            [primary, self.env.timeout(self.hedge_after_s)])
        if index == 0:
            return value
        # Primary is slow: hedge to the first alternate with headroom,
        # or back to the same shard (a duplicate behind a different
        # queue slot) -- never block waiting for hedge capacity.
        hedge_member = None
        for name in alternates:
            alt = self._members.get(name)
            if (alt is not None and alt.alive
                    and alt.inflight < self.max_inflight_per_shard):
                hedge_member = alt
                break
        if (hedge_member is None and member.alive
                and member.inflight < self.max_inflight_per_shard):
            hedge_member = member
        if hedge_member is None:
            result = yield primary
            return result
        if self._c_hedges:
            self._c_hedges.inc()
        hedge = yield from self._issue(hedge_member, True, addr, length,
                                       tenant, priority)
        index, value = yield self.env.any_of([primary, hedge])
        if value.ok:
            if index == 1 and self._c_hedge_wins:
                self._c_hedge_wins.inc()
            return value
        # First finisher failed; wait out the other copy.
        other = hedge if index == 0 else primary
        result = yield other
        if result.ok and other is hedge and self._c_hedge_wins:
            self._c_hedge_wins.inc()
        return result

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def _write_barrier(self, slot: int):
        """Wait while the slot's range (or the slot itself) is gated."""
        point = self._slot_points[slot]
        while True:
            gate = self._slot_gates.get(slot)
            if gate is None:
                gate = next((g for lo, hi, g in self._gates
                             if range_contains(lo, hi, point)), None)
            if gate is None:
                return
            yield gate

    def _write_fragment(self, slot: int, addr: int, payload: bytes,
                        done: Event, tenant: Optional[str] = None,
                        priority: int = 0):
        yield from self._write_barrier(slot)
        issued: List[Event] = []
        # Sorted acquire order: concurrent multi-target writes never
        # hold-and-wait on each other's shards in opposite orders.
        for name in sorted(self._write_targets(slot)):
            member = self._members.get(name)
            if member is None or not member.alive:
                continue
            event = yield from self._issue(member, False, addr, payload,
                                           tenant, priority)
            issued.append(event)
        if not issued:
            done.succeed(CacheIoResult(ok=False,
                                       error="no live shard for range"))
            return
        results = yield self.env.all_of(issued)
        oks = [r for r in results if r.ok]
        if len(oks) < len(results) and self._c_partial:
            self._c_partial.inc(len(results) - len(oks))
        if oks:
            done.succeed(CacheIoResult(ok=True))
        else:
            done.succeed(results[0])

    # ------------------------------------------------------------------
    # Hot keys
    # ------------------------------------------------------------------

    def _record_access(self, slot: int) -> None:
        if self._detector is None:
            return
        if self._detector.record(slot):
            self._refresh_hot()

    def _refresh_hot(self) -> None:
        hot = self._detector.hot_slots()
        hotset = set(hot)
        for slot in [s for s in self._hot if s not in hotset]:
            del self._hot[slot]
            self._rr.pop(slot, None)
            if self._c_demotions:
                self._c_demotions.inc()
        for slot in hot:
            if slot not in self._hot and slot not in self._promoting:
                self.env.process(self._promote_slot(slot),
                                 name=f"hot-promote:{slot}")

    def _promote_slot(self, slot: int):
        """Copy a hot slot to extra replicas, then enable round-robin."""
        self._promoting.add(slot)
        gated = False
        try:
            point = self._slot_points[slot]
            owners = self._route_owners(point)
            need = max(0, self.hot_policy.replicas - len(owners))
            if need == 0:
                # Owners alone satisfy R: round-robin across them.
                self._hot[slot] = ()
                if self._c_promotions:
                    self._c_promotions.inc()
                return
            ordered = self.ring.owners(point, len(self.ring))
            extras = [name for name in ordered
                      if name not in owners
                      and (m := self._members.get(name)) is not None
                      and m.alive][:need]
            if not extras:
                if len(owners) > 1:
                    self._hot[slot] = ()
                    if self._c_promotions:
                        self._c_promotions.inc()
                return
            source = next((self._members[n] for n in owners
                           if n in self._members
                           and self._members[n].alive), None)
            if source is None:
                return
            # Gate writes to just this slot while the copy streams, so
            # the replicas come up consistent.
            self._slot_gates[slot] = self.env.event()
            gated = True
            addr = slot * self.slot_bytes
            size = min(self.slot_bytes, self.capacity - addr)
            result = yield source.cache.read(addr, size)
            if not result.ok:
                return
            writes = []
            for name in sorted(extras):
                event = yield from self._issue(self._members[name], False,
                                               addr, result.data)
                writes.append(event)
            results = yield self.env.all_of(writes)
            landed = tuple(name for name, r in zip(sorted(extras), results)
                           if r.ok)
            if landed:
                self._hot[slot] = landed
                if self._c_promotions:
                    self._c_promotions.inc()
        finally:
            self._promoting.discard(slot)
            if gated:
                gate = self._slot_gates.pop(slot, None)
                if gate is not None:
                    gate.succeed()

    def _drop_hot_member(self, name: str) -> None:
        """Forget a departed shard's hot replicas."""
        for slot, extras in list(self._hot.items()):
            if name in extras:
                remaining = tuple(n for n in extras if n != name)
                if remaining or len(self._route_owners(
                        self._slot_points[slot])) > 1:
                    self._hot[slot] = remaining
                else:
                    del self._hot[slot]
                    self._rr.pop(slot, None)

    # ------------------------------------------------------------------
    # Membership changes (serialized)
    # ------------------------------------------------------------------

    def join(self, name: str, cache: RedyCache) -> Event:
        """Add a member; fires with the RebalanceReport when settled."""
        if name in self._members or name in self.ring:
            raise ValueError(f"shard {name!r} already a member")
        if cache.capacity != self.capacity:
            raise ValueError("joining cache capacity "
                             f"{cache.capacity} != {self.capacity}")
        member = ShardMember(name, cache, self.metrics)
        return self._serialized(lambda: self._join_op(member),
                                f"shard-join:{name}")

    def depart(self, name: str, *, emergency: bool = False,
               reason: str = "manual") -> Event:
        """Drain a member off the ring; fires with the RebalanceReport.

        ``emergency=True`` means the member's data is already gone (hard
        VM kill): it is never used as a stream source and survivor
        replicas supply the moved ranges.
        """
        if name not in self._members:
            raise ValueError(f"shard {name!r} is not a member")
        if len(self._members) == 1:
            raise ValueError("cannot depart the last member")
        member = self._members[name]
        member.departing = True
        if emergency:
            member.alive = False
        if self.metrics:
            self.metrics.counter("router.departures").labels(
                reason=reason).inc()
        return self._serialized(
            lambda: self._depart_op(member, emergency),
            f"shard-depart:{name}")

    def _serialized(self, op: Callable, name: str) -> Event:
        """Chain a membership operation behind any in-flight one."""
        done = self.env.event()
        prev, self._membership_tail = self._membership_tail, done

        def runner():
            if prev is not None:
                yield prev  # already-processed events resume next step
            report = yield from op()
            done.succeed(report)

        self.env.process(runner(), name=name)
        return done

    def _join_op(self, member: ShardMember):
        self._members[member.name] = member
        self._watch_member_vms(member)
        old = self.ring.copy()
        new = self.ring.copy()
        new.add(member.name)
        plan = plan_rebalance(old, new, self.replication)
        report = yield from self.rebalancer.execute(plan)
        self.ring = new
        self._overrides.clear()
        self.reports.append(report)
        for hook in self.on_rebalance:
            hook(report)
        return report

    def _depart_op(self, member: ShardMember, emergency: bool):
        new = self.ring.copy()
        new.remove(member.name)
        plan = plan_rebalance(self.ring, new, self.replication)
        report = yield from self.rebalancer.execute(plan)
        self.ring = new
        self._overrides.clear()
        self._members.pop(member.name, None)
        self.retired[member.name] = member
        self._drop_hot_member(member.name)
        member.alive = False
        # Unblock anything still queued on the dead member.
        while member.waiters:
            heapq.heappop(member.waiters)[2].succeed()
        self.reports.append(report)
        for hook in self.on_rebalance:
            hook(report)
        return report

    # ------------------------------------------------------------------
    # Fault wiring
    # ------------------------------------------------------------------

    def _watch_member_vms(self, member: ShardMember) -> None:
        """Subscribe to the member's VM lifecycle: a hard kill triggers
        an emergency ring departure, a reclaim notice a planned drain
        (the member's own internal migration keeps it readable through
        the notice window, so it doubles as the stream source)."""
        allocation = getattr(member.cache, "allocation", None)
        if allocation is None:
            return
        for vm in allocation.vms:
            vm.on_terminated.append(
                lambda _vm, m=member: self._on_member_vm_dead(m))
            vm.on_reclaim_notice.append(
                lambda _notice, m=member: self._on_member_reclaimed(m))

    def _on_member_vm_dead(self, member: ShardMember) -> None:
        if member.name not in self._members:
            return
        if member.departing:
            # Died mid-drain: stop using it as a stream source.
            member.alive = False
            return
        self.depart(member.name, emergency=True, reason="vm-kill")

    def _on_member_reclaimed(self, member: ShardMember) -> None:
        if member.name not in self._members or member.departing:
            return
        self.depart(member.name, emergency=False, reason="vm-eviction")
