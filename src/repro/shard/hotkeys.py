"""Sliding-window top-k hot-key detection.

Zipfian traffic concentrates a large fraction of all reads on a handful
of keys; whatever shard owns the hottest key saturates while the rest of
the fleet idles (RDCA's motivation for keeping the hot set in the fast
tier applies per shard).  The router counters this by *promoting* hot
slots to R read replicas and round-robining their reads.

The detector here is the policy half: a sliding window of the last
``window`` slot accesses with exact per-slot counts (the window is a few
thousand entries, so exact counting is cheaper than a sketch and -- more
importantly -- deterministic).  Every ``check_every`` accesses the
router asks for the current top-k and reconciles promotions/demotions.

No randomness, no wall clock: identical access streams produce identical
promotion decisions, which the shard determinism tests assert.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List

__all__ = ["HotKeyDetector", "HotKeyPolicy"]


@dataclass(frozen=True)
class HotKeyPolicy:
    """Knobs of the hot-key detection/replication loop."""

    #: Sliding window length, in slot accesses.
    window: int = 2048
    #: At most this many slots are hot at once.
    top_k: int = 8
    #: A slot must appear this often inside the window to qualify --
    #: keeps a uniform workload (where the top slot is barely above
    #: average) from churning pointless promotions.
    min_count: int = 64
    #: Total read copies of a hot slot, the primary owner included.
    replicas: int = 2
    #: Reconcile promotions/demotions every this many accesses.
    check_every: int = 256

    def __post_init__(self):
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.min_count < 1:
            raise ValueError("min_count must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.check_every < 1:
            raise ValueError("check_every must be >= 1")


class HotKeyDetector:
    """Exact sliding-window slot frequencies with top-k extraction."""

    def __init__(self, policy: HotKeyPolicy = HotKeyPolicy()):
        self.policy = policy
        self._window: Deque[int] = deque()
        self._counts: Dict[int, int] = {}
        #: Lifetime accesses recorded (drives the check cadence).
        self.accesses = 0

    def record(self, slot: int) -> bool:
        """Count one access; True when a reconcile pass is due."""
        self.accesses += 1
        self._window.append(slot)
        self._counts[slot] = self._counts.get(slot, 0) + 1
        if len(self._window) > self.policy.window:
            expired = self._window.popleft()
            remaining = self._counts[expired] - 1
            if remaining:
                self._counts[expired] = remaining
            else:
                del self._counts[expired]
        return self.accesses % self.policy.check_every == 0

    def count(self, slot: int) -> int:
        """In-window access count of ``slot``."""
        return self._counts.get(slot, 0)

    def hot_slots(self) -> List[int]:
        """The current top-k slots at or above the promotion threshold.

        Sorted hottest first; ties break on the smaller slot id so the
        result is deterministic for identical access streams.
        """
        eligible = [(count, slot) for slot, count in self._counts.items()
                    if count >= self.policy.min_count]
        eligible.sort(key=lambda pair: (-pair[0], pair[1]))
        return [slot for _count, slot in eligible[:self.policy.top_k]]
