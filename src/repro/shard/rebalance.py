"""Live rebalancer: executes ring plans by streaming key ranges.

A :class:`~repro.shard.ring.RebalancePlan` says *what* must move; this
module moves it while the router keeps serving.  The mechanics reuse
the single-cache migration machinery's shape (:mod:`repro.core.migration`):

* one move (a contiguous hash arc) streams at a time, its writes gated
  at the router -- reads stay unpaused and flow to the old owners until
  the move's routing override flips, exactly the §7.4 "pause only the
  moving region" optimization applied per hash range;
* slot copies pipeline up to ``policy.queue_depth`` deep, paced by the
  receiver's ingest bandwidth (``policy.ingest_bandwidth_gbps``), the
  same end-to-end bottleneck the migration model calibrates;
* sources are tried primary-first; with ``replication>=2`` a hard-killed
  shard's ranges stream from the surviving replica, which is what makes
  a VM kill lose zero acknowledged writes.

Rebalance traffic bypasses the router's per-shard in-flight accounting:
it is background traffic with its own (queue_depth) pipeline bound, and
letting it compete for foreground slots would let a rebalance starve
the very clients it is trying to protect.

Deterministic throughout: moves execute in plan order, slots ascending,
targets in plan order; two same-seed runs produce bit-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.migration import MigrationPolicy
from repro.sim.resources import Resource

__all__ = ["Rebalancer", "RebalanceReport"]


@dataclass
class RebalanceReport:
    """What one executed rebalance plan did and how long it took."""

    #: SHA-256 digest of the plan (the bit-identity check surface).
    plan_digest: str
    n_moves: int
    #: Fraction of the hash circle that changed hands.
    moved_fraction: float
    #: Distinct slots the plan touched.
    slots_moved: int
    #: Bytes actually streamed (slot copies x slot size, per target).
    bytes_moved: int
    #: Slot copies skipped because no live source survived.  Nonzero
    #: here means acknowledged data was lost -- the scale-out bench
    #: asserts this stays zero under a VM kill with replication >= 2.
    lost_slots: int
    started_at: float
    finished_at: float
    #: Per-move (span_fraction, slots, bytes) in execution order.
    moves: List[Tuple[float, int, int]] = field(default_factory=list)
    #: Identities of the lost slots (sorted, deduplicated) -- consumers
    #: such as the tenant tier map these back to address ranges to know
    #: whose data silently reverted.
    lost_slot_ids: List[int] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    def to_dict(self) -> dict:
        return {"plan_digest": self.plan_digest,
                "n_moves": self.n_moves,
                "moved_fraction": self.moved_fraction,
                "slots_moved": self.slots_moved,
                "bytes_moved": self.bytes_moved,
                "lost_slots": self.lost_slots,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "duration_s": self.duration,
                "moves": [list(m) for m in self.moves],
                "lost_slot_ids": list(self.lost_slot_ids)}


class Rebalancer:
    """Executes rebalance plans against a :class:`ShardRouter`."""

    def __init__(self, router, policy: Optional[MigrationPolicy] = None):
        self.router = router
        self.policy = policy if policy is not None else MigrationPolicy()
        m = router.metrics
        self._c_moves = m.counter("rebalance.moves") if m else None
        self._c_slots = m.counter("rebalance.slots_moved") if m else None
        self._c_bytes = m.counter("rebalance.bytes_moved") if m else None
        self._c_lost = m.counter("rebalance.lost_slots") if m else None
        self._g_duration = (m.gauge("rebalance.last_duration_s")
                            if m else None)

    def execute(self, plan):
        """Stream every move of ``plan``; returns a RebalanceReport.

        Generator -- run inside a router membership process.  Per move:
        gate writes to the arc, copy its slots source->target, lift the
        gate and install the routing override.  The caller flips the
        ring and clears overrides once the whole plan has landed.
        """
        router = self.router
        env = router.env
        started = env.now
        report = RebalanceReport(plan_digest=plan.digest(),
                                 n_moves=len(plan),
                                 moved_fraction=plan.moved_fraction,
                                 slots_moved=0, bytes_moved=0,
                                 lost_slots=0, started_at=started,
                                 finished_at=started)
        for move in plan:
            slots = [slot for slot in range(router.n_slots)
                     if move.contains(router._slot_points[slot])]
            moved_bytes = lost = 0
            lost_ids: List[int] = []
            if slots:
                gate = env.event()
                entry = (move.lo, move.hi, gate)
                router._gates.append(entry)
                try:
                    moved_bytes, lost, lost_ids = yield from (
                        self._stream_move(move, slots))
                finally:
                    router._gates.remove(entry)
                    gate.succeed()
            # Flip routing for this arc as soon as it has landed; the
            # rest of the plan keeps routing through the old ring.
            router._overrides.append((move.lo, move.hi, move.new_owners))
            report.slots_moved += len(slots)
            report.bytes_moved += moved_bytes
            report.lost_slots += lost
            report.lost_slot_ids.extend(lost_ids)
            report.moves.append((move.span / (1 << 64), len(slots),
                                 moved_bytes))
            if self._c_moves:
                self._c_moves.inc()
                self._c_slots.inc(len(slots))
                self._c_bytes.inc(moved_bytes)
                if lost:
                    self._c_lost.inc(lost)
        report.finished_at = env.now
        report.lost_slot_ids = sorted(set(report.lost_slot_ids))
        if self._g_duration:
            self._g_duration.set(report.duration)
        return report

    def _stream_move(self, move, slots):
        """Copy ``slots`` to every move target; returns (bytes, lost)."""
        env = self.router.env
        # One ingest pipe per target models the receiver's single
        # migration thread; queue_depth bounds the copy pipeline.
        window = Resource(env, slots=self.policy.queue_depth)
        ingests = {name: Resource(env, slots=1) for name in move.targets}
        totals = {"bytes": 0, "lost": 0, "lost_ids": []}
        copies = []
        for slot in slots:
            for target_name in move.targets:
                target = self.router._members.get(target_name)
                if target is None or not target.alive:
                    continue
                copies.append(env.process(
                    self._copy_slot(move, slot, target,
                                    ingests[target_name], window, totals),
                    name=f"rebalance-copy:{slot}:{target_name}"))
        if copies:
            yield env.all_of(copies)
        return totals["bytes"], totals["lost"], totals["lost_ids"]

    def _copy_slot(self, move, slot, target, ingest, window, totals):
        router = self.router
        env = router.env
        yield window.acquire()
        try:
            addr = slot * router.slot_bytes
            size = min(router.slot_bytes, router.capacity - addr)
            payload = None
            # Primary-first over the old owners; skip dead shards (an
            # emergency departure's data is gone -- replicas supply it).
            for name in move.sources:
                source = router._members.get(name)
                if source is None or not source.alive:
                    continue
                result = yield source.cache.read(addr, size)
                if result.ok:
                    payload = result.data
                    break
            if payload is None:
                totals["lost"] += 1
                totals["lost_ids"].append(slot)
                return
            yield ingest.acquire()
            try:
                yield env.timeout(
                    size * 8 / (self.policy.ingest_bandwidth_gbps * 1e9))
                wrote = yield target.cache.write(addr, payload)
            finally:
                ingest.release()
            if wrote.ok:
                totals["bytes"] += size
            else:
                totals["lost"] += 1
                totals["lost_ids"].append(slot)
        finally:
            window.release()
