"""Sharded scale-out tier: consistent hashing, routing, rebalancing.

One Redy cache is bounded by its backing VMs; this package aggregates N
member caches behind a single read/write API:

* :mod:`repro.shard.ring` -- deterministic consistent-hash ring with
  minimal rebalance planning (:func:`plan_rebalance`);
* :mod:`repro.shard.router` -- the :class:`ShardRouter` front-end:
  replicated fan-out, per-shard backpressure, hedged reads, failover;
* :mod:`repro.shard.rebalance` -- live range streaming executing ring
  plans while the router keeps serving;
* :mod:`repro.shard.hotkeys` -- sliding-window top-k hot-slot detection
  feeding replica promotion.
"""

from repro.shard.hotkeys import HotKeyDetector, HotKeyPolicy
from repro.shard.rebalance import Rebalancer, RebalanceReport
from repro.shard.ring import (HASH_SPACE, HashRing, RangeMove,
                              RebalancePlan, key_hash, plan_rebalance,
                              range_contains)
from repro.shard.router import ShardMember, ShardRouter

__all__ = [
    "HASH_SPACE",
    "HashRing",
    "HotKeyDetector",
    "HotKeyPolicy",
    "RangeMove",
    "RebalancePlan",
    "Rebalancer",
    "RebalanceReport",
    "ShardMember",
    "ShardRouter",
    "key_hash",
    "plan_rebalance",
    "range_contains",
]
