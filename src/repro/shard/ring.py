"""Deterministic consistent-hash ring for the sharded scale-out tier.

The routing front-end (:mod:`repro.shard.router`) maps each fixed-size
*slot* of the global address space onto one of N member caches through
this ring.  Placement is the classic consistent-hashing construction:
every shard contributes ``vnodes_per_shard`` virtual nodes at
SHA-256-derived points on a 64-bit circle, and a slot belongs to the
first virtual node at or clockwise of its own SHA-256 point.

Everything here is a pure function of (member names, vnode count): no
RNG, no wall clock, no id counters -- two processes that build the same
ring get bit-identical placement, and :func:`plan_rebalance` emits
bit-identical move lists.  That is the determinism contract the shard
benchmarks assert.

Rebalancing is *minimal by construction*: a join or leave only remaps
the hash ranges whose owner set actually changed, which consistent
hashing bounds at ~1/N of the circle per membership change.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Iterable, List, Tuple

__all__ = ["HASH_SPACE", "HashRing", "RangeMove", "RebalancePlan",
           "key_hash", "plan_rebalance", "range_contains"]

#: The ring is a circle of 64-bit points: [0, 2^64).
HASH_SPACE = 1 << 64


def _sha_point(data: bytes) -> int:
    """A stable 64-bit point from SHA-256 (platform-independent)."""
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


def key_hash(slot: int) -> int:
    """The ring point of one address-space slot."""
    return _sha_point(slot.to_bytes(8, "big"))


class HashRing:
    """Consistent-hash ring over named shards with virtual nodes."""

    def __init__(self, shards: Iterable[str] = (), *,
                 vnodes_per_shard: int = 64):
        if vnodes_per_shard < 1:
            raise ValueError("vnodes_per_shard must be >= 1")
        self.vnodes_per_shard = vnodes_per_shard
        #: Sorted (point, shard) pairs -- the circle.
        self._points: List[Tuple[int, str]] = []
        self._shards: set[str] = set()
        for shard in shards:
            self.add(shard)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    @property
    def shards(self) -> List[str]:
        return sorted(self._shards)

    def add(self, shard: str) -> None:
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} already on the ring")
        self._shards.add(shard)
        for i in range(self.vnodes_per_shard):
            point = _sha_point(f"{shard}#{i}".encode())
            # The (point, shard) tuple breaks the (astronomically rare)
            # point collision deterministically by name.
            insort(self._points, (point, shard))

    def remove(self, shard: str) -> None:
        if shard not in self._shards:
            raise ValueError(f"shard {shard!r} not on the ring")
        self._shards.discard(shard)
        self._points = [p for p in self._points if p[1] != shard]

    def copy(self) -> "HashRing":
        clone = HashRing(vnodes_per_shard=self.vnodes_per_shard)
        clone._points = list(self._points)
        clone._shards = set(self._shards)
        return clone

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def owner(self, point: int) -> str:
        """The shard owning ring point ``point``."""
        return self.owners(point, 1)[0]

    def owners(self, point: int, n: int) -> List[str]:
        """The first ``n`` *distinct* shards at or clockwise of ``point``.

        ``owners(h, 2)`` is the replica set of a key hashed to ``h``:
        primary first, then the next distinct shard around the circle
        (never two virtual nodes of the same shard).
        """
        if not self._points:
            raise ValueError("ring has no shards")
        n = min(n, len(self._shards))
        index = bisect_left(self._points, (point % HASH_SPACE, ""))
        found: List[str] = []
        for step in range(len(self._points)):
            shard = self._points[(index + step) % len(self._points)][1]
            if shard not in found:
                found.append(shard)
                if len(found) == n:
                    break
        return found

    def points(self) -> List[int]:
        """All virtual-node points, sorted (the circle's boundaries)."""
        return [point for point, _shard in self._points]

    def ranges(self, n_owners: int = 1) -> List[Tuple[int, int, Tuple[str, ...]]]:
        """Owner intervals covering the circle: ``(lo, hi, owners)``.

        Each interval is the half-open circular arc ``(lo, hi]``; the
        final entry wraps through zero.  Adjacent arcs with equal owner
        tuples are merged, so the list is canonical -- two identical
        rings produce byte-identical range tables.
        """
        boundaries = self.points()
        if not boundaries:
            return []
        arcs: List[Tuple[int, int, Tuple[str, ...]]] = []
        for i, hi in enumerate(boundaries):
            lo = boundaries[i - 1]  # i == 0 wraps to the last point
            owners = tuple(self.owners(hi, n_owners))
            if arcs and arcs[-1][2] == owners and arcs[-1][1] == lo:
                arcs[-1] = (arcs[-1][0], hi, owners)
            else:
                arcs.append((lo, hi, owners))
        # Merge across the seam (last arc wraps into the first).
        if len(arcs) > 1 and arcs[0][2] == arcs[-1][2]:
            lo, _hi, owners = arcs.pop()
            arcs[0] = (lo, arcs[0][1], owners)
        return arcs


def range_contains(lo: int, hi: int, point: int) -> bool:
    """Is ``point`` inside the circular arc ``(lo, hi]``?"""
    if lo < hi:
        return lo < point <= hi
    return point > lo or point <= hi  # wraps through zero


def _range_span(lo: int, hi: int) -> int:
    """Arc length of ``(lo, hi]`` on the circle."""
    return (hi - lo) % HASH_SPACE or HASH_SPACE


@dataclass(frozen=True)
class RangeMove:
    """One key-range transfer a membership change requires.

    The arc ``(lo, hi]`` changed owner set: ``targets`` are the new
    owners that do not yet hold the data, ``sources`` the old owners
    (primary first) any of which can stream it.  ``new_owners`` is the
    complete post-move owner tuple the router flips routing to once the
    range has landed.
    """

    lo: int
    hi: int
    sources: Tuple[str, ...]
    targets: Tuple[str, ...]
    new_owners: Tuple[str, ...]

    @property
    def span(self) -> int:
        return _range_span(self.lo, self.hi)

    def contains(self, point: int) -> bool:
        return range_contains(self.lo, self.hi, point)

    def to_dict(self) -> dict:
        return {"lo": self.lo, "hi": self.hi,
                "sources": list(self.sources),
                "targets": list(self.targets),
                "new_owners": list(self.new_owners)}


@dataclass(frozen=True)
class RebalancePlan:
    """The minimal move list taking ``old`` ring ownership to ``new``."""

    moves: Tuple[RangeMove, ...]
    joined: Tuple[str, ...]
    departed: Tuple[str, ...]
    n_owners: int

    def __len__(self) -> int:
        return len(self.moves)

    def __iter__(self):
        return iter(self.moves)

    @property
    def moved_span(self) -> int:
        """Total arc length changing hands (the 1/N minimality metric)."""
        return sum(move.span for move in self.moves)

    @property
    def moved_fraction(self) -> float:
        return self.moved_span / HASH_SPACE

    def to_dict(self) -> dict:
        return {"moves": [move.to_dict() for move in self.moves],
                "joined": list(self.joined),
                "departed": list(self.departed),
                "n_owners": self.n_owners}

    def digest(self) -> str:
        """SHA-256 over the canonical JSON -- the bit-identity check."""
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


def plan_rebalance(old: HashRing, new: HashRing,
                   n_owners: int = 1) -> RebalancePlan:
    """The minimal range moves taking ``old`` ownership to ``new``.

    Walks the union of both rings' virtual-node boundaries -- inside one
    boundary interval ownership is constant in *both* rings -- and emits
    a move for exactly the intervals whose owner set changed.  Adjacent
    intervals with the same (sources, targets, new_owners) merge, so the
    plan is canonical and minimal.
    """
    if not len(old) and not len(new):
        return RebalancePlan(moves=(), joined=(), departed=(),
                             n_owners=n_owners)
    if not len(new):
        raise ValueError("cannot rebalance to an empty ring")
    joined = tuple(sorted(set(new.shards) - set(old.shards)))
    departed = tuple(sorted(set(old.shards) - set(new.shards)))
    if not len(old):
        # Bootstrap: a fresh ring owns everything; nothing to move.
        return RebalancePlan(moves=(), joined=joined, departed=departed,
                             n_owners=n_owners)

    boundaries = sorted(set(old.points()) | set(new.points()))
    moves: List[RangeMove] = []
    for i, hi in enumerate(boundaries):
        lo = boundaries[i - 1]
        old_owners = tuple(old.owners(hi, n_owners))
        new_owners = tuple(new.owners(hi, n_owners))
        targets = tuple(s for s in new_owners if s not in old_owners)
        if not targets:
            continue  # owner set unchanged (or only reordered): no copy
        move = RangeMove(lo=lo, hi=hi, sources=old_owners,
                         targets=targets, new_owners=new_owners)
        if (moves and moves[-1].hi == lo
                and moves[-1].sources == move.sources
                and moves[-1].targets == move.targets
                and moves[-1].new_owners == move.new_owners):
            moves[-1] = RangeMove(lo=moves[-1].lo, hi=hi,
                                  sources=move.sources,
                                  targets=move.targets,
                                  new_owners=move.new_owners)
        else:
            moves.append(move)
    # Merge across the seam: the first interval's lo is the last boundary.
    if (len(moves) > 1 and moves[0].lo == moves[-1].hi
            and moves[0].sources == moves[-1].sources
            and moves[0].targets == moves[-1].targets
            and moves[0].new_owners == moves[-1].new_owners):
        last = moves.pop()
        moves[0] = RangeMove(lo=last.lo, hi=moves[0].hi,
                             sources=last.sources, targets=last.targets,
                             new_owners=last.new_owners)
    return RebalancePlan(moves=tuple(moves), joined=joined,
                         departed=departed, n_owners=n_owners)
