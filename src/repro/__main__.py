"""Command-line entry point: ``python -m repro``.

Convenience launcher for a repository checkout:

* ``python -m repro list`` -- enumerate the reproduction experiments;
* ``python -m repro run fig03`` -- regenerate one table/figure;
* ``python -m repro run all`` -- regenerate everything;
* ``python -m repro examples`` -- list the example applications.
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
_BENCHMARKS = _REPO_ROOT / "benchmarks"
_EXAMPLES = _REPO_ROOT / "examples"


def _experiment_ids() -> dict[str, pathlib.Path]:
    if not _BENCHMARKS.is_dir():
        return {}
    experiments = {}
    for path in sorted(_BENCHMARKS.glob("test_*.py")):
        identifier = path.stem.removeprefix("test_").split("_")[0]
        experiments.setdefault(identifier, path)
        experiments[path.stem.removeprefix("test_")] = path
    return experiments


def _first_doc_line(path: pathlib.Path) -> str:
    for line in path.read_text().splitlines():
        stripped = line.strip().strip('"')
        if stripped and not stripped.startswith("#"):
            return stripped
    return ""


def cmd_list() -> int:
    experiments = _experiment_ids()
    if not experiments:
        print("no benchmarks/ directory found -- run from a repository "
              "checkout")
        return 1
    seen = set()
    print(f"{'id':>26}  experiment")
    for identifier, path in sorted(experiments.items(),
                                   key=lambda kv: kv[1].stem):
        if path in seen or "_" in identifier:
            continue
        seen.add(path)
        print(f"{path.stem.removeprefix('test_'):>26}  "
              f"{_first_doc_line(path)}")
    return 0


def cmd_run(identifier: str) -> int:
    if identifier == "all":
        targets = [str(_BENCHMARKS)]
    else:
        experiments = _experiment_ids()
        path = experiments.get(identifier)
        if path is None:
            print(f"unknown experiment {identifier!r}; "
                  f"try `python -m repro list`")
            return 1
        targets = [str(path)]
    return subprocess.call(
        [sys.executable, "-m", "pytest", *targets,
         "--benchmark-only", "-q", "-s"])


def cmd_examples() -> int:
    if not _EXAMPLES.is_dir():
        print("no examples/ directory found")
        return 1
    for path in sorted(_EXAMPLES.glob("*.py")):
        print(f"python examples/{path.name:<28} {_first_doc_line(path)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Redy (VLDB 2021) reproduction launcher")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproduction experiments")
    run = sub.add_parser("run", help="regenerate one experiment (or all)")
    run.add_argument("experiment", help="experiment id, e.g. fig03, or all")
    sub.add_parser("examples", help="list example applications")
    args = parser.parse_args(argv)

    try:
        if args.command == "list":
            return cmd_list()
        if args.command == "run":
            return cmd_run(args.experiment)
        return cmd_examples()
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
