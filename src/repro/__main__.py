"""Command-line entry point: ``python -m repro``.

Convenience launcher for a repository checkout:

* ``python -m repro list`` -- enumerate the reproduction experiments;
* ``python -m repro run fig03`` -- regenerate one table/figure;
* ``python -m repro run all`` -- regenerate everything;
* ``python -m repro metrics`` -- run an instrumented measurement and dump
  its ``repro.obs`` registry (``--json`` for the raw blob);
* ``python -m repro metrics fig07`` -- show a saved ``BENCH_fig07.json``;
* ``python -m repro examples`` -- list the example applications.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
_BENCHMARKS = _REPO_ROOT / "benchmarks"
_EXAMPLES = _REPO_ROOT / "examples"


def _experiment_ids() -> dict[str, pathlib.Path]:
    if not _BENCHMARKS.is_dir():
        return {}
    experiments = {}
    for path in sorted(_BENCHMARKS.glob("test_*.py")):
        identifier = path.stem.removeprefix("test_").split("_")[0]
        experiments.setdefault(identifier, path)
        experiments[path.stem.removeprefix("test_")] = path
    return experiments


def _first_doc_line(path: pathlib.Path) -> str:
    for line in path.read_text().splitlines():
        stripped = line.strip().strip('"')
        if stripped and not stripped.startswith("#"):
            return stripped
    return ""


def cmd_list() -> int:
    experiments = _experiment_ids()
    if not experiments:
        print("no benchmarks/ directory found -- run from a repository "
              "checkout")
        return 1
    seen = set()
    print(f"{'id':>26}  experiment")
    for identifier, path in sorted(experiments.items(),
                                   key=lambda kv: kv[1].stem):
        if path in seen or "_" in identifier:
            continue
        seen.add(path)
        print(f"{path.stem.removeprefix('test_'):>26}  "
              f"{_first_doc_line(path)}")
    return 0


def cmd_run(identifier: str) -> int:
    if identifier == "all":
        targets = [str(_BENCHMARKS)]
    else:
        experiments = _experiment_ids()
        path = experiments.get(identifier)
        if path is None:
            print(f"unknown experiment {identifier!r}; "
                  f"try `python -m repro list`")
            return 1
        targets = [str(path)]
    return subprocess.call(
        [sys.executable, "-m", "pytest", *targets,
         "--benchmark-only", "-q", "-s"])


def cmd_metrics(identifier: str | None, as_json: bool,
                queue_depth: int, threads: int, batches: int) -> int:
    """Dump a run's ``repro.obs`` metrics registry.

    With an experiment id, pretty-print the ``BENCH_<id>.json`` blob a
    previous benchmark run persisted.  Without one, stand up the
    measurement testbed (§5.1), run it instrumented, and dump the live
    registry -- the quickest way to see what the data path measures.
    """
    from repro.obs.export import format_table, snapshot

    if identifier is not None:
        blob_path = _BENCHMARKS / "_results" / f"BENCH_{identifier}.json"
        if not blob_path.is_file():
            print(f"no metrics blob at {blob_path}; run the benchmark "
                  f"first: python -m repro run {identifier}")
            return 1
        blob = json.loads(blob_path.read_text())
        print(json.dumps(blob, indent=2, sort_keys=True) if as_json
              else format_table(blob))
        return 0

    from repro.core.config import RdmaConfig
    from repro.core.measurement import measure_config
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    config = RdmaConfig(threads, 0, 1, queue_depth)
    result = measure_config(config, 8, seed=7, metrics=registry,
                            batches_per_connection=batches)
    blob = snapshot(registry, name="metrics-demo",
                    extra={"config": repr(config),
                           "throughput_ops": result.throughput,
                           "latency_p50": result.latency_p50,
                           "latency_p99": result.latency_p99})
    print(json.dumps(blob, indent=2, sort_keys=True) if as_json
          else format_table(blob))
    return 0


def cmd_examples() -> int:
    if not _EXAMPLES.is_dir():
        print("no examples/ directory found")
        return 1
    for path in sorted(_EXAMPLES.glob("*.py")):
        print(f"python examples/{path.name:<28} {_first_doc_line(path)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Redy (VLDB 2021) reproduction launcher")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproduction experiments")
    run = sub.add_parser("run", help="regenerate one experiment (or all)")
    run.add_argument("experiment", help="experiment id, e.g. fig03, or all")
    metrics = sub.add_parser(
        "metrics",
        help="dump a run's repro.obs metrics registry")
    metrics.add_argument(
        "experiment", nargs="?", default=None,
        help="saved bench blob to show (e.g. fig07); omit to run a live "
             "instrumented measurement")
    metrics.add_argument("--json", action="store_true", dest="as_json",
                         help="raw JSON instead of the table view")
    metrics.add_argument("--queue-depth", type=int, default=4)
    metrics.add_argument("--threads", type=int, default=1)
    metrics.add_argument("--batches", type=int, default=120,
                         help="measured batches per connection")
    sub.add_parser("examples", help="list example applications")
    args = parser.parse_args(argv)

    try:
        if args.command == "list":
            return cmd_list()
        if args.command == "run":
            return cmd_run(args.experiment)
        if args.command == "metrics":
            return cmd_metrics(args.experiment, args.as_json,
                               args.queue_depth, args.threads, args.batches)
        return cmd_examples()
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
