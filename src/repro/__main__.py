"""Command-line entry point: ``python -m repro``.

Convenience launcher for a repository checkout:

* ``python -m repro list`` -- enumerate the reproduction experiments;
* ``python -m repro run fig03`` -- regenerate one table/figure;
* ``python -m repro run all`` -- regenerate everything;
* ``python -m repro metrics`` -- run an instrumented measurement and dump
  its ``repro.obs`` registry (``--json`` for the raw blob);
* ``python -m repro metrics fig07`` -- show a saved ``BENCH_fig07.json``;
* ``python -m repro sweep`` -- measure a configuration grid through the
  parallel sweep executor and its on-disk result cache (``repro.exec``);
* ``python -m repro kernelbench`` -- micro-benchmark the simulation
  kernel (``Environment.step()`` throughput on the measurement workload);
* ``python -m repro chaos spot-churn`` -- run one named fault-injection
  scenario and dump its fault log + availability summary
  (``repro.faults``); same seed, bit-identical fault trace;
* ``python -m repro shard`` -- drive zipfian YCSB traffic across the
  sharded scale-out tier (``repro.shard``) and dump the fleet stats;
  ``--smoke`` runs the quick CI invariants (kill-survival, determinism);
* ``python -m repro verbs`` -- A/B a dependent-GET workload over the
  classic two-hop transport vs one-RTT remote-side verb programs;
  ``--smoke`` is the CI gate (digest equivalence, latency win,
  program/fallback accounting, same-seed determinism);
* ``python -m repro lint`` -- run the determinism AST linter
  (``repro.analysis``) over source paths; exit 0 clean, 1 findings,
  2 internal error;
* ``python -m repro sanitize`` -- run a named workload twice from one
  seed and bisect the first diverging kernel event (``--smoke`` is the
  CI replay-determinism gate);
* ``python -m repro examples`` -- list the example applications.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
_BENCHMARKS = _REPO_ROOT / "benchmarks"
_EXAMPLES = _REPO_ROOT / "examples"


def _experiment_ids() -> dict[str, pathlib.Path]:
    if not _BENCHMARKS.is_dir():
        return {}
    experiments = {}
    for path in sorted(_BENCHMARKS.glob("test_*.py")):
        identifier = path.stem.removeprefix("test_").split("_")[0]
        experiments.setdefault(identifier, path)
        experiments[path.stem.removeprefix("test_")] = path
    return experiments


def _first_doc_line(path: pathlib.Path) -> str:
    for line in path.read_text().splitlines():
        stripped = line.strip().strip('"')
        if stripped and not stripped.startswith("#"):
            return stripped
    return ""


def cmd_list() -> int:
    experiments = _experiment_ids()
    if not experiments:
        print("no benchmarks/ directory found -- run from a repository "
              "checkout")
        return 1
    seen = set()
    print(f"{'id':>26}  experiment")
    for identifier, path in sorted(experiments.items(),
                                   key=lambda kv: kv[1].stem):
        if path in seen or "_" in identifier:
            continue
        seen.add(path)
        print(f"{path.stem.removeprefix('test_'):>26}  "
              f"{_first_doc_line(path)}")
    return 0


def cmd_run(identifier: str) -> int:
    if identifier == "all":
        targets = [str(_BENCHMARKS)]
    else:
        experiments = _experiment_ids()
        path = experiments.get(identifier)
        if path is None:
            print(f"unknown experiment {identifier!r}; "
                  f"try `python -m repro list`")
            return 1
        targets = [str(path)]
    return subprocess.call(
        [sys.executable, "-m", "pytest", *targets,
         "--benchmark-only", "-q", "-s"])


def cmd_metrics(identifier: str | None, as_json: bool,
                queue_depth: int, threads: int, batches: int) -> int:
    """Dump a run's ``repro.obs`` metrics registry.

    With an experiment id, pretty-print the ``BENCH_<id>.json`` blob a
    previous benchmark run persisted.  Without one, stand up the
    measurement testbed (§5.1), run it instrumented, and dump the live
    registry -- the quickest way to see what the data path measures.
    """
    from repro.obs.export import format_table, snapshot

    if identifier is not None:
        # Short ids (fig07) resolve through the experiment table to the
        # full blob name the bench_metrics fixture writes.
        path = _experiment_ids().get(identifier)
        if path is not None:
            identifier = path.stem.removeprefix("test_")
        blob_path = _BENCHMARKS / "_results" / f"BENCH_{identifier}.json"
        if not blob_path.is_file():
            print(f"no metrics blob at {blob_path}; run the benchmark "
                  f"first: python -m repro run {identifier}")
            return 1
        blob = json.loads(blob_path.read_text())
        print(json.dumps(blob, indent=2, sort_keys=True) if as_json
              else format_table(blob))
        return 0

    from repro.core.config import RdmaConfig
    from repro.core.measurement import measure_config
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    config = RdmaConfig(threads, 0, 1, queue_depth)
    result = measure_config(config, 8, seed=7, metrics=registry,
                            batches_per_connection=batches)
    blob = snapshot(registry, name="metrics-demo",
                    extra={"config": repr(config),
                           "throughput_ops": result.throughput,
                           "latency_p50": result.latency_p50,
                           "latency_p99": result.latency_p99})
    print(json.dumps(blob, indent=2, sort_keys=True) if as_json
          else format_table(blob))
    return 0


def cmd_sweep(record_size: int, max_client_threads: int,
              max_queue_depth: int, workers: int | None, batches: int,
              warmup: int, seed: int, cache_dir: str | None,
              as_json: bool) -> int:
    """Measure a configuration grid through the sweep executor.

    Walks the powers-of-two grid of the requested configuration space,
    fans the measurements across the worker pool, and prints one row per
    grid point plus the executor's own counters.  Re-running the same
    sweep is near-instant: results come back from the content-addressed
    cache (``--cache-dir ''`` disables it).
    """
    from repro.core.space import ConfigSpace
    from repro.exec import ResultCache, SweepRunner, tasks_for
    from repro.obs.metrics import MetricsRegistry

    space = ConfigSpace(max_client_threads=max_client_threads,
                        record_size=record_size,
                        max_queue_depth=max_queue_depth,
                        min_queue_depth=min(4, max_queue_depth))
    configs = list(space.iter_grid())
    cache = None
    if cache_dir != "":
        root = (pathlib.Path(cache_dir) if cache_dir
                else _BENCHMARKS / "_results" / ".cache")
        cache = ResultCache(root)
    registry = MetricsRegistry()
    runner = SweepRunner(max_workers=workers, cache=cache, metrics=registry)
    tasks = tasks_for(configs, record_size=record_size, base_seed=seed,
                      seed_stride=0, batches_per_connection=batches,
                      warmup_batches=warmup)
    results = runner.run(tasks)

    rows = [{
        "config": {"s": c.server_threads, "c": c.client_threads,
                   "b": c.batch_size, "q": c.queue_depth},
        "latency_mean": r.latency_mean,
        "latency_p99": r.latency_p99,
        "throughput": r.throughput,
    } for c, r in zip(configs, results)]
    summary = {
        "mode": runner.last_mode,
        "tasks": len(tasks),
        "cache_hits": registry.counter("exec.cache_hits").value,
        "wall_seconds": registry.gauge("exec.wall_seconds").value,
    }
    if as_json:
        print(json.dumps({"schema": "repro.exec/v1", "grid": rows,
                          "exec": summary}, indent=2, sort_keys=True))
        return 0
    print(f"{'s':>4} {'c':>4} {'b':>5} {'q':>4} {'mean-lat':>11} "
          f"{'p99-lat':>11} {'tput':>10}")
    for row in rows:
        cfg = row["config"]
        print(f"{cfg['s']:>4} {cfg['c']:>4} {cfg['b']:>5} {cfg['q']:>4} "
              f"{row['latency_mean'] * 1e6:>9.1f}us "
              f"{row['latency_p99'] * 1e6:>9.1f}us "
              f"{row['throughput'] / 1e6:>8.2f}M")
    print(f"{summary['tasks']} tasks, "
          f"{summary['cache_hits']:.0f} cache hits, "
          f"{summary['mode']} mode, "
          f"{summary['wall_seconds']:.2f}s wall")
    return 0


def cmd_kernelbench(rounds: int, batches: int, scheduler: str,
                    min_steps_per_sec: float | None) -> int:
    """Micro-benchmark ``Environment.step()`` on the measurement workload.

    Runs the same instrumented ``measure_config`` call the sweep hot
    path is made of and prints kernel steps per wall-clock second -- the
    number CI logs so step-loop regressions are visible.

    ``--scheduler both`` A/B-compares the calendar queue against the
    legacy binary heap (same workload, same seed; the results are
    identical by the scheduler-equivalence suite, only wall-clock
    differs).  ``--min-steps-per-sec`` turns the run into a CI gate:
    exit 1 if the best rate of the (first-listed) scheduler falls below
    the floor.
    """
    from time import perf_counter

    from repro.core.config import RdmaConfig
    from repro.core.measurement import measure_config
    from repro.obs.metrics import MetricsRegistry

    config = RdmaConfig(4, 4, 16, 8)
    schedulers = (["calendar", "heap"] if scheduler == "both"
                  else [scheduler])
    bests: dict[str, float] = {}
    for sched in schedulers:
        best = 0.0
        for index in range(rounds):
            registry = MetricsRegistry()
            started = perf_counter()  # repro-lint: disable=D001 -- wall-clock benchmark harness, result never reaches sim state
            measure_config(config, 16, read_fraction=0.5,
                           batches_per_connection=batches,
                           warmup_batches=max(1, batches // 4),
                           seed=11, metrics=registry, scheduler=sched)
            elapsed = perf_counter() - started  # repro-lint: disable=D001 -- wall-clock benchmark harness
            steps = registry.gauge("kernel.steps").value
            rate = steps / elapsed
            best = max(best, rate)
            print(f"round {index} [{sched}]: {steps:,.0f} steps in "
                  f"{elapsed:.3f}s = {rate:,.0f} steps/sec")
        bests[sched] = best
        print(f"best [{sched}]: {best:,.0f} steps/sec")
    if len(bests) > 1:
        print(f"calendar/heap speedup: "
              f"{bests['calendar'] / bests['heap']:.2f}x")
    gated = bests[schedulers[0]]
    if min_steps_per_sec is not None and gated < min_steps_per_sec:
        print(f"FAIL: best {schedulers[0]} rate {gated:,.0f} steps/sec "
              f"is below the floor of {min_steps_per_sec:,.0f}")
        return 1
    return 0


def cmd_chaos(scenario: str | None, seed: int, as_json: bool,
              out: str | None) -> int:
    """Run one named fault-injection scenario (``repro.faults``).

    Prints the fault log and the availability summary; ``--json`` emits
    the whole report (events, summary, metrics snapshot, digest) as one
    machine-readable blob, and ``--out`` writes that blob to a file.
    Same seed, same scenario => bit-identical fault log (check the
    digest).  Without a scenario name, lists what is available.
    """
    from repro.faults import SCENARIOS, run_scenario

    if scenario is None or scenario == "list":
        print(f"{'scenario':>14}  description")
        for name in sorted(SCENARIOS):
            doc = (SCENARIOS[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:>14}  {doc}")
        return 0
    if scenario not in SCENARIOS:
        print(f"unknown chaos scenario {scenario!r}; "
              f"try `python -m repro chaos list`")
        return 1
    report = run_scenario(scenario, seed=seed)
    blob = {
        "schema": "repro.faults/v1",
        "scenario": report.scenario,
        "seed": report.seed,
        "sim_seconds": report.sim_now,
        "digest": report.log.digest(),
        "events": [event.to_dict() for event in report.log],
        "summary": report.summary,
        "metrics": report.metrics,
    }
    if out:
        pathlib.Path(out).write_text(
            json.dumps(blob, indent=2, sort_keys=True) + "\n")
    if as_json:
        print(json.dumps(blob, indent=2, sort_keys=True))
        return 0
    print(f"== chaos {report.scenario} (seed {report.seed}) ==")
    print("fault log:")
    for event in report.log:
        detail = " ".join(f"{k}={v}" for k, v in sorted(event.detail.items()))
        print(f"  {event.time:>10.4f}s  {event.kind:<22} {event.target:<16} "
              f"{detail}")
    print("summary:")
    for key in sorted(report.summary):
        print(f"  {key:<24} {report.summary[key]:g}")
    print(f"fault-log digest: {report.log.digest()}")
    if out:
        print(f"report written to {out}")
    return 0


def _shard_run(seed: int, shards: int, ops: int, replication: int,
               hot: bool, kill: bool) -> dict:
    """One deterministic fleet run; the blob both views print from."""
    from repro.core import Slo
    from repro.obs.metrics import MetricsRegistry
    from repro.shard import HotKeyPolicy, ShardRouter
    from repro.workloads.runner import run_router_workload
    from repro.workloads.scenarios import build_cluster
    from repro.workloads.ycsb import YcsbWorkload

    region = 1 << 20
    capacity = 2 * region
    record_bytes = 64
    slo = Slo(max_latency=1e-3, min_throughput=1e5, record_size=512)

    registry = MetricsRegistry()
    harness = build_cluster(seed=seed, metrics=registry)
    client = harness.redy_client("shard-cli")
    members = {
        f"s{i:02d}": client.create(capacity, slo, duration_s=3600.0,
                                   region_bytes=region)
        for i in range(shards)
    }
    router = ShardRouter(
        harness.env, members, slot_bytes=1 << 14,
        replication=replication, hedge_after_s=200e-6,
        hotkeys=HotKeyPolicy() if hot else None)
    router.load(0, bytes(range(256)) * (capacity // 256))

    workload = YcsbWorkload(
        "cli-zipfian", n_records=capacity // record_bytes,
        value_bytes=record_bytes, read_proportion=0.95,
        update_proportion=0.05, distribution="zipfian", theta=0.99)
    keys, is_read = workload.sample_ops(ops, harness.rngs.stream("ycsb"))
    result = run_router_workload(
        harness.env, router, keys=keys, is_read=is_read,
        record_bytes=record_bytes, concurrency=8 * shards)

    kill_stats = None
    if kill:
        victim_name = sorted(members)[1]
        acked = {}

        def kill_and_verify():
            # Acknowledge a write per sampled slot, then hard-kill the
            # victim and check every ack survives the rebalance.
            for slot in range(0, router.n_slots, 4):
                addr = slot * router.slot_bytes
                data = bytes([slot % 251]) * record_bytes
                res = yield router.write(addr, data)
                assert res.ok
                acked[addr] = data
            for vm in list(members[victim_name].allocation.vms):
                if vm.alive:
                    harness.allocator.fail(vm)
            while (router._membership_tail is not None
                   and not router._membership_tail.processed):
                yield router._membership_tail
            lost = 0
            for addr, data in acked.items():
                res = yield router.read(addr, len(data))
                if not (res.ok and res.data == data):
                    lost += 1
            return lost

        lost = harness.env.run_process(kill_and_verify())
        report = router.reports[-1]
        kill_stats = {
            "victim": victim_name,
            "acked_writes_checked": len(acked),
            "acked_writes_lost": lost,
            "rebalance": report.to_dict(),
            "members_after": router.members,
        }

    return {
        "schema": "repro.shard/v1",
        "seed": seed,
        "shards": shards,
        "replication": replication,
        "hotkeys": hot,
        "ops": ops,
        "throughput_ops_s": result.throughput,
        "latency_mean_s": result.latency_mean,
        "latency_p99_s": result.latency_p99,
        "reads": result.reads,
        "writes": result.writes,
        "failed": result.failed,
        "hot_slots": {str(slot): list(extras)
                      for slot, extras in sorted(
                          router.hot_slots().items())},
        "kill": kill_stats,
        "metrics": registry.snapshot(),
    }


def cmd_shard(seed: int, shards: int, ops: int, replication: int,
              no_hotkeys: bool, smoke: bool, as_json: bool,
              out: str | None) -> int:
    """Drive zipfian YCSB traffic across the sharded scale-out tier.

    The default run reports fleet throughput/latency and per-shard
    load; ``--smoke`` is the CI gate: it also hard-kills a member
    mid-fleet (replication must keep every acknowledged write), then
    repeats the run to assert bit-identical metrics.
    """
    hot = not no_hotkeys
    if smoke:
        shards, ops, replication = min(shards, 4), min(ops, 3000), 2
    blob = _shard_run(seed, shards, ops, replication, hot, kill=smoke)

    if smoke:
        failures = []
        if blob["failed"]:
            failures.append(f"{blob['failed']} workload ops failed")
        kill = blob["kill"]
        if kill["acked_writes_lost"]:
            failures.append(
                f"{kill['acked_writes_lost']} acknowledged writes lost")
        if kill["rebalance"]["lost_slots"]:
            failures.append(
                f"{kill['rebalance']['lost_slots']} slots lost in "
                "rebalance")
        if len(kill["members_after"]) != shards - 1:
            failures.append("victim still on the ring")
        replay = _shard_run(seed, shards, ops, replication, hot,
                            kill=smoke)
        if replay["metrics"] != blob["metrics"]:
            failures.append("same-seed replay diverged")
        for line in failures:
            print(f"FAIL: {line}")
        if not failures:
            print(f"shard smoke OK: {shards} shards, {blob['ops']} ops, "
                  f"{blob['throughput_ops_s']:.0f} ops/s, kill of "
                  f"{kill['victim']} survived with 0 lost acks, "
                  "replay bit-identical")
        if out:
            pathlib.Path(out).write_text(
                json.dumps(blob, indent=2, sort_keys=True) + "\n")
        return 1 if failures else 0

    if out:
        pathlib.Path(out).write_text(
            json.dumps(blob, indent=2, sort_keys=True) + "\n")
    if as_json:
        print(json.dumps(blob, indent=2, sort_keys=True))
        return 0
    print(f"== shard fleet (seed {seed}) ==")
    print(f"shards={shards} replication={replication} "
          f"hotkeys={'on' if hot else 'off'} ops={blob['ops']}")
    print(f"throughput: {blob['throughput_ops_s']:,.0f} ops/s   "
          f"mean {blob['latency_mean_s'] * 1e6:.1f} us   "
          f"p99 {blob['latency_p99_s'] * 1e6:.1f} us   "
          f"failed {blob['failed']}")
    shard_reads = {name: int(m["value"])
                   for name, m in blob["metrics"].items()
                   if name.startswith("shard.reads{")}
    if shard_reads:
        print("per-shard reads:")
        for name in sorted(shard_reads):
            label = name.split('"')[1]
            print(f"  {label:<6} {shard_reads[name]:>8}")
    if blob["hot_slots"]:
        print(f"hot slots: {', '.join(sorted(blob['hot_slots']))}")
    if out:
        print(f"report written to {out}")
    return 0


def _tenants_run(seed: int, ops: int, abusive: bool, kill: bool) -> dict:
    """One deterministic multi-tenant run; pure in (args).

    Three tenants (premium / standard / scavenger) share a 3-member
    replication=1 fleet through a :class:`~repro.tenant.TenantTier`.
    ``abusive`` adds an open-loop scavenger flood at 10x its admitted
    rate; ``kill`` hard-kills one member mid-run and then verifies that
    every acknowledged write is still readable after recovery.
    """
    from repro.core import Slo
    from repro.obs.metrics import MetricsRegistry
    from repro.shard import ShardRouter
    from repro.tenant import TenantSpec, TenantTier
    from repro.workloads.scenarios import build_cluster

    region = 1 << 18
    capacity = 2 * region
    record = 64
    namespace = 64 * 1024
    slo = Slo(max_latency=1e-3, min_throughput=1e5, record_size=512)

    registry = MetricsRegistry()
    harness = build_cluster(seed=seed, metrics=registry)
    env = harness.env
    client = harness.redy_client("tenant-cli")
    members = {
        f"s{i:02d}": client.create(capacity, slo, duration_s=3600.0,
                                   region_bytes=region)
        for i in range(3)
    }
    router = ShardRouter(env, members, slot_bytes=1 << 12, replication=1)
    tier = TenantTier(env, router)
    tier.register(TenantSpec(name="prem", namespace_bytes=namespace,
                             rate_per_s=400_000.0, burst=64.0,
                             slo_class="premium", probe_interval_s=2e-3))
    tier.register(TenantSpec(name="std", namespace_bytes=namespace,
                             rate_per_s=200_000.0, burst=32.0,
                             slo_class="standard", probe_interval_s=2e-3))
    scav_rate = 20_000.0
    tier.register(TenantSpec(name="scav", namespace_bytes=namespace,
                             rate_per_s=scav_rate, burst=16.0,
                             max_queue=32, slo_class="scavenger",
                             probe_interval_s=2e-3))
    seed_bytes = bytes(range(256)) * (namespace // 256)
    for name in ("prem", "std", "scav"):
        tier.load(name, 0, seed_bytes)

    workers_per_tenant = 4
    latencies = {"prem": [], "std": []}
    acked = {"prem": {}, "std": {}}
    progress = {"done": 0, "killed": False, "live_workers": 0}
    kill_after = ops  # half of the two tracked tenants' combined ops

    def worker(tenant: str, index: int, rng, n_ops: int):
        progress["live_workers"] += 1
        records = namespace // record
        for op in range(n_ops):
            rec = int(rng.integers(0, records))
            # Disjoint per-worker address sets: last-acked is unique.
            rec = (rec - rec % workers_per_tenant + index) % records
            addr = rec * record
            if op % 4 == 0:
                payload = bytes([(index * 37 + op) % 251]) * record
                result = yield tier.write(tenant, addr, payload)
                if result.ok:
                    acked[tenant][addr] = payload
            else:
                result = yield tier.read(tenant, addr, record)
                if result.ok:
                    latencies[tenant].append(result.latency)
            progress["done"] += 1
            if (kill and not progress["killed"]
                    and progress["done"] >= kill_after):
                progress["killed"] = True
                for vm in list(members["s01"].allocation.vms):
                    if vm.alive:
                        harness.allocator.fail(vm)
        progress["live_workers"] -= 1

    def abusive_load():
        # Open loop at 10x the scavenger's admitted rate: nothing
        # awaits the results, so shedding is what bounds the queue.
        interval = 1.0 / (10.0 * scav_rate)
        rng = harness.rngs.stream("tenant-cli-abusive")
        while progress["live_workers"] > 0:
            addr = int(rng.integers(0, namespace // record)) * record
            tier.write("scav", addr, b"\xab" * record)
            yield env.timeout(interval)

    per_worker = max(1, ops // workers_per_tenant)
    for tenant in ("prem", "std"):
        for index in range(workers_per_tenant):
            env.process(
                worker(tenant, index,
                       harness.rngs.stream(f"tenant-cli:{tenant}:{index}"),
                       per_worker),
                name=f"tenant-cli:{tenant}:{index}")
    if abusive:
        env.process(abusive_load(), name="tenant-cli-abusive")
    env.run()

    def settle_and_verify():
        while (router._membership_tail is not None
               and not router._membership_tail.processed):
            yield router._membership_tail
        while any(tier.tenant(n).degraded for n in tier.tenants):
            yield env.timeout(1e-3)
        lost = 0
        for tenant in ("prem", "std"):
            for addr, payload in sorted(acked[tenant].items()):
                result = yield tier.read(tenant, addr, record)
                if not (result.ok and result.data == payload):
                    lost += 1
        return lost

    lost = env.run_process(settle_and_verify())

    def p99(values):
        ordered = sorted(values)
        return ordered[int(0.99 * (len(ordered) - 1))] if ordered else 0.0

    blob = {
        "schema": "repro.tenants/v1",
        "seed": seed,
        "ops": ops,
        "abusive": abusive,
        "kill": kill,
        "premium_read_p99_s": p99(latencies["prem"]),
        "standard_read_p99_s": p99(latencies["std"]),
        "acked_writes_checked": sum(len(a) for a in acked.values()),
        "acked_writes_lost": lost,
        "members_after": router.members,
        "tenants": {name: tier.stats(name) for name in tier.tenants},
        "metrics": registry.snapshot(),
    }
    if kill and router.reports:
        blob["rebalance"] = router.reports[-1].to_dict()
    return blob


def cmd_tenants(seed: int, ops: int, smoke: bool, as_json: bool,
                out: str | None) -> int:
    """Drive mixed-SLO tenants through the multi-tenant serving tier.

    The default run reports per-tenant admission/latency under an
    abusive scavenger; ``--smoke`` is the CI gate: a quiet baseline vs
    an abusive run must keep the premium p99 within budget, a mid-run
    member kill must degrade to fail-open with zero lost acked writes
    and re-promote, and a same-seed replay must be bit-identical.
    """
    if smoke:
        ops = min(ops, 2400)
        #: Budget: the abusive tenant may not move the quiet premium
        #: tenant's read p99 by more than this factor (plus a 2 us
        #: absolute floor for tiny-sample jitter).
        budget_factor = 1.5
        baseline = _tenants_run(seed, ops, abusive=False, kill=False)
        noisy = _tenants_run(seed, ops, abusive=True, kill=False)
        chaos = _tenants_run(seed, ops, abusive=True, kill=True)
        replay = _tenants_run(seed, ops, abusive=True, kill=True)

        failures = []
        base_p99 = baseline["premium_read_p99_s"]
        noisy_p99 = noisy["premium_read_p99_s"]
        budget = max(base_p99 * budget_factor, base_p99 + 2e-6)
        if noisy_p99 > budget:
            failures.append(
                f"noisy-neighbor moved premium read p99 "
                f"{base_p99 * 1e6:.2f} -> {noisy_p99 * 1e6:.2f} us "
                f"(budget {budget * 1e6:.2f} us)")
        if not noisy["tenants"]["scav"]["shed"]:
            failures.append("abusive scavenger was never shed")
        if noisy["tenants"]["prem"]["shed"]:
            failures.append("quiet premium tenant was shed")
        prem_chaos = chaos["tenants"]["prem"]
        if not prem_chaos["degradations"]:
            failures.append("member kill did not degrade the premium "
                            "tenant")
        if prem_chaos["degradations"] > prem_chaos["repromotions"]:
            failures.append("premium tenant was not re-promoted")
        if not prem_chaos["fail_open_reads"]:
            failures.append("no reads failed open during degradation")
        if chaos["acked_writes_lost"]:
            failures.append(f"{chaos['acked_writes_lost']} acknowledged "
                            "writes lost across the kill")
        if len(chaos["members_after"]) != 2:
            failures.append("victim still on the ring")
        if replay["metrics"] != chaos["metrics"]:
            failures.append("same-seed replay diverged")
        for line in failures:
            print(f"FAIL: {line}")
        if not failures:
            print(f"tenants smoke OK: premium p99 "
                  f"{base_p99 * 1e6:.2f} -> {noisy_p99 * 1e6:.2f} us under "
                  f"10x abuse (budget {budget * 1e6:.2f} us), "
                  f"{noisy['tenants']['scav']['shed']} sheds, kill "
                  f"survived with 0 lost acks and "
                  f"{prem_chaos['repromotions']} re-promotion(s), "
                  "replay bit-identical")
        if out:
            pathlib.Path(out).write_text(
                json.dumps(chaos, indent=2, sort_keys=True) + "\n")
        return 1 if failures else 0

    blob = _tenants_run(seed, ops, abusive=True, kill=False)
    if out:
        pathlib.Path(out).write_text(
            json.dumps(blob, indent=2, sort_keys=True) + "\n")
    if as_json:
        print(json.dumps(blob, indent=2, sort_keys=True))
        return 0
    print(f"== tenant tier (seed {seed}) ==")
    print(f"premium read p99 {blob['premium_read_p99_s'] * 1e6:.2f} us   "
          f"standard read p99 {blob['standard_read_p99_s'] * 1e6:.2f} us")
    print(f"{'tenant':>8} {'admitted':>9} {'delayed':>8} {'shed':>8} "
          f"{'fail-open':>9} {'degraded':>8}")
    for name, stats in sorted(blob["tenants"].items()):
        print(f"{name:>8} {stats['admitted']:>9} {stats['delayed']:>8} "
              f"{stats['shed']:>8} {stats['fail_open_reads']:>9} "
              f"{stats['degradations']:>8}")
    if out:
        print(f"report written to {out}")
    return 0


def _verbs_run(seed: int, ops: int, programs: bool) -> dict:
    """One dependent-GET pass on a fresh testbed; pure in (args)."""
    import hashlib
    import struct

    from repro.core import Slo
    from repro.obs.metrics import MetricsRegistry
    from repro.workloads.scenarios import build_cluster

    region = 1 << 20
    capacity = 4 * region
    record_bytes = 256
    registry = MetricsRegistry()
    harness = build_cluster(seed=seed, metrics=registry)
    env = harness.env
    client = harness.redy_client("verbs-smoke")
    cache = client.create(
        capacity, Slo(max_latency=1e-3, min_throughput=1e5,
                      record_size=record_bytes),
        duration_s=3600.0, region_bytes=region,
        use_verb_programs=programs)

    digest = hashlib.sha256()
    stats = {"ok": 0, "failed": 0, "latency_s": 0.0}
    n_regions = capacity // region

    def body():
        for index in range(ops):
            reg = index % n_regions
            pointer_addr = reg * region + 64
            # Region-local record offset; vary it so the chase actually
            # has to dereference the pointer word, not a fixed address.
            local = 4096 + (index % 7) * 512
            payload = bytes((index + j) % 251 for j in range(record_bytes))
            wrote = yield cache.write(reg * region + local, payload)
            swung = yield cache.write(pointer_addr,
                                      struct.pack("<Q", local))
            read = yield cache.dependent_read(pointer_addr, record_bytes)
            if wrote.ok and swung.ok and read.ok and read.data == payload:
                stats["ok"] += 1
                stats["latency_s"] += read.latency
                digest.update(read.data)
            else:
                stats["failed"] += 1

    env.run_process(body(), name="verbs-workload")

    def metric(name: str) -> int:
        value = registry.get(name)
        return int(value.value) if value is not None else 0

    mean_us = (stats["latency_s"] / stats["ok"] * 1e6
               if stats["ok"] else 0.0)
    return {
        "transport": "program" if programs else "two-hop",
        "seed": seed,
        "ops": ops,
        "ok": stats["ok"],
        "failed": stats["failed"],
        "digest": digest.hexdigest(),
        "read_latency_mean_us": mean_us,
        "programs": metric("engine.programs"),
        "two_hop_reads": metric("engine.two_hop_reads"),
        "program_fallbacks": metric("engine.program_fallbacks"),
        "program_cas_aborts": metric("engine.program_cas_aborts"),
    }


def cmd_verbs(seed: int, ops: int, smoke: bool, as_json: bool) -> int:
    """A/B dependent GETs: two-hop transport vs one-RTT verb programs.

    Runs the same pointer-chase workload (write record, swing pointer
    word, dependent-read it back) under both transports.  ``--smoke``
    is the CI gate: byte-identical read-back digests, a program-path
    latency win, clean program/fallback accounting, and a same-seed
    replay that must be bit-identical.
    """
    if smoke:
        ops = min(ops, 48)
    two_hop = _verbs_run(seed, ops, programs=False)
    program = _verbs_run(seed, ops, programs=True)

    if smoke:
        failures = []
        if two_hop["failed"] or program["failed"]:
            failures.append(
                f"failed ops: two-hop {two_hop['failed']}, "
                f"program {program['failed']}")
        if two_hop["digest"] != program["digest"]:
            failures.append("transport digests diverge: "
                            "program reads returned different bytes")
        if program["read_latency_mean_us"] \
                >= two_hop["read_latency_mean_us"]:
            failures.append(
                f"no latency win: program "
                f"{program['read_latency_mean_us']:.2f}us vs two-hop "
                f"{two_hop['read_latency_mean_us']:.2f}us")
        if program["programs"] != program["ok"]:
            failures.append(
                f"{program['ok']} chases but {program['programs']} "
                "programs issued")
        if program["program_fallbacks"] or program["program_cas_aborts"]:
            failures.append("unexpected aborts/fallbacks on a quiet "
                            "cluster")
        if two_hop["programs"]:
            failures.append("two-hop run issued verb programs")
        if two_hop["two_hop_reads"] != two_hop["ok"]:
            failures.append(
                f"{two_hop['ok']} chases but {two_hop['two_hop_reads']} "
                "two-hop reads")
        replay = _verbs_run(seed, ops, programs=True)
        if replay != program:
            failures.append("same-seed replay diverged")
        for line in failures:
            print(f"FAIL: {line}")
        if not failures:
            ratio = (two_hop["read_latency_mean_us"]
                     / program["read_latency_mean_us"])
            print(f"verbs smoke OK: {ops} chases, digests equal, "
                  f"program {program['read_latency_mean_us']:.2f}us vs "
                  f"two-hop {two_hop['read_latency_mean_us']:.2f}us "
                  f"({ratio:.2f}x), replay bit-identical")
        return 1 if failures else 0

    if as_json:
        print(json.dumps({"two_hop": two_hop, "program": program},
                         indent=2, sort_keys=True))
        return 0
    print(f"== dependent GETs, two-hop vs verb programs (seed {seed}) ==")
    for blob in (two_hop, program):
        print(f"{blob['transport']:>8}: {blob['ok']}/{blob['ops']} ok, "
              f"mean read {blob['read_latency_mean_us']:.2f} us, "
              f"programs={blob['programs']} "
              f"two_hop_reads={blob['two_hop_reads']} "
              f"fallbacks={blob['program_fallbacks']}")
    ratio = (two_hop["read_latency_mean_us"]
             / max(program["read_latency_mean_us"], 1e-12))
    print(f"latency ratio (two-hop / program): {ratio:.2f}x")
    print(f"digests {'match' if two_hop['digest'] == program['digest'] else 'DIVERGE'}")
    return 0


def cmd_connstorm(seed: int, clients: int, reads: int, smoke: bool,
                  as_json: bool, out: str | None) -> int:
    """Connection-storm ablation: naive QPs vs pooled vs pooled+lazy.

    Slams one cache tier with ``clients`` sessions arriving inside a
    50 ms window under each pool strategy and reports the TTFB
    percentiles -- the control-plane bill each strategy leaves on the
    open path.  ``--smoke`` is the CI gate: every storm completes with
    zero failures and zero leaked QPs/regions, pooling cuts both p99
    TTFB and registrations vs the naive baseline, the demux never
    misroutes, and a same-seed replay is bit-identical.
    """
    from repro.cplane import run_connection_storm
    from repro.cplane.pool import STRATEGIES

    if smoke:
        clients = min(clients, 1200)
    runs = {strategy: run_connection_storm(seed, clients=clients,
                                           strategy=strategy,
                                           reads_per_session=reads)
            for strategy in STRATEGIES}
    naive = runs["per-client"]
    lazy = runs["pooled-lazy"]

    if smoke:
        failures = []
        for strategy, blob in runs.items():
            if blob["completed"] != clients or blob["failures"]:
                failures.append(
                    f"{strategy}: {blob['completed']}/{clients} sessions, "
                    f"{blob['failures']} failed reads")
            if blob["leaked_qps"] or blob["leaked_client_regions"]:
                failures.append(
                    f"{strategy}: leaked {blob['leaked_qps']} QPs / "
                    f"{blob['leaked_client_regions']} regions after "
                    "harvest")
            if blob["pool_totals"].get("demux_misroutes"):
                failures.append(f"{strategy}: completion demux misrouted")
        if lazy["ttfb_us"]["p99"] >= naive["ttfb_us"]["p99"]:
            failures.append(
                f"no p99 win: pooled-lazy {lazy['ttfb_us']['p99']:.1f}us "
                f"vs naive {naive['ttfb_us']['p99']:.1f}us")
        if lazy["mr_registrations"] >= naive["mr_registrations"]:
            failures.append(
                f"pooling did not amortize registrations "
                f"({lazy['mr_registrations']} vs "
                f"{naive['mr_registrations']})")
        replay = run_connection_storm(seed, clients=clients,
                                      strategy="pooled-lazy",
                                      reads_per_session=reads)
        if replay != lazy:
            failures.append("same-seed storm replay diverged")
        for line in failures:
            print(f"FAIL: {line}")
        if not failures:
            ratio = naive["ttfb_us"]["p99"] / max(lazy["ttfb_us"]["p99"],
                                                  1e-9)
            print(f"connstorm smoke OK: {clients} clients, p99 TTFB "
                  f"naive {naive['ttfb_us']['p99']:.1f}us vs pooled-lazy "
                  f"{lazy['ttfb_us']['p99']:.1f}us ({ratio:.1f}x), "
                  f"0 leaks, replay bit-identical")
        if out:
            pathlib.Path(out).write_text(
                json.dumps(runs, indent=2, sort_keys=True) + "\n")
        return 1 if failures else 0

    if out:
        pathlib.Path(out).write_text(
            json.dumps(runs, indent=2, sort_keys=True) + "\n")
    if as_json:
        print(json.dumps(runs, indent=2, sort_keys=True))
        return 0
    print(f"== connection storm, {clients} clients in 50 ms "
          f"(seed {seed}) ==")
    print(f"{'strategy':>12} {'p50 us':>9} {'p99 us':>9} {'max us':>9} "
          f"{'QPs':>6} {'estab':>6} {'MRs':>6} {'ctx miss':>8}")
    for strategy in STRATEGIES:
        blob = runs[strategy]
        print(f"{strategy:>12} {blob['ttfb_us']['p50']:>9.1f} "
              f"{blob['ttfb_us']['p99']:>9.1f} "
              f"{blob['ttfb_us']['max']:>9.1f} "
              f"{blob['pool_totals'].get('qps_created', 0):>6} "
              f"{blob['qp_establishments']:>6} "
              f"{blob['mr_registrations']:>6} "
              f"{blob['qp_context_misses']:>8}")
    if out:
        print(f"report written to {out}")
    return 0


def cmd_lint(paths: list[str], fmt: str, rules: str | None) -> int:
    """Run the determinism AST linter (``repro.analysis``) over paths.

    Defaults to the ``src/repro`` tree.  Exit codes follow the analysis
    contract: 0 clean, 1 findings, 2 internal error (the latter raised
    out of here and mapped in :func:`main`).
    """
    from repro.analysis import format_findings, lint_paths

    targets = paths or [str(_REPO_ROOT / "src" / "repro")]
    rule_ids = ([part.strip() for part in rules.split(",") if part.strip()]
                if rules else None)
    findings, files = lint_paths(targets, rules=rule_ids)
    print(format_findings(findings, fmt=fmt, tool="repro-lint"))
    if fmt == "text":
        print(f"scanned {len(files)} file(s)")
    return 1 if findings else 0


def cmd_sanitize(workload: str, seed: int, fmt: str, smoke: bool) -> int:
    """Replay-determinism gate: run a workload twice, diff the traces.

    ``--smoke`` runs the quick CI set: measurement path + chaos scenario
    replay determinism, plus a heap-vs-calendar run of the measurement
    workload pinning that the kernel's event-list implementation is not
    observable in event ordering.  Otherwise one named workload; ``list``
    enumerates them.
    """
    from repro.analysis import format_findings, sanitize, sanitize_schedulers
    from repro.analysis.sanitize import WORKLOADS

    if workload == "list":
        print(f"{'workload':>18}  description")
        for name in sorted(WORKLOADS):
            doc = (WORKLOADS[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:>18}  {doc}")
        return 0
    if smoke:
        names = ["measure", "measure-programs", "measure-tenants",
                 "measure-cplane", "chaos-spot-churn"]
    elif workload not in WORKLOADS:
        print(f"unknown sanitize workload {workload!r}; "
              f"try `python -m repro sanitize list`")
        return 2
    else:
        names = [workload]

    findings = []
    for name in names:
        report = sanitize(WORKLOADS[name], seed=seed, label=name)
        findings.extend(report.to_findings())
        if fmt == "text":
            print(report.describe())
    if smoke:
        report = sanitize_schedulers(WORKLOADS["measure"], seed=seed,
                                     label="measure")
        findings.extend(report.to_findings())
        if fmt == "text":
            print(report.describe())
    if fmt == "json":
        print(format_findings(findings, fmt="json", tool="repro-sanitize"))
    return 1 if findings else 0


def cmd_examples() -> int:
    if not _EXAMPLES.is_dir():
        print("no examples/ directory found")
        return 1
    for path in sorted(_EXAMPLES.glob("*.py")):
        print(f"python examples/{path.name:<28} {_first_doc_line(path)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Redy (VLDB 2021) reproduction launcher")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproduction experiments")
    run = sub.add_parser("run", help="regenerate one experiment (or all)")
    run.add_argument("experiment", help="experiment id, e.g. fig03, or all")
    metrics = sub.add_parser(
        "metrics",
        help="dump a run's repro.obs metrics registry")
    metrics.add_argument(
        "experiment", nargs="?", default=None,
        help="saved bench blob to show (e.g. fig07); omit to run a live "
             "instrumented measurement")
    metrics.add_argument("--json", action="store_true", dest="as_json",
                         help="raw JSON instead of the table view")
    metrics.add_argument("--queue-depth", type=int, default=4)
    metrics.add_argument("--threads", type=int, default=1)
    metrics.add_argument("--batches", type=int, default=120,
                         help="measured batches per connection")
    sweep = sub.add_parser(
        "sweep",
        help="measure a configuration grid via the parallel sweep executor")
    sweep.add_argument("--record-size", type=int, default=64)
    sweep.add_argument("--max-client-threads", type=int, default=4)
    sweep.add_argument("--max-queue-depth", type=int, default=8)
    sweep.add_argument("--workers", type=int, default=None,
                       help="pool size (default: cpu count; 1 = serial)")
    sweep.add_argument("--batches", type=int, default=30,
                       help="measured batches per connection")
    sweep.add_argument("--warmup", type=int, default=10)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--cache-dir", default=None,
                       help="result cache directory (default: "
                            "benchmarks/_results/.cache; '' disables)")
    sweep.add_argument("--json", action="store_true", dest="as_json")
    kernelbench = sub.add_parser(
        "kernelbench",
        help="micro-benchmark kernel steps/sec on the measurement workload")
    kernelbench.add_argument("--rounds", type=int, default=3)
    kernelbench.add_argument("--batches", type=int, default=120,
                             help="measured batches per connection")
    kernelbench.add_argument("--scheduler", default="calendar",
                             choices=["calendar", "heap", "both"],
                             help="event-list implementation to time "
                                  "('both' A/B-compares; default: "
                                  "calendar)")
    kernelbench.add_argument("--min-steps-per-sec", type=float,
                             default=None,
                             help="CI regression floor: exit 1 if the "
                                  "best rate falls below this")
    chaos = sub.add_parser(
        "chaos",
        help="run a named fault-injection scenario (repro.faults)")
    chaos.add_argument(
        "scenario", nargs="?", default=None,
        help="scenario name (omit or use 'list' to enumerate)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the full report as one JSON blob")
    chaos.add_argument("--out", default=None,
                       help="also write the JSON report to this file")
    shard = sub.add_parser(
        "shard",
        help="drive YCSB traffic across the sharded scale-out tier")
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument("--shards", type=int, default=4)
    shard.add_argument("--ops", type=int, default=6000)
    shard.add_argument("--replication", type=int, default=2)
    shard.add_argument("--no-hotkeys", action="store_true",
                       help="disable hot-key replication")
    shard.add_argument("--smoke", action="store_true",
                       help="CI gate: kill-survival + determinism checks")
    shard.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the full report as one JSON blob")
    shard.add_argument("--out", default=None,
                       help="also write the JSON report to this file")
    tenants = sub.add_parser(
        "tenants",
        help="drive mixed-SLO tenants through the serving tier")
    tenants.add_argument("--seed", type=int, default=0)
    tenants.add_argument("--ops", type=int, default=2400,
                         help="tracked ops per tenant (prem + std)")
    tenants.add_argument("--smoke", action="store_true",
                         help="CI gate: isolation + degradation "
                              "fail-open + determinism checks")
    tenants.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the full report as one JSON blob")
    tenants.add_argument("--out", default=None,
                         help="also write the JSON report to this file")
    verbs = sub.add_parser(
        "verbs",
        help="A/B dependent GETs: two-hop vs one-RTT verb programs")
    verbs.add_argument("--seed", type=int, default=0)
    verbs.add_argument("--ops", type=int, default=200,
                       help="pointer chases per transport")
    verbs.add_argument("--smoke", action="store_true",
                       help="CI gate: digest equivalence + latency win "
                            "+ determinism checks")
    verbs.add_argument("--json", action="store_true", dest="as_json",
                       help="emit both runs as one JSON blob")
    connstorm = sub.add_parser(
        "connstorm",
        help="connection-storm ablation: naive vs pooled vs pooled+lazy")
    connstorm.add_argument("--seed", type=int, default=0)
    connstorm.add_argument("--clients", type=int, default=20000,
                           help="sessions arriving inside the 50 ms window")
    connstorm.add_argument("--reads", type=int, default=1,
                           help="reads per session (spreads NIC context "
                                "touches)")
    connstorm.add_argument("--smoke", action="store_true",
                           help="CI gate: completion + leak + p99 win "
                                "+ determinism checks")
    connstorm.add_argument("--json", action="store_true", dest="as_json",
                           help="emit all three runs as one JSON blob")
    connstorm.add_argument("--out", default=None,
                           help="write the JSON blob to this path")
    lint = sub.add_parser(
        "lint",
        help="run the determinism AST linter (repro.analysis)")
    lint.add_argument("paths", nargs="*", default=None,
                      help="files/directories to lint (default: src/repro)")
    lint.add_argument("--format", choices=["text", "json"], default="text",
                      dest="fmt")
    lint.add_argument("--rules", default=None,
                      help="comma-separated rule ids to enable "
                           "(default: all, e.g. D001,D003)")
    sanitize = sub.add_parser(
        "sanitize",
        help="replay a workload twice and bisect the first divergence")
    sanitize.add_argument(
        "workload", nargs="?", default="measure",
        help="workload name ('list' to enumerate; default: measure)")
    sanitize.add_argument("--seed", type=int, default=0)
    sanitize.add_argument("--format", choices=["text", "json"],
                          default="text", dest="fmt")
    sanitize.add_argument("--smoke", action="store_true",
                          help="CI gate: measurement + chaos replay "
                               "determinism")
    sub.add_parser("examples", help="list example applications")
    args = parser.parse_args(argv)

    try:
        if args.command == "list":
            return cmd_list()
        if args.command == "run":
            return cmd_run(args.experiment)
        if args.command == "metrics":
            return cmd_metrics(args.experiment, args.as_json,
                               args.queue_depth, args.threads, args.batches)
        if args.command == "sweep":
            return cmd_sweep(args.record_size, args.max_client_threads,
                             args.max_queue_depth, args.workers,
                             args.batches, args.warmup, args.seed,
                             args.cache_dir, args.as_json)
        if args.command == "kernelbench":
            return cmd_kernelbench(args.rounds, args.batches,
                                   args.scheduler, args.min_steps_per_sec)
        if args.command == "chaos":
            return cmd_chaos(args.scenario, args.seed, args.as_json,
                             args.out)
        if args.command == "shard":
            return cmd_shard(args.seed, args.shards, args.ops,
                             args.replication, args.no_hotkeys,
                             args.smoke, args.as_json, args.out)
        if args.command == "tenants":
            return cmd_tenants(args.seed, args.ops, args.smoke,
                               args.as_json, args.out)
        if args.command == "verbs":
            return cmd_verbs(args.seed, args.ops, args.smoke, args.as_json)
        if args.command == "connstorm":
            return cmd_connstorm(args.seed, args.clients, args.reads,
                                 args.smoke, args.as_json, args.out)
        if args.command == "lint":
            return cmd_lint(args.paths, args.fmt, args.rules)
        if args.command == "sanitize":
            return cmd_sanitize(args.workload, args.seed, args.fmt,
                                args.smoke)
        return cmd_examples()
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0
    except Exception as exc:  # noqa: BLE001 - analysis exit-code contract
        if args.command in ("lint", "sanitize"):
            print(f"internal error: {type(exc).__name__}: {exc}")
            return 2
        raise


if __name__ == "__main__":
    sys.exit(main())
