"""Key-choosing distributions, following the YCSB definitions.

The paper's workloads draw keys either uniformly or from a Zipfian
distribution with theta = 0.99 (§8.3).  The Zipfian implementation is
the standard Gray et al. rejection-free sampler YCSB uses, including the
*scrambled* variant that hashes ranks so popularity is spread across the
key space (which is how YCSB actually issues them).
"""

from __future__ import annotations


import numpy as np

__all__ = [
    "LatestChooser",
    "ScrambledZipfianChooser",
    "UniformChooser",
    "ZipfianChooser",
]

#: YCSB's default Zipfian constant.
DEFAULT_THETA = 0.99

#: Knuth multiplicative hash constant, as in YCSB's FNV-based scramble.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1


def fnv1a_64(value: int) -> int:
    """FNV-1a over the 8 little-endian bytes of ``value``."""
    data = value & _MASK
    result = _FNV_OFFSET
    for _ in range(8):
        result ^= data & 0xFF
        result = (result * _FNV_PRIME) & _MASK
        data >>= 8
    return result


class UniformChooser:
    """Every key equally likely."""

    def __init__(self, n_keys: int, rng: np.random.Generator):
        if n_keys < 1:
            raise ValueError("need at least one key")
        self.n_keys = n_keys
        self.rng = rng

    def sample(self, count: int) -> np.ndarray:
        return self.rng.integers(0, self.n_keys, size=count)


class ZipfianChooser:
    """Zipfian over ranks 0..n-1: rank r drawn with weight 1/(r+1)^theta.

    Uses the Gray et al. quantile method (the YCSB generator): two
    uniform draws map to a rank via the zeta-based closed form, costing
    O(1) per sample after an O(n) zeta precomputation.
    """

    def __init__(self, n_keys: int, rng: np.random.Generator,
                 theta: float = DEFAULT_THETA):
        if n_keys < 1:
            raise ValueError("need at least one key")
        if not 0 < theta < 1:
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        self.n_keys = n_keys
        self.rng = rng
        self.theta = theta
        self.zetan = self._zeta(n_keys, theta)
        self.zeta2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = ((1.0 - (2.0 / n_keys) ** (1.0 - theta))
                    / (1.0 - self.zeta2 / self.zetan))

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        return float(np.sum(1.0 / ranks ** theta))

    def sample(self, count: int) -> np.ndarray:
        u = self.rng.random(count)
        uz = u * self.zetan
        ranks = np.empty(count, dtype=np.int64)
        # Region 1: rank 0; region 2: rank 1; region 3: the power curve.
        first = uz < 1.0
        second = (~first) & (uz < 1.0 + 0.5 ** self.theta)
        rest = ~(first | second)
        ranks[first] = 0
        ranks[second] = 1
        ranks[rest] = (self.n_keys
                       * (self.eta * u[rest] - self.eta + 1.0) ** self.alpha
                       ).astype(np.int64)
        return np.clip(ranks, 0, self.n_keys - 1)

    def hit_fraction(self, hot_keys: int) -> float:
        """Analytic probability that a draw lands in the hottest
        ``hot_keys`` ranks -- used to sanity-check measured hit ratios."""
        if hot_keys >= self.n_keys:
            return 1.0
        return self._zeta(max(hot_keys, 1), self.theta) / self.zetan


class ScrambledZipfianChooser:
    """Zipfian popularity spread over the key space by FNV hashing.

    This is what YCSB actually issues: rank popularity is Zipfian but
    the popular items are scattered, so hotness is not correlated with
    insertion order.
    """

    def __init__(self, n_keys: int, rng: np.random.Generator,
                 theta: float = DEFAULT_THETA):
        self.n_keys = n_keys
        self._zipf = ZipfianChooser(n_keys, rng, theta)
        # Precompute the rank -> key scramble (vectorized FNV is overkill;
        # the table is built once).
        self._scramble = np.array(
            [fnv1a_64(rank) % n_keys for rank in range(n_keys)],
            dtype=np.int64)

    def sample(self, count: int) -> np.ndarray:
        return self._scramble[self._zipf.sample(count)]

    def hit_fraction(self, hot_keys: int) -> float:
        return self._zipf.hit_fraction(hot_keys)


class LatestChooser:
    """YCSB's 'latest' distribution: recency-skewed toward high keys."""

    def __init__(self, n_keys: int, rng: np.random.Generator,
                 theta: float = DEFAULT_THETA):
        self.n_keys = n_keys
        self._zipf = ZipfianChooser(n_keys, rng, theta)

    def sample(self, count: int) -> np.ndarray:
        return self.n_keys - 1 - self._zipf.sample(count)
