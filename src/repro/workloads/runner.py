"""The virtual-time workload executor.

Drives a :class:`~repro.faster.store.FasterKv` with N simulated FASTER
threads.  Each thread is one CPU (a ``Resource``); the asynchronous
device interface lets a thread keep several operations outstanding, so
each thread runs ``outstanding_per_thread`` concurrent op slots that
all charge CPU against the same resource.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faster.store import FasterKv
from repro.sim.kernel import Environment
from repro.sim.resources import Resource

__all__ = ["KvRunResult", "RouterRunResult", "run_kv_workload",
           "run_router_workload"]


@dataclass(frozen=True)
class KvRunResult:
    """Measured outcome of one workload run."""

    throughput: float
    latency_mean: float
    latency_p99: float
    ops_measured: int
    memory_hit_fraction: float
    served_by: dict

    @property
    def throughput_mops(self) -> float:
        return self.throughput / 1e6


def run_kv_workload(env: Environment, store: FasterKv, *,
                    n_threads: int,
                    keys: np.ndarray,
                    is_read: np.ndarray,
                    update_value: bytes = b"",
                    outstanding_per_thread: int = 8,
                    warmup_fraction: float = 0.2,
                    seed: int = 0) -> KvRunResult:
    """Run ``len(keys)`` operations across ``n_threads`` threads.

    Operations are consumed from the pre-generated ``keys`` /
    ``is_read`` arrays in order, shared by all threads (a global
    cursor), which matches how YCSB clients pull from a generator.
    Returns throughput measured after ``warmup_fraction`` of operations
    completed (letting the FASTER read-cache reach steady state).
    """
    if len(keys) != len(is_read):
        raise ValueError("keys and is_read must have equal length")
    n_ops = len(keys)
    warmup_ops = int(n_ops * warmup_fraction)

    cursor = {"next": 0, "done": 0}
    window = {"t0": None, "w0": 0, "t1": None, "w1": 0}
    latencies: list[float] = []
    served: dict[str, int] = {}

    cpus = [Resource(env, slots=1) for _ in range(n_threads)]

    def slot(thread_index: int):
        cpu = cpus[thread_index]
        while cursor["next"] < n_ops:
            op_index = cursor["next"]
            cursor["next"] += 1
            start = env.now
            if is_read[op_index]:
                outcome = yield from store.read(int(keys[op_index]), cpu)
                if outcome.found:
                    served[outcome.served_by] = served.get(
                        outcome.served_by, 0) + 1
            else:
                yield from store.upsert(int(keys[op_index]), update_value,
                                        cpu)
            cursor["done"] += 1
            if cursor["done"] > warmup_ops:
                latencies.append(env.now - start)
                if window["t0"] is None:
                    window["t0"] = env.now
                    window["w0"] = cursor["done"]
            window["t1"] = env.now
            window["w1"] = cursor["done"]

    for thread_index in range(n_threads):
        for slot_index in range(outstanding_per_thread):
            env.process(slot(thread_index),
                        name=f"kv-load:t{thread_index}:s{slot_index}")
    env.run()

    if window["t0"] is None or window["t1"] == window["t0"]:
        raise RuntimeError("run too short to measure; increase n_ops")
    duration = window["t1"] - window["t0"]
    measured = window["w1"] - window["w0"]
    samples = np.asarray(latencies)
    total_served = sum(served.values()) or 1
    return KvRunResult(
        throughput=measured / duration,
        latency_mean=float(samples.mean()),
        latency_p99=float(np.percentile(samples, 99)),
        ops_measured=measured,
        memory_hit_fraction=served.get("memory", 0) / total_served,
        served_by=dict(served),
    )


@dataclass(frozen=True)
class RouterRunResult:
    """Measured outcome of one closed-loop run against a ShardRouter."""

    throughput: float
    latency_mean: float
    latency_p99: float
    ops_measured: int
    reads: int
    writes: int
    failed: int

    @property
    def throughput_mops(self) -> float:
        return self.throughput / 1e6


def run_router_workload(env: Environment, router, *,
                        keys: np.ndarray,
                        is_read: np.ndarray,
                        record_bytes: int = 64,
                        concurrency: int = 64,
                        warmup_fraction: float = 0.1) -> RouterRunResult:
    """Drive a :class:`~repro.shard.router.ShardRouter` closed-loop.

    ``concurrency`` client slots pull (key, op) pairs off a shared
    cursor -- the YCSB client-pool shape -- mapping key ``k`` to the
    record-aligned address ``(k % records) * record_bytes``.  Zipfian
    key streams therefore concentrate on a few slots, which is what the
    hot-key tier is for.  Throughput is measured after
    ``warmup_fraction`` of the operations completed (past ring warmup
    and the first hot-key promotions).
    """
    if len(keys) != len(is_read):
        raise ValueError("keys and is_read must have equal length")
    records = router.capacity // record_bytes
    if records < 1:
        raise ValueError("record_bytes exceeds router capacity")
    n_ops = len(keys)
    warmup_ops = int(n_ops * warmup_fraction)

    cursor = {"next": 0, "done": 0}
    window = {"t0": None, "w0": 0, "t1": None, "w1": 0}
    latencies: list[float] = []
    counts = {"reads": 0, "writes": 0, "failed": 0}
    payload = b"\xab" * record_bytes

    def slot():
        while cursor["next"] < n_ops:
            op_index = cursor["next"]
            cursor["next"] += 1
            addr = (int(keys[op_index]) % records) * record_bytes
            start = env.now
            if is_read[op_index]:
                result = yield router.read(addr, record_bytes)
                counts["reads"] += 1
            else:
                result = yield router.write(addr, payload)
                counts["writes"] += 1
            if not result.ok:
                counts["failed"] += 1
            cursor["done"] += 1
            if cursor["done"] > warmup_ops:
                latencies.append(env.now - start)
                if window["t0"] is None:
                    window["t0"] = env.now
                    window["w0"] = cursor["done"]
            window["t1"] = env.now
            window["w1"] = cursor["done"]

    for slot_index in range(concurrency):
        env.process(slot(), name=f"router-load:s{slot_index}")
    env.run()

    if window["t0"] is None or window["t1"] == window["t0"]:
        raise RuntimeError("run too short to measure; increase n_ops")
    duration = window["t1"] - window["t0"]
    measured = window["w1"] - window["w0"]
    samples = np.asarray(latencies)
    return RouterRunResult(
        throughput=measured / duration,
        latency_mean=float(samples.mean()),
        latency_p99=float(np.percentile(samples, 99)),
        ops_measured=measured,
        reads=counts["reads"],
        writes=counts["writes"],
        failed=counts["failed"],
    )
