"""YCSB workload definitions.

The paper's §8.3 setup: "Our YCSB database contains 250 million
key-value records (8-byte key and 8-byte value) ... Every operation is a
read governed by either a uniform distribution or a Zipfian distribution
(theta = 0.99)", plus a 1 KB-value variant.  :func:`paper_read_only`
builds exactly that (at a configurable scale); the standard YCSB core
mixes A/B/C are provided for the example applications.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.distributions import (
    ScrambledZipfianChooser,
    UniformChooser,
)

__all__ = ["YCSB_A", "YCSB_B", "YCSB_C", "YcsbWorkload", "paper_read_only"]


@dataclass(frozen=True)
class YcsbWorkload:
    """One YCSB workload: database shape plus an operation mix."""

    name: str
    n_records: int
    value_bytes: int
    read_proportion: float
    update_proportion: float
    distribution: str = "zipfian"  # "zipfian" | "uniform"
    theta: float = 0.99

    def __post_init__(self) -> None:
        total = self.read_proportion + self.update_proportion
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"op mix must sum to 1, got {total}")
        if self.distribution not in ("zipfian", "uniform"):
            raise ValueError(f"unknown distribution {self.distribution!r}")

    def make_chooser(self, rng: np.random.Generator):
        if self.distribution == "uniform":
            return UniformChooser(self.n_records, rng)
        return ScrambledZipfianChooser(self.n_records, rng,
                                       theta=self.theta)

    def sample_ops(self, count: int, rng: np.random.Generator
                   ) -> tuple[np.ndarray, np.ndarray]:
        """(keys, is_read) arrays for ``count`` operations."""
        keys = self.make_chooser(rng).sample(count)
        is_read = rng.random(count) < self.read_proportion
        return keys, is_read

    @property
    def database_bytes(self) -> int:
        from repro.faster.address import record_bytes
        return self.n_records * record_bytes(self.value_bytes)


def paper_read_only(n_records: int, value_bytes: int = 8,
                    distribution: str = "uniform") -> YcsbWorkload:
    """The §8.3 read-only workload at a chosen scale."""
    return YcsbWorkload(
        name=f"paper-{distribution}-{value_bytes}B",
        n_records=n_records, value_bytes=value_bytes,
        read_proportion=1.0, update_proportion=0.0,
        distribution=distribution)


#: The standard core workloads (update-heavy / read-mostly / read-only).
YCSB_A = YcsbWorkload("ycsb-a", n_records=100_000, value_bytes=100,
                      read_proportion=0.5, update_proportion=0.5)
YCSB_B = YcsbWorkload("ycsb-b", n_records=100_000, value_bytes=100,
                      read_proportion=0.95, update_proportion=0.05)
YCSB_C = YcsbWorkload("ycsb-c", n_records=100_000, value_bytes=100,
                      read_proportion=1.0, update_proportion=0.0)
