"""Pre-wired experiment scenarios.

Benchmarks and examples share these builders: a small simulated cluster
with a cache manager, and FASTER stores configured exactly like §8.3's
three competitors -- a Redy-fronted tiered device, an SMB Direct remote
file server, and a local SSD.

Scale: the paper's database is 250 M records (~6 GB at 8-byte values;
~260 GB at 1 KB).  We run the same code paths at a configurable scale,
keeping the *ratios* that drive the results -- local memory : database
size, and Redy cache : database size -- identical to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster import PhysicalServer, VmAllocator
from repro.core import Slo
from repro.core.client import RedyCache, RedyClient
from repro.core.manager import CacheManager
from repro.faster import (
    FasterKv,
    RedyDevice,
    SmbDirectDevice,
    SsdDevice,
    TieredDevice,
)
from repro.faster.address import record_bytes
from repro.hardware.profiles import AZURE_HPC, TestbedProfile
from repro.net.fabric import Fabric
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.ycsb import YcsbWorkload, paper_read_only

__all__ = ["ClusterHarness", "FasterScenario", "build_cluster",
           "build_faster_store"]

#: Throughput-oriented SLO for the FASTER cache, as in §8.3: "Throughput
#: is the critical metric for this benchmark, so we configure the Redy
#: cache for high throughput."
FASTER_CACHE_SLO = Slo(max_latency=1e-3, min_throughput=2e7, record_size=24)


@dataclass
class ClusterHarness:
    """A small simulated data center with Redy's control plane."""

    env: Environment
    rngs: RngRegistry
    fabric: Fabric
    allocator: VmAllocator
    manager: CacheManager

    def redy_client(self, name: str = "redy-app") -> RedyClient:
        return RedyClient(self.env, self.manager.profile, self.fabric,
                          self.manager, self.rngs, name=name)


def build_cluster(seed: int = 0, n_servers: int = 8,
                  profile: TestbedProfile = AZURE_HPC,
                  provisioning_delay_s: float = 0.0,
                  metrics=None) -> ClusterHarness:
    """A fresh environment + cluster + cache manager.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) is installed on
    the environment *before* any component is built, so everything the
    harness constructs instruments itself.
    """
    env = Environment()
    if metrics is not None:
        metrics.install(env)
    rngs = RngRegistry(seed)
    fabric = Fabric(env, profile)
    servers = [
        PhysicalServer(server_id=i, cluster=i // 4, rack=(i // 2) % 2,
                       cores=48, memory_gb=384.0)
        for i in range(n_servers)
    ]
    allocator = VmAllocator(env, servers)
    manager = CacheManager(env, profile, fabric, allocator, rngs,
                           provisioning_delay_s=provisioning_delay_s)
    return ClusterHarness(env=env, rngs=rngs, fabric=fabric,
                          allocator=allocator, manager=manager)


def strand_servers(harness: ClusterHarness, count: int,
                   keep_memory_gb: float = 64.0) -> list:
    """Manufacture stranded memory: fill every core of ``count`` idle
    servers with synthetic tenant VMs, leaving ``keep_memory_gb``
    unallocated on each.  Returns the stranded servers."""
    stranded = []
    for server in harness.allocator.servers:
        if len(stranded) >= count:
            break
        if server.allocated_cores == 0:
            server.place(-(1000 + server.server_id), server.cores,
                         server.memory_gb - keep_memory_gb)
            stranded.append(server)
    if len(stranded) < count:
        raise ValueError(f"only {len(stranded)} idle servers available")
    return stranded


@dataclass
class FasterScenario:
    """One ready-to-run FASTER store plus its workload definition."""

    harness: ClusterHarness
    store: FasterKv
    workload: YcsbWorkload
    cache: Optional[RedyCache]

    @property
    def env(self) -> Environment:
        return self.harness.env


def build_faster_store(device_kind: str, *,
                       n_records: int = 150_000,
                       value_bytes: int = 8,
                       distribution: str = "uniform",
                       local_memory_fraction: float = 1.0 / 6.0,
                       redy_cache_fraction: float = 8.0 / 6.0,
                       local_memory_bytes: Optional[int] = None,
                       redy_cache_bytes: Optional[int] = None,
                       region_bytes: int = 1 << 20,
                       seed: int = 1,
                       harness: Optional[ClusterHarness] = None
                       ) -> FasterScenario:
    """Build and load one FASTER store against one of the §8.3 devices.

    ``device_kind`` is ``"redy"`` (tiered Redy + SSD, Figure 17),
    ``"smb"`` (SMB Direct), ``"ssd"``, or ``"memory"`` (no device --
    everything in local memory, Figure 19's left edge).  The fractions
    default to the paper's 1 GB local / 8 GB Redy / ~6 GB database.
    """
    if harness is None:
        harness = build_cluster(seed=seed)
    env, rngs = harness.env, harness.rngs
    workload = paper_read_only(n_records, value_bytes, distribution)
    log_bytes = workload.database_bytes

    if local_memory_bytes is None:
        local_memory_bytes = int(log_bytes * local_memory_fraction)
    local_memory_bytes = max(local_memory_bytes,
                             4 * record_bytes(value_bytes))
    ssd_capacity = max(log_bytes * 4, 1 << 20)
    device_rng = rngs.stream(f"device-{device_kind}")

    cache: Optional[RedyCache] = None
    if device_kind == "memory":
        device = None
        local_memory_bytes = max(local_memory_bytes, log_bytes * 2)
    elif device_kind == "ssd":
        device = SsdDevice(env, ssd_capacity, device_rng)
    elif device_kind == "smb":
        device = SmbDirectDevice(env, ssd_capacity, device_rng)
    elif device_kind == "redy":
        if redy_cache_bytes is None:
            redy_cache_bytes = int(log_bytes * redy_cache_fraction)
        redy_cache_bytes = max(redy_cache_bytes, region_bytes)
        client = harness.redy_client(f"faster-app-{seed}")
        redy_cache = client.create(redy_cache_bytes + region_bytes,
                                   FASTER_CACHE_SLO,
                                   region_bytes=region_bytes)
        cache = redy_cache
        device = TieredDevice(env, [
            RedyDevice(redy_cache),
            SsdDevice(env, ssd_capacity, device_rng),
        ])
    else:
        raise ValueError(f"unknown device kind {device_kind!r}")

    store = FasterKv(env, device, local_memory_bytes, value_bytes)
    store.load(n_records)
    return FasterScenario(harness=harness, store=store, workload=workload,
                          cache=cache)
