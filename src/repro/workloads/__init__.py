"""Benchmark workloads: YCSB-style generators and the virtual-time runner.

* :mod:`repro.workloads.distributions` -- uniform, Zipfian (the YCSB
  theta = 0.99 default), scrambled Zipfian, and latest key choosers;
* :mod:`repro.workloads.ycsb` -- workload definitions matching the
  paper's §8.3 setup (read-only uniform / Zipfian over an integer key
  space) plus the standard YCSB core mixes;
* :mod:`repro.workloads.runner` -- drives a FasterKv with N simulated
  FASTER threads and reports throughput/latency.
"""

from repro.workloads.distributions import (
    LatestChooser,
    ScrambledZipfianChooser,
    UniformChooser,
    ZipfianChooser,
)
from repro.workloads.runner import KvRunResult, run_kv_workload
from repro.workloads.scenarios import (
    ClusterHarness,
    FasterScenario,
    build_cluster,
    build_faster_store,
    strand_servers,
)
from repro.workloads.ycsb import (
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YcsbWorkload,
    paper_read_only,
)

__all__ = [
    "ClusterHarness",
    "FasterScenario",
    "KvRunResult",
    "LatestChooser",
    "ScrambledZipfianChooser",
    "UniformChooser",
    "YCSB_A",
    "YCSB_B",
    "YCSB_C",
    "YcsbWorkload",
    "ZipfianChooser",
    "build_cluster",
    "build_faster_store",
    "paper_read_only",
    "run_kv_workload",
    "strand_servers",
]
