"""RDMA-based RPC for control-plane traffic.

§7.1: "We implemented an RPC framework based on RDMA for efficient
operations between clients, servers, and the manager."  The data path
never touches this -- it exists for control messages: *Connect*
handshakes, *Allocate* calls to the manager, reclamation alerts, and
the modeling loop of Figure 9.

An RPC costs what its messages cost on the simulated fabric (per-message
NIC processing, wire time, switch hops) plus a service time at the
callee.  Handlers are plain callables; exceptions travel back to the
caller as failed events.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.hardware.profiles import TestbedProfile
from repro.net.fabric import Endpoint
from repro.sim.clock import US
from repro.sim.kernel import Environment, Event

__all__ = ["RpcClient", "RpcError", "RpcServer"]

_CALL_IDS = itertools.count(1)

#: Default serialized size of a control message.
DEFAULT_MESSAGE_BYTES = 256


class RpcError(Exception):
    """Remote handler failed, or the method does not exist."""


@dataclass
class _Call:
    call_id: int
    method: str
    payload: Any
    request_bytes: int
    response_bytes: int


class RpcServer:
    """Dispatches named methods on one endpoint."""

    def __init__(self, env: Environment, profile: TestbedProfile,
                 endpoint: Endpoint, service_time: float = 5.0 * US):
        if service_time < 0:
            raise ValueError("service_time must be >= 0")
        self.env = env
        self.profile = profile
        self.endpoint = endpoint
        self.service_time = service_time
        self._handlers: Dict[str, Callable[[Any], Any]] = {}
        #: Lifetime statistics.
        self.calls_served = 0

    def register(self, method: str, handler: Callable[[Any], Any]) -> None:
        """Expose ``handler`` as ``method``.  Last registration wins."""
        self._handlers[method] = handler

    def handler_for(self, method: str) -> Optional[Callable[[Any], Any]]:
        return self._handlers.get(method)


class RpcClient:
    """Issues calls from one endpoint to RPC servers on the fabric."""

    def __init__(self, env: Environment, profile: TestbedProfile,
                 endpoint: Endpoint):
        self.env = env
        self.profile = profile
        self.endpoint = endpoint
        #: Lifetime statistics.
        self.calls_sent = 0

    def call(self, server: RpcServer, method: str, payload: Any = None, *,
             request_bytes: int = DEFAULT_MESSAGE_BYTES,
             response_bytes: int = DEFAULT_MESSAGE_BYTES) -> Event:
        """Invoke ``method`` on ``server``; the returned event fires with
        the handler's return value, or fails with :class:`RpcError`."""
        call = _Call(call_id=next(_CALL_IDS), method=method,
                     payload=payload, request_bytes=request_bytes,
                     response_bytes=response_bytes)
        done = self.env.event()
        self.calls_sent += 1
        self.env.process(self._roundtrip(server, call, done),
                         name=f"rpc:{method}#{call.call_id}")
        return done

    def _roundtrip(self, server: RpcServer, call: _Call, done: Event):
        nic = self.profile.nic
        fabric = self.endpoint.fabric

        # Request leg.
        yield self.env.timeout(nic.doorbell + nic.per_message_processing)
        yield from fabric.transmit(self.endpoint, server.endpoint,
                                   call.request_bytes)
        if not server.endpoint.alive:
            done.fail(RpcError(f"{call.method}: server endpoint down"))
            return
        yield self.env.timeout(nic.rx_dma)

        # Service.
        handler = server.handler_for(call.method)
        if handler is None:
            error: Optional[Exception] = RpcError(
                f"no such method {call.method!r}")
            result = None
        else:
            yield self.env.timeout(server.service_time)
            try:
                result = handler(call.payload)
                error = None
            except Exception as exc:  # noqa: BLE001 - returned to caller
                result = None
                error = RpcError(f"{call.method} failed: {exc}")
        server.calls_served += 1

        # Response leg.
        yield self.env.timeout(nic.doorbell + nic.per_message_processing)
        yield from fabric.transmit(server.endpoint, self.endpoint,
                                   call.response_bytes)
        yield self.env.timeout(nic.rx_dma + nic.completion_poll)

        if error is not None:
            done.fail(error)
        else:
            done.succeed(result)
