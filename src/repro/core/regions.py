"""The region table: mapping a cache's address space to VM memory.

The cache client "constructs a *region table* that maps the cache's
address space [0, capacity) to memory regions on servers.  It divides
the address space into *virtual regions*, mapping each one to a
*physical region* on a VM" (§3.3, Figure 5).

The table also carries the per-region gates that implement the §6.2
migration optimizations: *pause-on-migration writes* pause writes only
to the region currently being migrated, and *unpaused reads* leave reads
flowing to the old VM until the flip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.memory import AccessToken
from repro.sim.kernel import Environment, Event

__all__ = ["AddressError", "Fragment", "RegionMapping", "RegionTable"]

#: Default physical region size: "configurable (1 GB by default)" (§3.3).
DEFAULT_REGION_BYTES = 1 << 30


class AddressError(Exception):
    """An access fell outside [0, capacity)."""


@dataclass
class RegionMapping:
    """One virtual region and its current physical home."""

    index: int
    token: AccessToken
    server_name: str
    _write_gate: Optional[Event] = field(default=None, repr=False)
    _read_gate: Optional[Event] = field(default=None, repr=False)

    @property
    def writes_paused(self) -> bool:
        return self._write_gate is not None

    @property
    def reads_paused(self) -> bool:
        return self._read_gate is not None


@dataclass(frozen=True)
class Fragment:
    """One region-local piece of a (possibly spanning) cache access."""

    region_index: int
    token: AccessToken
    offset: int
    length: int
    #: Offset of this fragment within the original request buffer.
    buffer_offset: int


class RegionTable:
    """Address translation plus migration gates for one cache."""

    def __init__(self, env: Environment, region_bytes: int):
        if region_bytes < 1:
            raise ValueError(f"region_bytes must be >= 1, got {region_bytes}")
        self.env = env
        self.region_bytes = region_bytes
        self._regions: List[RegionMapping] = []

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._regions)

    @property
    def capacity(self) -> int:
        return len(self._regions) * self.region_bytes

    @property
    def regions(self) -> List[RegionMapping]:
        return list(self._regions)

    def region(self, index: int) -> RegionMapping:
        return self._regions[index]

    def append_region(self, token: AccessToken, server_name: str) -> RegionMapping:
        if token.size < self.region_bytes:
            raise ValueError(
                f"physical region ({token.size} B) smaller than the virtual "
                f"region size ({self.region_bytes} B)")
        mapping = RegionMapping(index=len(self._regions), token=token,
                                server_name=server_name)
        self._regions.append(mapping)
        return mapping

    def remap(self, index: int, token: AccessToken, server_name: str) -> None:
        """Flip one virtual region to a new physical home (migration)."""
        mapping = self._regions[index]
        mapping.token = token
        mapping.server_name = server_name

    def truncate(self, new_capacity: int) -> List[RegionMapping]:
        """Shrink to ``new_capacity``; returns the dropped mappings."""
        keep = math.ceil(new_capacity / self.region_bytes)
        dropped = self._regions[keep:]
        self._regions = self._regions[:keep]
        return dropped

    def regions_on(self, server_name: str) -> List[RegionMapping]:
        return [m for m in self._regions if m.server_name == server_name]

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------

    def translate(self, addr: int, size: int) -> List[Fragment]:
        """Split [addr, addr+size) into region-local fragments."""
        if addr < 0 or size < 0 or addr + size > self.capacity:
            raise AddressError(
                f"access [{addr}, {addr + size}) outside cache of capacity "
                f"{self.capacity}")
        fragments: List[Fragment] = []
        cursor = addr
        remaining = size
        buffer_offset = 0
        while remaining > 0:
            index = cursor // self.region_bytes
            offset = cursor % self.region_bytes
            length = min(remaining, self.region_bytes - offset)
            mapping = self._regions[index]
            fragments.append(Fragment(
                region_index=index, token=mapping.token, offset=offset,
                length=length, buffer_offset=buffer_offset))
            cursor += length
            remaining -= length
            buffer_offset += length
        return fragments

    # ------------------------------------------------------------------
    # Migration gates
    # ------------------------------------------------------------------

    def pause_writes(self, index: int) -> None:
        mapping = self._regions[index]
        if mapping._write_gate is None:
            mapping._write_gate = self.env.event()

    def pause_reads(self, index: int) -> None:
        mapping = self._regions[index]
        if mapping._read_gate is None:
            mapping._read_gate = self.env.event()

    def resume(self, index: int) -> None:
        """Lift both gates, waking everything that was waiting."""
        mapping = self._regions[index]
        if mapping._write_gate is not None:
            mapping._write_gate.succeed()
            mapping._write_gate = None
        if mapping._read_gate is not None:
            mapping._read_gate.succeed()
            mapping._read_gate = None

    def write_gate(self, index: int) -> Optional[Event]:
        return self._regions[index]._write_gate

    def read_gate(self, index: int) -> Optional[Event]:
        return self._regions[index]._read_gate
