"""Redy: the paper's primary contribution.

Layout (bottom to top):

* :mod:`repro.core.config` -- RDMA configurations, SLOs, Table 2 bounds.
* :mod:`repro.core.latency` -- the analytic data-path performance model.
* :mod:`repro.core.engine` -- the executable data path on the simulated
  fabric (ring buffers, batching, queue pairs, server threads).
* :mod:`repro.core.space` / :mod:`repro.core.modeling` /
  :mod:`repro.core.search` -- the five-level configuration tree, offline
  modeling with interpolation + early termination, and the Figure 10
  online SLO search.
* :mod:`repro.core.regions` / :mod:`repro.core.server` /
  :mod:`repro.core.client` / :mod:`repro.core.manager` -- the cache
  service itself (Table 1 API).
* :mod:`repro.core.migration` -- region migration with unpaused reads and
  pause-on-migration writes.
"""

from repro.core.config import (
    ConfigurationError,
    PerfPoint,
    RdmaConfig,
    Slo,
    config_space_size,
    max_batch_size,
    MIN_QUEUE_DEPTH_OPTIMIZED,
)
from repro.core.client import (
    CacheDeletedError,
    CacheIoResult,
    RedyCache,
    RedyClient,
)
from repro.core.manager import (
    CacheAllocation,
    CacheManager,
    SloUnsatisfiableError,
)
from repro.core.migration import MigrationPolicy
from repro.core.replication import ReplicatedCache

__all__ = [
    "CacheAllocation",
    "CacheDeletedError",
    "CacheIoResult",
    "CacheManager",
    "ConfigurationError",
    "MIN_QUEUE_DEPTH_OPTIMIZED",
    "MigrationPolicy",
    "PerfPoint",
    "RdmaConfig",
    "RedyCache",
    "RedyClient",
    "ReplicatedCache",
    "Slo",
    "SloUnsatisfiableError",
    "config_space_size",
    "max_batch_size",
]
