"""The cache server: the agent running on every cache-hosting VM.

A :class:`CacheServer` owns the VM's registered memory regions and, for
two-sided configurations, a pool of server threads that poll per-
connection message rings, execute request batches against local memory,
and write response batches back through the same connection (§4.2,
*Reads and Writes*).
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.core.protocol import (
    ConnectReply,
    ConnectRequest,
    OpResult,
    ResponseBatch,
)
from repro.hardware.profiles import TestbedProfile
from repro.net.fabric import Endpoint
from repro.net.memory import MemoryRegion, RdmaAccessError
from repro.net.qp import QueuePair
from repro.net.verbs import RdmaOp, WorkRequest
from repro.sim.kernel import Environment
from repro.sim.resources import Store

__all__ = ["CacheServer"]

#: Sizing of the request message ring: one slot per in-flight batch, each
#: slot a 4 KB transfer (the point past which batching stops helping).
RING_SLOT_BYTES = 4096


class _ServerConnection:
    """Server-side state for one client connection."""

    def __init__(self, connection_id: int, request_ring: MemoryRegion,
                 response_qp: QueuePair, response_ring_token) -> None:
        self.connection_id = connection_id
        self.request_ring = request_ring
        self.response_qp = response_qp
        self.response_ring_token = response_ring_token


class CacheServer:
    """Cache-server agent for one VM (one RDMA endpoint)."""

    def __init__(self, env: Environment, profile: TestbedProfile,
                 endpoint: Endpoint, rng: np.random.Generator):
        self.env = env
        self.profile = profile
        self.endpoint = endpoint
        self.rng = rng
        self.alive = True
        self.regions: Dict[int, MemoryRegion] = {}
        self._connections: Dict[int, _ServerConnection] = {}
        self._threads: List[Store] = []
        self._thread_count = 0
        self._next_connection_id = 0
        #: Lifetime statistics.
        self.batches_processed = 0
        self.ops_processed = 0

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def allocate_regions(self, count: int, size: int,
                         backed: bool = True) -> List[MemoryRegion]:
        """Allocate and NIC-register ``count`` data regions of ``size``."""
        regions = []
        for _ in range(count):
            region = self.endpoint.register(MemoryRegion(size, backing=backed))
            self.regions[region.region_id] = region
            regions.append(region)
        return regions

    def release_region(self, region_id: int) -> None:
        """Deregister one region (shrink / teardown)."""
        self.regions.pop(region_id, None)
        self.endpoint.deregister(region_id)

    def connect(self, request: ConnectRequest,
                client_endpoint: Endpoint) -> ConnectReply:
        """Process a *Connect* message.

        Allocates the requested data regions, sets up one request ring and
        one response queue pair per connection, and sizes the server
        thread pool to the configuration.  Returns the access tokens the
        client needs (§4.2).
        """
        if not self.alive:
            raise RdmaAccessError(f"cache server {self.endpoint.name} is down")
        regions = self.allocate_regions(
            request.n_regions, request.region_size, backed=request.backed)

        self._ensure_threads(request.server_threads)

        ring_tokens = []
        for ring_index in range(request.connections):
            connection_id = self._next_connection_id
            self._next_connection_id += 1
            ring = self.endpoint.register(MemoryRegion(
                max(1, request.queue_depth) * RING_SLOT_BYTES, backing=False))
            response_qp = QueuePair(self.env, self.endpoint, client_endpoint,
                                    max_depth=request.queue_depth)
            connection = _ServerConnection(
                connection_id, ring, response_qp,
                request.response_ring_tokens[ring_index])
            self._connections[connection_id] = connection
            if self._threads:
                inbox = self._threads[connection_id % len(self._threads)]
                ring.attach_mailbox(
                    lambda batch, inbox=inbox, conn=connection:
                        inbox.try_put((conn, batch)))
            ring_tokens.append(ring.token)
        return ConnectReply(
            region_tokens=[region.token for region in regions],
            request_ring_tokens=ring_tokens)

    def disconnect_client(self, client_endpoint: Endpoint) -> int:
        """Tear down every connection from ``client_endpoint``.

        Releases the server-side control-plane state the historical
        detach path leaked on abrupt client death: the request-ring
        regions stay registered forever and the response QPs stay on
        both endpoints' registries.  Returns the number of connections
        torn down.
        """
        stale = [connection_id for connection_id, connection
                 in self._connections.items()
                 if connection.response_qp.remote is client_endpoint]
        for connection_id in stale:
            connection = self._connections.pop(connection_id)
            if self.alive:
                self.endpoint.deregister(connection.request_ring.region_id)
            connection.response_qp.reclaim()
        # Sweep the client's own QPs off our registry too: on abrupt
        # client death the client never runs detach, and its engine QPs
        # would otherwise pin server-side NIC state forever.
        for qp in [qp for qp in self.endpoint.qps
                   if qp.local is client_endpoint
                   or qp.remote is client_endpoint]:
            qp.reclaim()
        return len(stale)

    def shutdown(self) -> None:
        """Stop serving (graceful teardown after migration completes)."""
        self.alive = False

    def fail(self) -> None:
        """Hard failure: the VM is gone; all regions become inaccessible."""
        self.alive = False
        self.endpoint.fail()

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def _ensure_threads(self, count: int) -> None:
        while self._thread_count < count:
            inbox: Store = Store(self.env)
            self._threads.append(inbox)
            index = self._thread_count
            self._thread_count += 1
            self.env.process(
                self._thread_loop(inbox),
                name=f"cache-server:{self.endpoint.name}:thread{index}")

    @property
    def thread_count(self) -> int:
        return self._thread_count

    def _thread_loop(self, inbox: Store):
        # Hot loop (once per request batch): profile costs are frozen,
        # so they and the bound methods are hoisted out of the loop.
        cpu = self.profile.cpu
        noise_sigma = self.profile.measurement_noise
        poll_cycle = cpu.server_poll_cycle
        batch_overhead = cpu.server_batch_overhead
        op_cost = cpu.server_op_cost
        doorbell = self.profile.nic.doorbell
        env = self.env
        rng = self.rng
        execute = self._execute
        inbox_get = inbox.get
        while True:
            connection, batch = yield inbox_get()
            if not self.alive:
                return
            # The poller notices the ring write up to a poll cycle later.
            yield env.timeout(rng.uniform(0.0, poll_cycle))
            work = batch_overhead
            thread_count = self._thread_count
            for op in batch.ops:
                work += op.weight * op_cost(op.size, thread_count)
            work *= math.exp(rng.normal(0.0, noise_sigma))
            yield env.timeout(work)
            if not self.alive:
                # The VM died mid-processing: no response ever leaves.
                return

            results = [execute(op) for op in batch.ops]
            self.batches_processed += 1
            self.ops_processed += batch.total_ops

            response = ResponseBatch(ops=batch.ops, results=results,
                                     connection_id=connection.connection_id,
                                     batch_id=batch.batch_id)
            wr = WorkRequest(
                RdmaOp.WRITE, connection.response_ring_token, 0,
                batch.response_bytes, payload_object=response)
            yield env.timeout(doorbell)
            connection.response_qp.post(wr)

    def _execute(self, op) -> OpResult:
        """Run one request against local memory (§4.2): a write copies the
        payload to the destination; a read copies from the source into the
        response buffer."""
        region = self.regions.get(op.token.region_id) if op.token else None
        if op.token is not None and region is None:
            return OpResult(ok=False, error=(
                f"region {op.token.region_id} not on server "
                f"{self.endpoint.name}"))
        try:
            if region is None:
                return OpResult(ok=True)
            if op.is_read:
                data = region.local_read(op.offset, op.size)
                return OpResult(ok=True, data=data)
            if op.data is not None:
                region.local_write(op.offset, op.data)
            return OpResult(ok=True)
        except RdmaAccessError as exc:
            return OpResult(ok=False, error=str(exc))
