"""The measurement application (Figure 9).

:func:`measure_config` stands up a complete simulated testbed -- client
VM, cache-server VM at a chosen switch distance, fabric, cache server,
and client data path -- drives it with a closed-loop load at the
configuration's operating point (queue pairs kept fully loaded), and
reports measured latency percentiles and throughput.

It is used three ways:

* by the offline-modeling loop (:mod:`repro.core.modeling`) to fill in
  the configuration tree's leaves,
* by the Figure 3/7/8/11/12 benchmarks directly, and
* by the Figure 13/14 experiments to check configurations the online
  search returned against their SLOs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import PerfPoint, RdmaConfig
from repro.core.engine import CacheDataPath
from repro.core.protocol import EngineOp
from repro.core.server import CacheServer
from repro.hardware.profiles import AZURE_HPC, TestbedProfile
from repro.net.fabric import Fabric, Placement
from repro.obs.metrics import MetricsRegistry
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry

__all__ = ["MeasurementResult", "measure_config", "placements_for_hops"]

#: Size of the (unbacked) data region measurement traffic targets.
_MEASUREMENT_REGION_BYTES = 1 << 30


@dataclass(frozen=True)
class MeasurementResult:
    """Measured performance of one configuration."""

    latency_mean: float
    latency_p50: float
    latency_p99: float
    throughput: float
    ops_measured: int
    duration: float

    @property
    def perf(self) -> PerfPoint:
        """The (mean latency, throughput) pair the SLO machinery uses."""
        return PerfPoint(latency=self.latency_mean,
                         throughput=self.throughput)


def placements_for_hops(switch_hops: int) -> tuple[Placement, Placement]:
    """Client/server placements realizing a given switch distance.

    The fabric knows the three canonical distances of §5.2; anything else
    is a caller bug.
    """
    if switch_hops == 1:
        return Placement(cluster=0, rack=0), Placement(cluster=0, rack=0)
    if switch_hops == 3:
        return Placement(cluster=0, rack=0), Placement(cluster=0, rack=1)
    if switch_hops == 5:
        return Placement(cluster=0, rack=0), Placement(cluster=1, rack=0)
    raise ValueError(
        f"switch_hops must be 1, 3, or 5 (got {switch_hops})")


def measure_config(config: RdmaConfig, record_size: int, *,
                   profile: TestbedProfile = AZURE_HPC,
                   switch_hops: int = 1,
                   read_fraction: float = 0.5,
                   batches_per_connection: int = 120,
                   warmup_batches: int = 30,
                   extra_outstanding: int = 0,
                   seed: int = 0,
                   metrics: Optional[MetricsRegistry] = None,
                   scheduler: Optional[str] = None,
                   dependent_reads: bool = False
                   ) -> MeasurementResult:
    """Measure one RDMA configuration on the simulated testbed.

    The load is closed-loop: every connection keeps ``q`` (plus
    ``extra_outstanding``) request batches in flight, the fully-loaded-QP
    operating point of §4.3.  Batches are issued as weighted ops (one
    op standing for ``b`` application requests) so that simulating
    hundred-MOPS configurations stays tractable; the half-batch fill wait
    an average request would see is added back to each sample.

    ``dependent_reads=True`` switches the workload to pointer-chasing
    GETs (index word -> record), the FASTER-through-Redy access pattern:
    each op names a pointer offset to chase and the record offset as its
    size-only fallback.  ``config.use_verb_programs`` then selects the
    one-round-trip program path versus the classic two-hop baseline --
    the fig11/fig12 A/B toggle.
    """
    rngs = RngRegistry(seed=seed)
    # `scheduler` picks the kernel's event-list implementation (see
    # repro.sim.kernel); None inherits the process-wide default.  The
    # choice affects wall-clock speed only, never the measured result.
    env = Environment(scheduler=scheduler)
    if metrics is not None:
        # Install before the testbed is built so the queue pairs, fabric,
        # and data path instrument themselves (see repro.obs).
        metrics.install(env)
    fabric = Fabric(env, profile)
    client_place, server_place = placements_for_hops(switch_hops)
    client_endpoint = fabric.add_endpoint("measure-client", client_place)
    server_endpoint = fabric.add_endpoint("measure-server", server_place)

    server = CacheServer(env, profile, server_endpoint, rngs.stream("server"))
    path = CacheDataPath(env, profile, config, client_endpoint,
                         rngs.stream("client"))
    tokens = path.attach_server(server, n_regions=1,
                                region_size=_MEASUREMENT_REGION_BYTES,
                                backed=False)
    token = tokens[0]

    weight = config.batch_size if not config.uses_one_sided else 1
    if dependent_reads:
        # Dependent GETs are weight-1 ops posted on their own doorbell
        # (they bypass the message-ring batching protocol entirely).
        weight = 1
    outstanding = config.queue_depth + extra_outstanding
    total_connections = config.client_threads
    warmup_target = warmup_batches * total_connections
    measure_target = warmup_target + (
        batches_per_connection * total_connections)

    workload_rng = rngs.stream("workload")
    offsets = workload_rng.integers(
        0, _MEASUREMENT_REGION_BYTES - record_size, size=4096)
    # Pointer-word offsets for the dependent-read workload.  Drawn only
    # when needed so the classic workload's RNG stream (and therefore
    # every existing benchmark result) is untouched.
    lookup_offsets = None
    if dependent_reads:
        lookup_offsets = workload_rng.integers(
            0, _MEASUREMENT_REGION_BYTES - 8, size=4096)

    state = {
        "completed": 0,
        "measuring": False,
        "stop": False,
        "t0": 0.0,
        "w0": 0,
        "t1": 0.0,
        "w1": 0,
    }
    latencies: list[float] = []
    cpu = profile.cpu

    def generator(thread_index: int, generator_index: int):
        offset_cursor = generator_index
        # Hot loop (once per simulated op): hoist the bound methods.
        draw = workload_rng.random
        overhead = path.submission_overhead
        timeout = env.timeout
        new_event = env.event
        submit = path.submit
        n_offsets = len(offsets)
        append_latency = latencies.append
        while not state["stop"]:
            is_read = dependent_reads or draw() < read_fraction
            # The application thread hands each request through the batch
            # ring; a full batch costs `weight` handoffs.
            handoff = weight * overhead()
            yield timeout(handoff)
            if dependent_reads:
                op = EngineOp(
                    is_read=True, size=record_size, token=token,
                    offset=int(offsets[offset_cursor % n_offsets]),
                    lookup_offset=int(
                        lookup_offsets[offset_cursor % n_offsets]),
                    weight=1, completion=new_event())
            else:
                op = EngineOp(
                    is_read=is_read, size=record_size, token=token,
                    offset=int(offsets[offset_cursor % n_offsets]),
                    weight=weight, completion=new_event())
            offset_cursor += 1
            yield submit(op, thread_index=thread_index)
            result = yield op.completion
            if not result.ok:
                raise RuntimeError(f"measurement op failed: {result.error}")
            state["completed"] += 1
            if state["measuring"]:
                # Half the batch-fill span approximates the wait of the
                # average request inside this batch.
                append_latency(result.latency + handoff / 2.0)
            _update_phase()

    def _update_phase() -> None:
        if not state["measuring"] and state["completed"] >= warmup_target:
            state["measuring"] = True
            state["t0"] = env.now
            state["w0"] = path.completed_weight
        if state["measuring"] and state["completed"] >= measure_target:
            state["stop"] = True
            state["t1"] = env.now
            state["w1"] = path.completed_weight

    for thread_index in range(config.client_threads):
        for generator_index in range(outstanding):
            env.process(generator(thread_index, generator_index),
                        name=f"loadgen:t{thread_index}:g{generator_index}")

    env.run()

    duration = max(state["t1"] - state["t0"], 1e-12)
    measured_weight = state["w1"] - state["w0"]
    samples = np.asarray(latencies)
    if samples.size == 0:
        raise RuntimeError("measurement produced no samples; "
                           "increase batches_per_connection")
    if metrics is not None:
        # Bench-blob contract: the measured window's per-request latency
        # distribution plus a throughput counter/gauge pair, independent
        # of the engine's own (warmup-inclusive) hot-path metrics.
        metrics.histogram("bench.op_latency").observe_many(latencies)
        metrics.counter("bench.ops").inc(measured_weight)
        metrics.gauge("bench.throughput_ops").set(measured_weight / duration)
        metrics.gauge("bench.measured_duration").set(duration)
        for key, value in env.event_loop_stats().items():
            metrics.gauge(f"kernel.{key}").set(value)
        metrics.gauge("kernel.sim_now").set(env.now)
    return MeasurementResult(
        latency_mean=float(samples.mean()),
        latency_p50=float(np.percentile(samples, 50)),
        latency_p99=float(np.percentile(samples, 99)),
        throughput=measured_weight / duration,
        ops_measured=int(measured_weight),
        duration=duration,
    )
