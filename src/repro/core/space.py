"""The five-level configuration tree of §5.2.

The tree is *virtual*: for the paper's 8-byte example it has ~3.1 M
leaves, so nodes are never materialized.  Instead :class:`ConfigSpace`
exposes the per-level value ranges (with the constraints built in) and
generators that walk the tree in the paper's resource-efficient
pre-order: within the traversal q varies fastest, then b, then c, then s
-- "explore the configurations that do not increase the hardware cost,
i.e., increasing b and q, before the configurations that do, i.e., c and
s.  We increase c before s."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.core.config import (
    ConfigurationError,
    MIN_QUEUE_DEPTH_OPTIMIZED,
    RdmaConfig,
    config_space_size,
    max_batch_size,
)

__all__ = ["ConfigSpace"]


def _geometric_upto(limit: int, start: int = 1, factor: int = 2) -> List[int]:
    """start, start*factor, start*factor^2, ... plus ``limit`` itself."""
    values = []
    v = start
    while v < limit:
        values.append(v)
        v *= factor
    values.append(limit)
    return values


@dataclass(frozen=True)
class ConfigSpace:
    """One record size's configuration space on one testbed."""

    max_client_threads: int
    record_size: int
    max_queue_depth: int
    min_queue_depth: int = MIN_QUEUE_DEPTH_OPTIMIZED
    #: Geometric step of the measurement grid.  2 is the paper's
    #: powers-of-two interpolation; larger values trade model accuracy
    #: for fewer measurements (the interpolation-density ablation).
    grid_factor: int = 2
    #: Cap on server threads.  0 restricts the space to purely one-sided
    #: configurations -- what a core-less harvest VM can serve.
    max_server_threads: int | None = None

    def __post_init__(self) -> None:
        if self.max_client_threads < 1:
            raise ConfigurationError("need at least one client thread")
        if not 1 <= self.min_queue_depth <= self.max_queue_depth:
            raise ConfigurationError(
                f"need 1 <= min_queue_depth <= max_queue_depth, got "
                f"{self.min_queue_depth}..{self.max_queue_depth}")
        if self.grid_factor < 2:
            raise ConfigurationError("grid_factor must be >= 2")
        if (self.max_server_threads is not None
                and self.max_server_threads < 0):
            raise ConfigurationError("max_server_threads must be >= 0")

    @property
    def max_batch(self) -> int:
        return max_batch_size(self.record_size)

    # -- per-level value ranges (tree levels: s, c, b, q) ------------------

    def s_values(self) -> range:
        upper = self.max_client_threads
        if self.max_server_threads is not None:
            upper = min(upper, self.max_server_threads)
        return range(0, upper + 1)

    def c_values(self, s: int) -> range:
        """c ranges from max(s, 1) to C: each connection needs a client
        thread, and s <= c."""
        return range(max(s, 1), self.max_client_threads + 1)

    def b_values(self, s: int) -> range:
        """s = 0 disables batching (constraint (2) of §5.2)."""
        if s == 0:
            return range(1, 2)
        return range(1, self.max_batch + 1)

    def q_values(self) -> range:
        return range(self.min_queue_depth, self.max_queue_depth + 1)

    # -- whole-space views -------------------------------------------------

    def size(self) -> int:
        """Number of leaves: the §5.2 closed form, or a direct count
        when the server-thread cap restricts the tree."""
        if self.max_server_threads is None:
            return config_space_size(
                self.max_client_threads, self.max_batch,
                self.max_queue_depth, self.min_queue_depth)
        q_count = len(self.q_values())
        total = 0
        for s in self.s_values():
            c_count = len(self.c_values(s))
            b_count = len(self.b_values(s))
            total += c_count * b_count * q_count
        return total

    def contains(self, config: RdmaConfig) -> bool:
        return (config.server_threads in self.s_values()
                and config.client_threads in self.c_values(
                    config.server_threads)
                and config.batch_size in self.b_values(config.server_threads)
                and config.queue_depth in self.q_values())

    def iter_preorder(self) -> Iterator[RdmaConfig]:
        """All configurations, cheapest-hardware first."""
        for s in self.s_values():
            for c in self.c_values(s):
                for b in self.b_values(s):
                    for q in self.q_values():
                        yield RdmaConfig(c, s, b, q)

    # -- the modeling grid ---------------------------------------------

    def grid_s_values(self) -> List[int]:
        """s grid: 0 plus a geometric ladder up to the s cap."""
        ladder = [0] + _geometric_upto(self.max_client_threads,
                                       factor=self.grid_factor)
        if self.max_server_threads is None:
            return ladder
        return [s for s in ladder if s <= self.max_server_threads]

    def grid_c_values(self, s: int) -> List[int]:
        """c grid: the geometric ladder restricted to [max(s,1), C]."""
        return [c for c in _geometric_upto(self.max_client_threads,
                                           factor=self.grid_factor)
                if c >= max(s, 1)] or [self.max_client_threads]

    def grid_b_values(self, s: int) -> List[int]:
        if s == 0:
            return [1]
        return _geometric_upto(self.max_batch, factor=self.grid_factor)

    def grid_q_values(self) -> List[int]:
        return _geometric_upto(self.max_queue_depth,
                               start=self.min_queue_depth,
                               factor=self.grid_factor)

    def grid_size(self) -> int:
        """Number of grid points before early termination."""
        total = 0
        for s in self.grid_s_values():
            total += (len(self.grid_c_values(s)) * len(self.grid_b_values(s))
                      * len(self.grid_q_values()))
        return total

    def iter_grid(self) -> Iterator[RdmaConfig]:
        """The powers-of-two measurement grid, in pre-order."""
        for s in self.grid_s_values():
            for c in self.grid_c_values(s):
                for b in self.grid_b_values(s):
                    for q in self.grid_q_values():
                        yield RdmaConfig(c, s, b, q)
