"""The offline modeling campaign as a distributed protocol (Figure 9).

§5.2's modeling is a conversation: "The manager and the client then
repeatedly generate the next configuration to measure (1), switch to
that configuration, measure its latency and throughput by performing
I/O operations on the cache, and report the result to the manager (2).
When the manager determines that the model is complete (3), it signals
the application to terminate."

:func:`run_modeling_campaign` runs exactly that protocol in simulated
time: the manager side (an :class:`~repro.core.rpc.RpcServer` with
``next_config`` / ``report`` handlers) owns the grid walk and early
termination; the measurement application (an RPC client on its own VM)
switches configurations, measures, and reports.  Each measurement
charges its real cost -- reconfiguration, the I/O run, reporting --
which is what turns ~350 grid points into the hours-long campaign §7.3
describes ("which took only 15 hours" for ~1000 measurements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import PerfPoint, RdmaConfig
from repro.core.modeling import Measurer, OfflineModeler, PerfModel
from repro.core.rpc import RpcClient, RpcServer
from repro.core.space import ConfigSpace
from repro.hardware.profiles import AZURE_HPC, TestbedProfile
from repro.net.fabric import Fabric, Placement
from repro.sim.clock import S
from repro.sim.kernel import Environment

__all__ = ["CampaignResult", "run_modeling_campaign"]

#: Tear down rings/QPs and set up the next configuration (§5.2 counts
#: "switching to the new configuration" in its minute-per-measurement).
RECONFIGURE_S = 20.0

#: Running enough I/O for a stable latency/throughput estimate.
MEASURE_S = 35.0

#: Building/accounting one estimated (early-terminated) leaf.
ESTIMATE_S = 0.05


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one simulated modeling campaign."""

    model: PerfModel
    measured: int
    estimated: int
    #: Simulated wall time of the whole campaign, seconds.
    duration_s: float
    rpc_calls: int

    @property
    def duration_hours(self) -> float:
        return self.duration_s / 3600.0


class _ManagerSide:
    """The manager's half of Figure 9: grid walk + early termination."""

    def __init__(self, space: ConfigSpace, switch_hops: int):
        # Reuse the modeler's grid/termination logic by feeding results
        # in as they arrive.
        self._modeler = OfflineModeler(space, measurer=None,  # type: ignore[arg-type]
                                       switch_hops=switch_hops)
        self._walk = iter(space.iter_grid())
        self._pending: Optional[RdmaConfig] = None

    def next_config(self, _payload) -> Optional[tuple]:
        """RPC handler: the next configuration needing a measurement,
        or None when the model is complete (step (3) of Figure 9)."""
        from repro.core.modeling import _key  # shared key layout

        while True:
            config = next(self._walk, None)
            if config is None:
                return None
            key = _key(config)
            plateau = self._modeler._plateau_source(key)
            if plateau is not None:
                self._modeler._points[key] = self._modeler._estimate_from(
                    plateau, key)
                self._modeler._measured[key] = False
                continue
            self._pending = config
            return (config.client_threads, config.server_threads,
                    config.batch_size, config.queue_depth)

    def report(self, payload) -> bool:
        """RPC handler: record one measurement (step (2))."""
        from repro.core.modeling import _key

        latency, throughput = payload
        assert self._pending is not None, "report without a pending config"
        self._modeler._points[_key(self._pending)] = PerfPoint(
            latency=latency, throughput=throughput)
        self._modeler._measured[_key(self._pending)] = True
        self._pending = None
        return True

    def finish(self) -> tuple[PerfModel, int, int]:
        measured = sum(1 for flag in self._modeler._measured.values()
                       if flag)
        estimated = len(self._modeler._points) - measured
        model = PerfModel(self._modeler.space, self._modeler.switch_hops,
                          self._modeler._points)
        return model, measured, estimated


def run_modeling_campaign(space: ConfigSpace, measurer: Measurer, *,
                          profile: TestbedProfile = AZURE_HPC,
                          switch_hops: int = 1) -> CampaignResult:
    """Run the Figure 9 protocol end to end in simulated time.

    ``measurer`` supplies each configuration's (latency, throughput) --
    normally :func:`~repro.core.modeling.make_analytic_measurer` with
    noise, standing in for the I/O run whose *duration* is charged here.
    """
    env = Environment()
    fabric = Fabric(env, profile)
    manager_endpoint = fabric.add_endpoint("manager", Placement(0, 0))
    app_endpoint = fabric.add_endpoint("measure-app", Placement(0, 0))

    manager = _ManagerSide(space, switch_hops)
    rpc_server = RpcServer(env, profile, manager_endpoint)
    rpc_server.register("next_config", manager.next_config)
    rpc_server.register("report", manager.report)
    rpc_client = RpcClient(env, profile, app_endpoint)

    def measurement_app(env):
        while True:
            encoded = yield rpc_client.call(rpc_server, "next_config")
            if encoded is None:
                return  # step (3): the manager signalled completion
            config = RdmaConfig(*encoded)
            yield env.timeout(RECONFIGURE_S * S)
            perf = measurer(config)  # the I/O run itself ...
            yield env.timeout(MEASURE_S * S)  # ... takes real time
            yield rpc_client.call(rpc_server, "report",
                                  (perf.latency, perf.throughput))

    env.run_process(measurement_app(env), name="figure9-app")
    env.run()
    model, measured, estimated = manager.finish()
    return CampaignResult(
        model=model, measured=measured, estimated=estimated,
        duration_s=env.now + estimated * ESTIMATE_S,
        rpc_calls=rpc_client.calls_sent,
    )
