"""Wire-protocol objects exchanged between Redy clients and cache servers.

These are the in-simulation counterparts of Figure 6's message payloads:
request batches travelling client -> server and response batches coming
back, plus the *Connect* handshake of §4.2 that sets up rings, queue
pairs, and access tokens.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.latency import OP_HEADER_BYTES, RESP_HEADER_BYTES
from repro.net.memory import AccessToken
from repro.sim.kernel import Event

__all__ = [
    "ConnectReply",
    "ConnectRequest",
    "EngineOp",
    "OpResult",
    "RequestBatch",
    "ResponseBatch",
]

_BATCH_IDS = itertools.count(1)


@dataclass
class EngineOp:
    """One application I/O as seen by the data path.

    ``weight`` is the number of logical application requests this op
    stands for.  Functional traffic always uses weight 1; the measurement
    harness issues pre-filled batches as single ops of weight ``b`` so
    that simulating a 205 MOPS configuration stays tractable (documented
    in DESIGN.md).
    """

    is_read: bool
    size: int
    token: Optional[AccessToken] = None
    offset: int = 0
    data: Optional[bytes] = None
    weight: int = 1
    completion: Optional[Event] = None
    enqueued_at: float = 0.0
    #: Dependent read: offset of the pointer word to chase first.  The
    #: record is then read at the little-endian u64 the word holds (with
    #: ``offset`` as the fallback on size-only regions).  ``None`` = a
    #: plain direct read/write.
    lookup_offset: Optional[int] = None
    #: Width of the pointer word a dependent read chases.
    lookup_size: int = 8
    #: Dependent read: append a self-verifying CAS guard that re-checks
    #: the pointer at the end of the chain (migration safety).
    verify: bool = False
    #: Standalone single-word compare-and-swap: ``data`` is the swap
    #: value, ``compare`` the expected current word.  CAS ops bypass the
    #: batching protocol (like dependent reads) -- atomicity is a
    #: property of the NIC executing one verb, not of a message batch.
    cas: bool = False
    compare: Optional[bytes] = None
    #: Serving-tier identity: which registered tenant issued this op.
    #: ``None`` (the default) is the classic anonymous single-user path;
    #: the engine only adds per-tenant accounting when it is set.
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("op size must be >= 0")
        if self.weight < 1:
            raise ValueError("op weight must be >= 1")
        if self.data is not None and len(self.data) != self.size:
            raise ValueError(
                f"data length {len(self.data)} != size {self.size}")
        if self.lookup_offset is not None:
            if not self.is_read:
                raise ValueError("dependent lookups are read-only")
            if self.lookup_offset < 0 or self.lookup_size < 1:
                raise ValueError(
                    "dependent lookup needs lookup_offset >= 0 and "
                    "lookup_size >= 1")
        if self.cas:
            if self.is_read or self.lookup_offset is not None:
                raise ValueError("CAS ops are standalone writes")
            if self.data is None or len(self.data) != 8:
                raise ValueError("CAS swap value must be exactly 8 bytes")
            if self.compare is not None and len(self.compare) != 8:
                raise ValueError("CAS compare word must be exactly 8 bytes")
            if self.weight != 1:
                raise ValueError("CAS ops are weight-1 ops")
        elif self.compare is not None:
            raise ValueError("compare is only meaningful on CAS ops")

    @property
    def is_dependent(self) -> bool:
        """A pointer-chasing GET (index hop + log hop)."""
        return self.lookup_offset is not None

    @property
    def request_wire_bytes(self) -> int:
        """Bytes this op adds to a request batch."""
        payload = self.size if not self.is_read else 0
        return self.weight * (OP_HEADER_BYTES + payload)

    @property
    def response_wire_bytes(self) -> int:
        """Bytes this op adds to a response batch."""
        payload = self.size if self.is_read else 0
        return self.weight * (RESP_HEADER_BYTES + payload)


@dataclass
class OpResult:
    """Outcome of one :class:`EngineOp`, delivered via its completion event."""

    ok: bool
    data: Optional[bytes] = None
    error: Optional[str] = None
    latency: float = 0.0


@dataclass
class RequestBatch:
    """A batch of requests sent to a cache server in one RDMA write."""

    ops: List[EngineOp]
    connection_id: int
    created_at: float
    batch_id: int = field(default_factory=lambda: next(_BATCH_IDS))

    @property
    def total_ops(self) -> int:
        return sum(op.weight for op in self.ops)

    @property
    def wire_bytes(self) -> int:
        return sum(op.request_wire_bytes for op in self.ops)

    @property
    def response_bytes(self) -> int:
        return sum(op.response_wire_bytes for op in self.ops)


@dataclass
class ResponseBatch:
    """Results for one request batch, written back into the client's ring."""

    ops: List[EngineOp]
    results: List[OpResult]
    connection_id: int
    #: The request batch this answers (for outstanding-batch tracking).
    batch_id: int = 0

    def __post_init__(self) -> None:
        if len(self.ops) != len(self.results):
            raise ValueError("ops/results length mismatch")


@dataclass
class ConnectRequest:
    """Client -> server *Connect* message (§4.2).

    Carries "the number of physical regions the cache uses on the VM and
    the RDMA configuration": how many data regions to allocate, their
    size, whether communication is one-sided or two-sided, and -- if
    two-sided -- how many server cores the cache may use.  The client
    also passes the tokens of its response rings so the server can write
    results back.
    """

    client_name: str
    n_regions: int
    region_size: int
    server_threads: int
    queue_depth: int
    connections: int
    response_ring_tokens: Sequence[AccessToken]
    backed: bool = True

    def __post_init__(self) -> None:
        if self.n_regions < 0:
            raise ValueError("n_regions must be >= 0")
        if self.connections < 1:
            raise ValueError("connections must be >= 1")
        if len(self.response_ring_tokens) != self.connections:
            raise ValueError(
                "need exactly one response-ring token per connection")


@dataclass
class ConnectReply:
    """Server -> client reply: access tokens, one per region (§4.2)."""

    region_tokens: List[AccessToken]
    request_ring_tokens: List[AccessToken]
