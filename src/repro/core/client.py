"""The Redy cache client: the front end applications link against.

:class:`RedyClient` is the per-application entry point; its
:meth:`~RedyClient.create` implements Table 1's *Create* and returns a
:class:`RedyCache` -- the "virtual storage device abstraction that
supports a contiguous byte-addressable address space" of §3.3, with
asynchronous *Read* / *Write*, *Reshape*, and *Delete*.

The client also owns the robustness machinery of §6.2: it reacts to
reclamation notices by migrating affected regions to replacement VMs,
and to hard VM failures by re-provisioning and re-populating from the
optional backing file.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.cluster.allocator import AllocationError
from repro.core.config import Slo
from repro.core.engine import CacheDataPath
from repro.core.manager import CacheAllocation, CacheManager
from repro.core.migration import MigrationPolicy, migrate_regions
from repro.core.protocol import EngineOp
from repro.core.regions import AddressError, RegionTable
from repro.core.server import CacheServer
from repro.hardware.profiles import TestbedProfile
from repro.net.fabric import Fabric, Placement
from repro.obs.metrics import registry_of
from repro.sim.kernel import Environment, Event
from repro.sim.rng import RngRegistry

__all__ = ["CacheDeletedError", "CacheIoResult", "RedyCache", "RedyClient",
           "RetryPolicy"]


class CacheDeletedError(Exception):
    """Access to a deleted cache (§3.3: "Any later access to the cache
    will return an exception")."""


@dataclass
class CacheIoResult:
    """Outcome of one cache Read or Write."""

    ok: bool
    data: Optional[bytes] = None
    error: Optional[str] = None
    latency: float = 0.0
    #: Extra attempts the retry layer made before this result (0 when the
    #: first attempt answered).
    retries: int = 0
    #: Admission-control shed: seconds after which the caller should
    #: retry (``math.inf`` when the tenant's bucket can never refill).
    #: ``None`` everywhere outside the serving tier's shed path.
    retry_after: Optional[float] = None
    #: Which layer produced the bytes: ``"cache"`` for the remote data
    #: path, ``"backing"`` when the serving tier failed open to the
    #: tenant's local FASTER mirror.
    served_by: str = "cache"


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry for transient failures (§6.2 robustness).

    The default (one attempt, no timeout) is exactly the historical
    behaviour: errors surface to the caller on the first failure, which
    is what :class:`~repro.core.replication.ReplicatedCache` needs to
    fail over within one I/O.  Chaos scenarios and availability
    benchmarks opt into retries to ride out injected faults (QP errors,
    latency spikes) without giving up on the cache.
    """

    #: Total attempts (first try included).  1 = fail fast.
    max_attempts: int = 1
    #: Backoff before attempt ``k`` (k >= 2): ``base * 2**(k-2)``...
    base_backoff_s: float = 100e-6
    #: ...capped here, so a long fault does not grow the wait unboundedly.
    max_backoff_s: float = 10e-3
    #: Per-attempt deadline; ``None`` waits for the data path's own
    #: timeout machinery.  An expired attempt counts as failed (its
    #: in-flight I/O is abandoned, not cancelled -- RDMA semantics).
    attempt_timeout_s: Optional[float] = None
    #: Backoff jitter in [0, 1]: each wait is scaled by a factor drawn
    #: uniformly from ``[1 - jitter, 1]``.  With N clients retrying
    #: after the *same* fault (a shard VM kill hits every router
    #: front-end at once), zero jitter retries them in lockstep --
    #: synchronized retry storms at every backoff step.  The draw comes
    #: from the caller's sim RNG stream, so schedules are decorrelated
    #: across clients yet bit-reproducible from the seed.
    jitter: float = 0.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_s < 0 or self.max_backoff_s < self.base_backoff_s:
            raise ValueError("need 0 <= base_backoff_s <= max_backoff_s")
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_s(self, failures: int, rng=None) -> float:
        """Wait after ``failures`` consecutive failed attempts (>= 1).

        ``rng`` (a ``numpy`` generator, normally a per-cache stream from
        the sim's :class:`~repro.sim.rng.RngRegistry`) supplies the
        jitter draw; without one the wait is the deterministic cap.
        """
        wait = min(self.base_backoff_s * (2.0 ** (failures - 1)),
                   self.max_backoff_s)
        if self.jitter > 0.0 and rng is not None:
            wait *= 1.0 - self.jitter * float(rng.random())
        return wait


class RedyClient:
    """Factory for caches, colocated with one application."""

    def __init__(self, env: Environment, profile: TestbedProfile,
                 fabric: Fabric, manager: CacheManager, rngs: RngRegistry,
                 name: str = "redy-app",
                 placement: Placement = Placement()):
        self.env = env
        self.profile = profile
        self.fabric = fabric
        self.manager = manager
        self.rngs = rngs
        self.placement = placement
        self.endpoint = fabric.add_endpoint(name, placement)

    def create(self, capacity: int, slo: Slo,
               duration_s: float = math.inf, *,
               file: Optional[bytes] = None,
               region_bytes: int = 1 << 30,
               backed: bool = True,
               migration_policy: MigrationPolicy = MigrationPolicy(),
               retry_policy: RetryPolicy = RetryPolicy(),
               auto_recover: bool = False,
               exclude_servers: Optional[frozenset] = None,
               harvest: bool = False,
               use_verb_programs: Optional[bool] = None) -> "RedyCache":
        """Table 1 *Create*: provision a cache and optionally populate it
        with a prefix of ``file``.  Raises
        :class:`~repro.core.manager.SloUnsatisfiableError` (and leaves no
        state behind) when the request cannot be satisfied.
        ``exclude_servers`` keeps the cache off given fault domains
        (used by replication); ``harvest=True`` requests essentially-free
        stranded memory, accessed one-sided.  ``use_verb_programs``
        overrides the manager-chosen configuration's dependent-read
        transport (one-RTT verb programs vs classic two-hop GETs).
        """
        allocation = self.manager.allocate(
            capacity, slo, duration_s, client_placement=self.placement,
            region_bytes=region_bytes, exclude_servers=exclude_servers,
            harvest=harvest)
        if use_verb_programs is not None:
            allocation.config = replace(
                allocation.config, use_verb_programs=use_verb_programs)
        cache = RedyCache(self, allocation, slo, region_bytes,
                          backed=backed, backing_file=file,
                          migration_policy=migration_policy,
                          retry_policy=retry_policy,
                          auto_recover=auto_recover)
        if file is not None:
            cache.populate(file)
        return cache


class RedyCache:
    """One provisioned cache: a contiguous byte-addressable device."""

    def __init__(self, client: RedyClient, allocation: CacheAllocation,
                 slo: Slo, region_bytes: int, *, backed: bool,
                 backing_file: Optional[bytes],
                 migration_policy: MigrationPolicy,
                 retry_policy: RetryPolicy = RetryPolicy(),
                 auto_recover: bool = False):
        self.env = client.env
        self.profile = client.profile
        self.client = client
        self.manager = client.manager
        self.allocation = allocation
        self.slo = slo
        self.region_bytes = region_bytes
        self.backed = backed
        self.backing_file = backing_file
        self.migration_policy = migration_policy
        self.retry_policy = retry_policy
        #: When True, a VM that dies while still owning regions triggers
        #: :meth:`recover_from_failure` automatically -- the behaviour a
        #: production client needs under injected churn.  Off by default:
        #: existing experiments drive recovery explicitly.
        self.auto_recover = auto_recover
        self.deleted = False
        self.path = CacheDataPath(
            self.env, self.profile, allocation.config, client.endpoint,
            client.rngs.stream(f"cache-path-{allocation.allocation_id}"))
        #: Per-cache jitter stream: caches retrying after the same fault
        #: draw from distinct streams, so their schedules decorrelate.
        self._retry_rng = client.rngs.stream(
            f"client-retry-{allocation.allocation_id}")
        self.table = RegionTable(self.env, region_bytes)
        self._attached: set[str] = set()
        for server in allocation.servers:
            self._attach_and_map(server)
        self.manager.on_reclaim_notice(allocation, self._on_reclaim_notice)
        #: Completed migration reports, for the §7.4 experiments.
        self.migrations: list = []
        #: Migrations that lost the race against VM termination.
        self.migration_failures = 0
        #: VMs with a migration in flight -- at most one mover per VM,
        #: whether triggered by a reclaim notice, the lifetime guard, or
        #: the cost optimizer.
        self._migrating: set[int] = set()
        #: In-flight recoveries by server name; makes
        #: :meth:`recover_from_failure` idempotent so the auto-recovery
        #: hook and the failed-migration path cannot race a double
        #: re-provision of the same regions.
        self._recoveries: dict[str, Event] = {}
        metrics = registry_of(self.env)
        if metrics is not None:
            self._retries_counter = metrics.counter("client.retries")
            self._timeouts_counter = metrics.counter(
                "client.attempt_timeouts")
            self._recoveries_counter = metrics.counter("client.recoveries")
        else:
            self._retries_counter = None
            self._timeouts_counter = None
            self._recoveries_counter = None
        if self.auto_recover:
            for vm in allocation.vms:
                vm.on_terminated.append(self._on_vm_terminated)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _attach_and_map(self, server: CacheServer) -> None:
        name = server.endpoint.name
        n_regions = self.allocation.regions_per_server.get(name, 0)
        tokens = self.path.attach_server(
            server, n_regions=n_regions, region_size=self.region_bytes,
            backed=self.backed)
        self._attached.add(name)
        for token in tokens:
            self.table.append_region(token, name)

    def ensure_attached(self, server: CacheServer) -> None:
        """Connect to a server without allocating data regions (used by
        migration, which allocates regions itself)."""
        if server.endpoint.name not in self._attached:
            self.path.attach_server(server, n_regions=0,
                                    region_size=self.region_bytes,
                                    backed=self.backed)
            self._attached.add(server.endpoint.name)

    @property
    def capacity(self) -> int:
        return self.table.capacity

    def _server_by_name(self, name: str) -> CacheServer:
        for server in self.allocation.servers:
            if server.endpoint.name == name:
                return server
        raise KeyError(f"no cache server {name!r} in allocation")

    # ------------------------------------------------------------------
    # Table 1: Read / Write
    # ------------------------------------------------------------------

    def read(self, addr: int, size: int,
             callback: Optional[Callable[[CacheIoResult], None]] = None,
             *, tenant: Optional[str] = None) -> Event:
        """Asynchronous read; the returned event fires with a
        :class:`CacheIoResult` whose ``data`` holds ``size`` bytes.
        ``tenant`` tags the op for per-tenant engine accounting."""
        return self._start_io(True, addr, size, None, callback,
                              tenant=tenant)

    def write(self, addr: int, data: bytes,
              callback: Optional[Callable[[CacheIoResult], None]] = None,
              *, tenant: Optional[str] = None) -> Event:
        """Asynchronous write of ``data`` at ``addr``."""
        return self._start_io(False, addr, len(data), data, callback,
                              tenant=tenant)

    def cas(self, addr: int, compare: Optional[bytes], swap: bytes,
            callback: Optional[Callable[[CacheIoResult], None]] = None
            ) -> Event:
        """Asynchronous single-word compare-and-swap at ``addr``.

        The remote NIC atomically compares the 8-byte word at ``addr``
        against ``compare`` and, on a match, stores ``swap``.  The result
        carries the *observed original word* in ``data`` either way; a
        mismatch completes with ``ok=False`` and ``error="cas mismatch"``
        so optimistic callers (server-side eviction marking, lock words)
        can re-read and retry.  ``compare=None`` swaps unconditionally.
        """
        if len(swap) != 8 or (compare is not None and len(compare) != 8):
            raise ValueError("cas operates on one 8-byte word")
        if self.deleted:
            raise CacheDeletedError("cache was deleted")
        done = self.env.event()
        if callback is not None:
            done._add_callback(lambda event: callback(event.value))
        self.env.process(self._cas_io(addr, compare, swap, done),
                         name=f"redy-io-c@{addr}")
        return done

    def dependent_read(self, pointer_addr: int, size: int,
                       callback: Optional[Callable[[CacheIoResult], None]]
                       = None) -> Event:
        """Pointer-chasing read: dereference the little-endian u64 at
        ``pointer_addr`` and read ``size`` bytes at the address it holds.

        This is the FASTER-through-Redy GET shape (hash-bucket word ->
        hybrid-log record).  With ``use_verb_programs`` enabled on the
        cache's configuration the chase runs as a remote-side verb
        program in one round trip, with a self-verifying CAS guard on the
        pointer word (migration safety); otherwise -- or on endpoints
        without program support -- it takes the classic two sequential
        READs.  Either way the pointer and record must live in the same
        region: the pointer's target is a region-local offset.
        """
        return self._start_io(True, pointer_addr, size, None, callback,
                              dependent=True)

    def _start_io(self, is_read: bool, addr: int, size: int,
                  data: Optional[bytes],
                  callback: Optional[Callable],
                  dependent: bool = False,
                  tenant: Optional[str] = None) -> Event:
        if self.deleted:
            raise CacheDeletedError("cache was deleted")
        done = self.env.event()
        if callback is not None:
            done._add_callback(lambda event: callback(event.value))
        policy = self.retry_policy
        kind = "d" if dependent else ("r" if is_read else "w")
        if policy.max_attempts == 1 and policy.attempt_timeout_s is None:
            # Fail-fast default: no wrapper process on the hot path.
            self.env.process(
                self._io(is_read, addr, size, data, done,
                         dependent=dependent, tenant=tenant),
                name=f"redy-io-{kind}@{addr}")
        else:
            self.env.process(
                self._io_with_retry(is_read, addr, size, data, done,
                                    dependent=dependent, tenant=tenant),
                name=f"redy-io-retry-{kind}@{addr}")
        return done

    def _io_with_retry(self, is_read: bool, addr: int, size: int,
                       data: Optional[bytes], done: Event,
                       dependent: bool = False,
                       tenant: Optional[str] = None):
        """Drive :meth:`_io` attempts under the cache's retry policy.

        Capped exponential backoff between attempts; an optional
        per-attempt deadline turns a hung attempt into a failed one (the
        abandoned attempt's I/O keeps draining in the background, which
        is harmless -- results land on an event nobody waits on).
        """
        policy = self.retry_policy
        start = self.env.now
        result = CacheIoResult(ok=False, error="no attempts made")
        for attempt in range(policy.max_attempts):
            if attempt:
                if self._retries_counter is not None:
                    self._retries_counter.inc()
                yield self.env.timeout(
                    policy.backoff_s(attempt, rng=self._retry_rng))
            if self.deleted:
                result = CacheIoResult(ok=False, error="cache was deleted")
                break
            inner = self.env.event()
            kind = "d" if dependent else ("r" if is_read else "w")
            self.env.process(  # repro-lint: disable=L006 -- completion is observed through `inner`, yielded right below
                self._io(is_read, addr, size, data, inner,
                         dependent=dependent, tenant=tenant),
                name=f"redy-io-{kind}@{addr}#{attempt}")
            if policy.attempt_timeout_s is None:
                result = yield inner
            else:
                index, value = yield self.env.any_of(
                    [inner, self.env.timeout(policy.attempt_timeout_s)])
                if index == 1:
                    if self._timeouts_counter is not None:
                        self._timeouts_counter.inc()
                    result = CacheIoResult(
                        ok=False,
                        error=f"attempt timed out after "
                              f"{policy.attempt_timeout_s}s")
                else:
                    result = value
            if result.ok:
                break
        result.retries = attempt
        result.latency = self.env.now - start
        done.succeed(result)

    def _io(self, is_read: bool, addr: int, size: int,
            data: Optional[bytes], done: Event, dependent: bool = False,
            tenant: Optional[str] = None):
        if dependent:
            yield from self._dependent_io(addr, size, done)
            return
        start = self.env.now
        try:
            fragments = self.table.translate(addr, size)
        except AddressError as exc:
            done.succeed(CacheIoResult(ok=False, error=str(exc)))
            return
        ops: list[tuple] = []
        for fragment in fragments:
            gate = (self.table.read_gate(fragment.region_index) if is_read
                    else self.table.write_gate(fragment.region_index))
            if gate is not None:
                yield gate  # §6.2: paused until the region migrates
            # Re-resolve the mapping: it may have flipped while we waited.
            mapping = self.table.region(fragment.region_index)
            payload = None
            if data is not None:
                payload = data[fragment.buffer_offset:
                               fragment.buffer_offset + fragment.length]
            op = EngineOp(
                is_read=is_read, size=fragment.length, token=mapping.token,
                offset=fragment.offset, data=payload, tenant=tenant,
                completion=self.env.event())
            yield self.env.timeout(self.path.submission_overhead())
            yield self.path.submit(op)
            ops.append((fragment, op))
        results = yield self.env.all_of([op.completion for _f, op in ops])

        failures = [r for r in results if not r.ok]
        if failures:
            done.succeed(CacheIoResult(
                ok=False, error=failures[0].error,
                latency=self.env.now - start))
            return
        payload = None
        if is_read:
            buffer = bytearray(size)
            for (fragment, _op), result in zip(ops, results):
                if result.data is not None:
                    buffer[fragment.buffer_offset:
                           fragment.buffer_offset + fragment.length] = \
                        result.data
            payload = bytes(buffer)
        done.succeed(CacheIoResult(ok=True, data=payload,
                                   latency=self.env.now - start))

    def _dependent_io(self, pointer_addr: int, size: int, done: Event):
        """One pointer-chasing GET: translate the 8-byte pointer word,
        then hand the chase to the data path as a single dependent op.

        The engine picks the transport (one-RTT verb program when the
        configuration and endpoint allow it, two sequential READs
        otherwise) and the record offset resolves remotely -- the client
        never sees the intermediate pointer value.
        """
        start = self.env.now
        try:
            fragments = self.table.translate(pointer_addr, 8)
        except AddressError as exc:
            done.succeed(CacheIoResult(ok=False, error=str(exc)))
            return
        if len(fragments) != 1:
            done.succeed(CacheIoResult(
                ok=False,
                error="dependent read: pointer word spans regions"))
            return
        fragment = fragments[0]
        gate = self.table.read_gate(fragment.region_index)
        if gate is not None:
            yield gate  # §6.2: paused until the region migrates
        # Re-resolve the mapping: it may have flipped while we waited.
        mapping = self.table.region(fragment.region_index)
        op = EngineOp(
            is_read=True, size=size, token=mapping.token, offset=0,
            lookup_offset=fragment.offset, verify=True,
            completion=self.env.event())
        yield self.env.timeout(self.path.submission_overhead())
        yield self.path.submit(op)
        result = yield op.completion
        if not result.ok:
            done.succeed(CacheIoResult(
                ok=False, error=result.error,
                latency=self.env.now - start))
            return
        done.succeed(CacheIoResult(ok=True, data=result.data,
                                   latency=self.env.now - start))

    def _cas_io(self, addr: int, compare: Optional[bytes], swap: bytes,
                done: Event):
        """One standalone compare-and-swap: translate the 8-byte word,
        post a single CAS op, and pass the observed original through --
        even on a mismatch, which callers treat as data, not failure."""
        start = self.env.now
        try:
            fragments = self.table.translate(addr, 8)
        except AddressError as exc:
            done.succeed(CacheIoResult(ok=False, error=str(exc)))
            return
        if len(fragments) != 1:
            done.succeed(CacheIoResult(
                ok=False, error="cas: word spans regions"))
            return
        fragment = fragments[0]
        gate = self.table.write_gate(fragment.region_index)
        if gate is not None:
            yield gate  # §6.2: paused until the region migrates
        # Re-resolve the mapping: it may have flipped while we waited.
        mapping = self.table.region(fragment.region_index)
        op = EngineOp(
            is_read=False, size=8, token=mapping.token,
            offset=fragment.offset, data=swap, cas=True, compare=compare,
            completion=self.env.event())
        yield self.env.timeout(self.path.submission_overhead())
        yield self.path.submit(op)
        result = yield op.completion
        done.succeed(CacheIoResult(
            ok=result.ok, data=result.data, error=result.error,
            latency=self.env.now - start))

    def populate(self, file: bytes) -> None:
        """Synchronously load a prefix of ``file`` (Create's file param).

        Runs outside simulated time: initial population is part of cache
        construction, not of the measured workload.
        """
        self.load(0, file[:min(len(file), self.capacity)])

    def load(self, addr: int, data: bytes) -> None:
        """Zero-time bulk write, bypassing the data path.

        Simulation bootstrap only (population from *Create*'s file
        parameter, hybrid-log spills during benchmark setup) -- it is
        not part of the Table 1 API.
        """
        for fragment in self.table.translate(addr, len(data)):
            server = self._server_by_name(
                self.table.region(fragment.region_index).server_name)
            region = server.regions.get(fragment.token.region_id)
            if region is not None:
                region.local_write(
                    fragment.offset,
                    data[fragment.buffer_offset:
                         fragment.buffer_offset + fragment.length])

    # ------------------------------------------------------------------
    # Table 1: Reshape / Delete
    # ------------------------------------------------------------------

    def reshape(self, capacity: Optional[int] = None,
                slo: Optional[Slo] = None) -> Event:
        """Table 1 *Reshape*: change capacity and/or SLO (§3.3).

        Returns an event that fires with True on success; on failure the
        event fails with the underlying exception and the cache is
        unchanged.
        """
        if self.deleted:
            raise CacheDeletedError("cache was deleted")
        done = self.env.event()
        self.env.process(self._reshape(capacity, slo, done),
                         name="redy-reshape")
        return done

    def _reshape(self, capacity: Optional[int], slo: Optional[Slo],
                 done: Event):
        target_capacity = capacity if capacity is not None else self.capacity
        try:
            if slo is not None and slo != self.slo:
                yield from self._reshape_slo(target_capacity, slo)
            elif target_capacity < self.capacity:
                self._shrink(target_capacity)
            elif target_capacity > self.capacity:
                yield from self._grow(target_capacity)
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller
            done.fail(exc)
            return
        done.succeed(True)

    def _reshape_slo(self, capacity: int, slo: Slo):
        """SLO change: allocate a new cache, migrate, drop the old one."""
        new_allocation = self.manager.allocate(
            capacity, slo, client_placement=self.client.placement,
            region_bytes=self.region_bytes)
        new_cache = RedyCache(self.client, new_allocation, slo,
                              self.region_bytes, backed=self.backed,
                              backing_file=self.backing_file,
                              migration_policy=self.migration_policy)
        # Copy content region by region through the client.
        if self.backed:
            for index in range(min(len(self.table), len(new_cache.table))):
                result = yield self.read(index * self.region_bytes,
                                         self.region_bytes)
                if result.ok and result.data is not None:
                    yield new_cache.write(index * self.region_bytes,
                                          result.data)
        old_allocation = self.allocation
        self.manager.deallocate(old_allocation)
        # Adopt the new cache's internals.
        self.allocation = new_cache.allocation
        self.path = new_cache.path
        self.table = new_cache.table
        self._attached = new_cache._attached
        self.slo = slo
        self.manager.on_reclaim_notice(self.allocation,
                                       self._on_reclaim_notice)

    def _shrink(self, capacity: int) -> None:
        """Truncate the tail of the address space (§3.3)."""
        dropped = self.table.truncate(capacity)
        by_server: dict[str, int] = {}
        for mapping in dropped:
            by_server[mapping.server_name] = (
                by_server.get(mapping.server_name, 0) + 1)
            server = self._server_by_name(mapping.server_name)
            server.release_region(mapping.token.region_id)
        # Release VMs whose regions are all gone (Reallocate).
        for name in by_server:
            if not self.table.regions_on(name):
                server = self._server_by_name(name)
                vm = self.allocation.vms[
                    self.allocation.servers.index(server)]
                self.manager.release_vm(self.allocation, vm)
                self._attached.discard(name)

    def _grow(self, capacity: int):
        """Extend the address space, using headroom before new VMs.

        Any needed VM is allocated *before* the region table mutates, so
        a failed grow leaves the cache unchanged (§3.3).
        """
        needed = math.ceil(capacity / self.region_bytes) - len(self.table)
        # Headroom in the last VM first (§3.3).
        last_server = self.allocation.servers[-1]
        last_vm = self.allocation.vms[-1]
        usable_gb = last_vm.vm_type.memory_gb - 0.5
        fit = int(usable_gb * (1 << 30) // self.region_bytes)
        used = len(self.table.regions_on(last_server.endpoint.name))
        headroom = max(0, fit - used)
        take = min(needed, headroom)
        overflow = needed - take

        new_server = None
        if overflow > 0:
            # May raise AllocationError: nothing has been mutated yet.
            _vm, new_server = self.manager.allocate_replacement(
                self.allocation, overflow)

        if take > 0:
            for region in last_server.allocate_regions(
                    take, self.region_bytes, backed=self.backed):
                self.path.add_route(region.region_id,
                                    last_server.endpoint.name)
                self.table.append_region(region.token,
                                         last_server.endpoint.name)
        if new_server is not None:
            tokens = self.path.attach_server(
                new_server, n_regions=overflow,
                region_size=self.region_bytes, backed=self.backed)
            self._attached.add(new_server.endpoint.name)
            for token in tokens:
                self.table.append_region(token, new_server.endpoint.name)
        yield self.env.timeout(0)

    def delete(self) -> None:
        """Table 1 *Delete*: release all resources."""
        if self.deleted:
            return
        self.deleted = True
        self.manager.deallocate(self.allocation)

    # ------------------------------------------------------------------
    # Robustness (§6.2)
    # ------------------------------------------------------------------

    def _on_reclaim_notice(self, vm, deadline: float) -> None:
        self.env.process(self._migrate_off(vm),
                         name=f"redy-migrate-off-vm{vm.vm_id}")

    def claim_migration(self, vm) -> bool:
        """Try to become the sole mover of ``vm``'s regions."""
        if vm.vm_id in self._migrating:
            return False
        self._migrating.add(vm.vm_id)
        return True

    def release_migration_claim(self, vm) -> None:
        self._migrating.discard(vm.vm_id)

    def _migrate_off(self, vm):
        """Move every region off a doomed VM (reclaim notice received,
        or a preemptive decision).

        If the VM dies mid-copy -- the §7.4 risk when the cache on it is
        too large for the notice window -- the not-yet-moved regions are
        lost and recovery (backing file or zeroes) takes over.
        """
        if vm not in self.allocation.vms:
            return
        if not self.claim_migration(vm):
            # Another mover (guard / cost optimizer / earlier notice) is
            # already relocating this VM's regions.
            return
        try:
            yield from self._migrate_off_locked(vm)
        finally:
            self.release_migration_claim(vm)

    def _migrate_off_locked(self, vm):
        index = self.allocation.vms.index(vm)
        old_server = self.allocation.servers[index]
        affected = [m.index for m in
                    self.table.regions_on(old_server.endpoint.name)]
        if self.manager.provisioning_delay_s > 0:
            yield self.env.timeout(self.manager.provisioning_delay_s)
        try:
            new_vm, new_server = self.manager.allocate_replacement(
                self.allocation, len(affected), exclude_vm=vm)
            if self.auto_recover:
                new_vm.on_terminated.append(self._on_vm_terminated)
        except AllocationError:
            # Nowhere to migrate: the regions die with the VM and ops on
            # them will fail -- "the Redy client ... must be able to
            # cope with the loss" (§3.2).
            self.migration_failures += 1
            return
        try:
            report = yield from migrate_regions(
                self, old_server, new_server, affected,
                policy=self.migration_policy)
        except RuntimeError:
            # Source VM terminated before the copy finished.  The
            # regions stay paused; recovery re-provisions them and lifts
            # the gates.
            self.migration_failures += 1
            yield self.recover_from_failure(old_server.endpoint.name)
            return
        self.migrations.append(report)
        self.manager.release_vm(self.allocation, vm)

    def _on_vm_terminated(self, vm) -> None:
        """Auto-recovery hook: a VM died while (possibly) owning regions.

        Fires from ``Vm.on_terminated`` when the cache was created with
        ``auto_recover=True``.  A clean migration has already remapped
        and released by this point (``regions_on`` is empty), so only an
        actual loss starts recovery -- and ``recover_from_failure`` is
        idempotent, so racing the failed-migration path is safe.
        """
        if self.deleted or vm not in self.allocation.vms:
            return
        index = self.allocation.vms.index(vm)
        name = self.allocation.servers[index].endpoint.name
        if self.table.regions_on(name):
            self.recover_from_failure(name)

    def recover_from_failure(self, server_name: str) -> Event:
        """Re-provision regions lost to a hard VM failure.

        The replacement is re-populated from the backing file when one
        was given at Create time (§6.2: "the cache client can use a copy
        of the cache to populate the new cache"); otherwise the regions
        come back zeroed.  Affected regions are unavailable (ops pause)
        until recovery completes.  Idempotent: while one recovery of
        ``server_name`` is in flight, further calls return the same
        event instead of double-provisioning.
        """
        existing = self._recoveries.get(server_name)
        if existing is not None:
            return existing
        done = self.env.event()
        self._recoveries[server_name] = done
        done._add_callback(
            lambda _ev: self._recoveries.pop(server_name, None))
        if self._recoveries_counter is not None:
            self._recoveries_counter.inc()
        self.env.process(self._recover(server_name, done),
                         name=f"redy-recover-{server_name}")
        return done

    def _recover(self, server_name: str, done: Event):
        affected = [m.index for m in self.table.regions_on(server_name)]
        if not affected:
            # Nothing mapped there any more (an earlier recovery or a
            # migration finished first): success, nothing to do.
            done.succeed(True)
            return
        failed_server = self._server_by_name(server_name)
        for index in affected:
            self.table.pause_writes(index)
            self.table.pause_reads(index)
        # Provisioning a replacement VM is not instantaneous (§6.2);
        # zero delay models the pre-provisioned-VM strategy.
        if self.manager.provisioning_delay_s > 0:
            yield self.env.timeout(self.manager.provisioning_delay_s)
        vm_index = self.allocation.servers.index(failed_server)
        failed_vm = self.allocation.vms[vm_index]
        try:
            new_vm, server = self.manager.allocate_replacement(
                self.allocation, len(affected), exclude_vm=failed_vm)
            if self.auto_recover:
                new_vm.on_terminated.append(self._on_vm_terminated)
        except AllocationError as exc:
            for index in affected:
                self.table.resume(index)
            done.fail(exc)
            return
        regions = server.allocate_regions(
            len(affected), self.region_bytes, backed=self.backed)
        self.ensure_attached(server)
        ingest_bps = self.migration_policy.ingest_bandwidth_gbps * 1e9 / 8
        for index, region in zip(affected, regions):
            if self.backed and self.backing_file is not None:
                base = index * self.region_bytes
                chunk = self.backing_file[base:base + self.region_bytes]
                if chunk:
                    # Re-population moves real bytes; charge the same
                    # ingest bandwidth as migration.
                    yield self.env.timeout(len(chunk) / ingest_bps)
                    region.local_write(0, chunk)
            self.path.add_route(region.region_id, server.endpoint.name)
            self.table.remap(index, region.token, server.endpoint.name)
            self.table.resume(index)
        self.allocation.vms.remove(failed_vm)
        self.allocation.servers.remove(failed_server)
        self.allocation.regions_per_server.pop(server_name, None)
        self._attached.discard(server_name)
        done.succeed(True)
