"""Offline performance modeling (§5.2).

The modeler walks the powers-of-two measurement grid of a
:class:`~repro.core.space.ConfigSpace`, "measures" each grid
configuration with a pluggable measurer, and builds a
:class:`PerfModel` that predicts any configuration in the space by
linear interpolation between adjacent measured configurations -- the
paper's example: ``f(1,1,1,3)`` is estimated as the mean of
``f(1,1,1,2)`` and ``f(1,1,1,4)``.

*Early termination* skips grid points whose predecessor-along-an-axis
already failed to improve throughput ("if the throughput does not
improve from f(4,2,2,2) to f(8,2,2,2), there is no point in measuring
f(16,2,2,2)"); skipped points are filled with plateau estimates.

Two measurers are provided:

* :func:`make_engine_measurer` runs the full simulated testbed
  (:func:`repro.core.measurement.measure_config`) per grid point --
  the faithful but slower path;
* :func:`make_analytic_measurer` evaluates the analytic
  :class:`~repro.core.latency.DataPathModel` with multiplicative
  measurement noise -- the fast path for large campaigns.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import PerfPoint, RdmaConfig
from repro.core.latency import DataPathModel
from repro.core.measurement import measure_config
from repro.core.space import ConfigSpace
from repro.hardware.profiles import AZURE_HPC, TestbedProfile

__all__ = [
    "ModelingStats",
    "OfflineModeler",
    "PerfModel",
    "make_analytic_measurer",
    "make_engine_measurer",
    "make_testbed_measurer",
]

Measurer = Callable[[RdmaConfig], PerfPoint]

#: Throughput must improve by at least this factor for an axis step to
#: count as "improving" (early-termination sensitivity).
_IMPROVEMENT_EPSILON = 1.01

#: §5.2: "If one measurement takes a minute, including switching to the
#: new configuration, performing I/Os, and reporting the result".
MINUTES_PER_MEASUREMENT = 1.0

_Key = Tuple[int, int, int, int]


def _key(config: RdmaConfig) -> _Key:
    return (config.server_threads, config.client_threads,
            config.batch_size, config.queue_depth)


@dataclass(frozen=True)
class ModelingStats:
    """Campaign bookkeeping for the §5.2 / §7.3 numbers."""

    space_size: int
    grid_size: int
    measured: int
    estimated: int

    @property
    def campaign_minutes(self) -> float:
        """Wall time of the campaign at one minute per measurement."""
        return self.measured * MINUTES_PER_MEASUREMENT

    @property
    def naive_campaign_years(self) -> float:
        """What measuring the full space would cost (the "over five
        years" of §5.2)."""
        return self.space_size * MINUTES_PER_MEASUREMENT / (60 * 24 * 365)


class PerfModel:
    """An interpolated performance model for one (record size, distance)."""

    def __init__(self, space: ConfigSpace, switch_hops: int,
                 points: Dict[_Key, PerfPoint]):
        self.space = space
        self.switch_hops = switch_hops
        self._points = dict(points)
        self._s_axis = sorted({k[0] for k in points})
        self._c_axis = sorted({k[1] for k in points})
        self._b_axis = sorted({k[2] for k in points})
        self._q_axis = sorted({k[3] for k in points})
        self._bracket_cache: Dict[tuple, list] = {}
        self._predict_cache: Dict[_Key, PerfPoint] = {}

    @property
    def point_count(self) -> int:
        return len(self._points)

    def known(self, config: RdmaConfig) -> Optional[PerfPoint]:
        return self._points.get(_key(config))

    def bounds(self) -> tuple[PerfPoint, PerfPoint]:
        """(best, worst) corners: (min latency, max tput) / (max, min).

        Used to draw random SLOs "between the lowest and highest latency
        and throughput values in the model" (§7.3).
        """
        latencies = [p.latency for p in self._points.values()]
        tputs = [p.throughput for p in self._points.values()]
        return (PerfPoint(min(latencies), max(tputs)),
                PerfPoint(max(latencies), min(tputs)))

    @staticmethod
    def _bracket(axis: List[int], value: int) -> List[Tuple[int, float]]:
        """[(axis value, weight)] pairs for linear interpolation."""
        if value <= axis[0]:
            return [(axis[0], 1.0)]
        if value >= axis[-1]:
            return [(axis[-1], 1.0)]
        hi_index = bisect.bisect_left(axis, value)
        lo, hi = axis[hi_index - 1], axis[hi_index]
        if lo == value:
            return [(lo, 1.0)]
        t = (value - lo) / (hi - lo)
        return [(lo, 1.0 - t), (hi, t)]

    def _corner(self, s: int, c: int, b: int, q: int) -> PerfPoint:
        """Grid lookup with constraint snapping.

        The c >= s constraint can make a bracketing corner invalid (e.g.
        interpolating c=5 between grid 4 and 8 while s=8); such corners
        snap c up to the nearest measured value >= s.
        """
        c = max(c, s, 1)
        if (s, c, b, q) not in self._points:
            snapped = [v for v in self._c_axis if v >= c]
            for candidate in snapped:
                if (s, candidate, b, q) in self._points:
                    c = candidate
                    break
        point = self._points.get((s, c, b, q))
        if point is None:
            raise KeyError(
                f"no measured corner near (s={s}, c={c}, b={b}, q={q})")
        return point

    def _bracket_cached(self, axis_name: str, axis: List[int],
                        value: int) -> List[Tuple[int, float]]:
        cache_key = (axis_name, value)
        brackets = self._bracket_cache.get(cache_key)
        if brackets is None:
            brackets = self._bracket(axis, value)
            self._bracket_cache[cache_key] = brackets
        return brackets

    def predict(self, config: RdmaConfig) -> PerfPoint:
        """Interpolated (latency, throughput) for any configuration.

        Results are memoized: an online search may evaluate tens of
        thousands of leaves, many shared between searches.
        """
        key = _key(config)
        cached = self._predict_cache.get(key)
        if cached is not None:
            return cached
        s, c, b, q = key
        if s == 0:
            s_brackets = [(0, 1.0)]
            b_brackets = [(1, 1.0)]
        else:
            s_positive = [v for v in self._s_axis if v >= 1]
            s_brackets = self._bracket_cached("s", s_positive, s)
            b_brackets = self._bracket_cached("b", self._b_axis, b)
        c_brackets = self._bracket_cached("c", self._c_axis, c)
        q_brackets = self._bracket_cached("q", self._q_axis, q)

        latency = 0.0
        throughput = 0.0
        for s_val, s_w in s_brackets:
            for c_val, c_w in c_brackets:
                for b_val, b_w in b_brackets:
                    for q_val, q_w in q_brackets:
                        weight = s_w * c_w * b_w * q_w
                        corner = self._corner(s_val, c_val, b_val, q_val)
                        latency += weight * corner.latency
                        throughput += weight * corner.throughput
        point = PerfPoint(latency=latency, throughput=throughput)
        self._predict_cache[key] = point
        return point

    # -- vectorized plane prediction ------------------------------------

    def _weight_matrix(self, axis: List[int],
                       values: List[int]) -> np.ndarray:
        """Rows: interpolation weights of each value over ``axis``."""
        matrix = np.zeros((len(values), len(axis)))
        index_of = {v: i for i, v in enumerate(axis)}
        for row, value in enumerate(values):
            for axis_value, weight in self._bracket(axis, value):
                matrix[row, index_of[axis_value]] = weight
        return matrix

    def predict_plane(self, s: int, c: int) -> tuple[np.ndarray, np.ndarray]:
        """(latency, throughput) arrays over the full (b, q) plane.

        Shape ``(n_b, n_q)`` where b runs over ``space.b_values(s)`` and q
        over ``space.q_values()``.  Numerically identical to calling
        :meth:`predict` per leaf (same corners, same linear weights), but
        one matrix product instead of thousands of dictionary walks --
        this is what makes the online search interactive (§7.3 reports
        0.027 s average).  Planes are cached per (s, c).
        """
        cache_key = ("plane", s, c)
        cached = self._bracket_cache.get(cache_key)
        if cached is not None:
            return cached

        b_values = list(self.space.b_values(s))
        q_values = list(self.space.q_values())
        if s == 0:
            s_brackets = [(0, 1.0)]
            b_grid = [1]
        else:
            s_positive = [v for v in self._s_axis if v >= 1]
            s_brackets = self._bracket(s_positive, s)
            b_grid = self._b_axis
        c_brackets = self._bracket(self._c_axis, c)

        grid_lat = np.zeros((len(b_grid), len(self._q_axis)))
        grid_tput = np.zeros_like(grid_lat)
        for s_val, s_w in s_brackets:
            for c_val, c_w in c_brackets:
                weight = s_w * c_w
                for bi, b_val in enumerate(b_grid):
                    for qi, q_val in enumerate(self._q_axis):
                        corner = self._corner(s_val, c_val, b_val, q_val)
                        grid_lat[bi, qi] += weight * corner.latency
                        grid_tput[bi, qi] += weight * corner.throughput

        w_b = self._weight_matrix(b_grid, b_values)
        w_q = self._weight_matrix(self._q_axis, q_values)
        lat_plane = w_b @ grid_lat @ w_q.T
        tput_plane = w_b @ grid_tput @ w_q.T
        self._bracket_cache[cache_key] = (lat_plane, tput_plane)
        return lat_plane, tput_plane


@dataclass
class OfflineModeler:
    """Runs the offline modeling campaign for one configuration space."""

    space: ConfigSpace
    measurer: Measurer
    switch_hops: int = 1
    early_termination: bool = True
    _points: Dict[_Key, PerfPoint] = field(default_factory=dict)
    _measured: Dict[_Key, bool] = field(default_factory=dict)

    def build(self) -> tuple[PerfModel, ModelingStats]:
        """Measure the grid (with early termination) and build the model.

        A measurer exposing a ``prefetch(configs)`` hook (see
        :func:`make_testbed_measurer`) gets the whole grid up front so it
        can batch the measurements across a worker pool.  The prefetch is
        speculative: with early termination on, some prefetched points
        end up estimated rather than consumed -- wasted compute the
        parallel speedup more than pays for -- and since each point is a
        pure function of its own config, consuming a prefetched result
        is bit-identical to measuring on demand.
        """
        prefetch = getattr(self.measurer, "prefetch", None)
        if prefetch is not None:
            prefetch(self.space.iter_grid())
        for config in self.space.iter_grid():
            key = _key(config)
            plateau = self._plateau_source(key) if self.early_termination else None
            if plateau is not None:
                self._points[key] = self._estimate_from(plateau, key)
                self._measured[key] = False
            else:
                self._points[key] = self.measurer(config)
                self._measured[key] = True
        measured = sum(1 for flag in self._measured.values() if flag)
        stats = ModelingStats(
            space_size=self.space.size(),
            grid_size=self.space.grid_size(),
            measured=measured,
            estimated=len(self._points) - measured,
        )
        return PerfModel(self.space, self.switch_hops, self._points), stats

    # -- early termination --------------------------------------------

    def _axis_values(self, axis: int, key: _Key) -> List[int]:
        s = key[0]
        if axis == 0:
            return self.space.grid_s_values()
        if axis == 1:
            return self.space.grid_c_values(s)
        if axis == 2:
            return self.space.grid_b_values(s)
        return self.space.grid_q_values()

    def _predecessor(self, key: _Key, axis: int) -> Optional[_Key]:
        values = self._axis_values(axis, key)
        try:
            index = values.index(key[axis])
        except ValueError:
            return None
        if index == 0:
            return None
        pred = list(key)
        pred[axis] = values[index - 1]
        pred_key = tuple(pred)
        return pred_key if pred_key in self._points else None

    @staticmethod
    def _is_one_sided_key(key: _Key) -> bool:
        s, _c, b, _q = key
        return s == 0 or b == 1

    def _plateau_source(self, key: _Key) -> Optional[_Key]:
        """If some axis already stopped improving, return the plateau
        point to estimate from instead of measuring.

        The comparison is only meaningful within one transport regime:
        stepping from a one-sided point (b=1 or s=0) to a two-sided one
        changes the protocol, not just a parameter, so those steps never
        trigger termination.
        """
        for axis in range(4):
            pred = self._predecessor(key, axis)
            if pred is None:
                continue
            prepred = self._predecessor(pred, axis)
            if prepred is None:
                continue
            if (self._is_one_sided_key(prepred)
                    != self._is_one_sided_key(pred)):
                continue
            if (self._points[pred].throughput
                    <= self._points[prepred].throughput * _IMPROVEMENT_EPSILON):
                return pred
        return None

    def _estimate_from(self, source: _Key, key: _Key) -> PerfPoint:
        """Plateau estimate: throughput stays flat; latency scales with
        the depth/batch growth (L ~ q * cycle at the operating point)."""
        base = self._points[source]
        scale = 1.0
        if source[3] != key[3]:  # q axis
            scale *= key[3] / source[3]
        if source[2] != key[2]:  # b axis
            scale *= key[2] / source[2]
        return PerfPoint(latency=base.latency * scale,
                         throughput=base.throughput)


def make_analytic_measurer(profile: TestbedProfile = AZURE_HPC, *,
                           record_size: int, switch_hops: int = 1,
                           noise: Optional[float] = None,
                           seed: int = 0,
                           dependent_reads: bool = False) -> Measurer:
    """Measurer backed by the analytic model plus measurement noise.

    ``dependent_reads=True`` models the pointer-chasing GET workload:
    per-op latency comes from
    :meth:`~repro.core.latency.DataPathModel.dependent_read_round_trip`
    (which honours ``config.use_verb_programs``), and throughput is the
    closed-loop bound of ``q`` chases in flight per connection, capped
    by the NIC message rate at one message per program or two per
    two-hop chase.
    """
    model = DataPathModel(profile, switch_hops)
    rng = np.random.default_rng(seed)
    sigma = profile.measurement_noise if noise is None else noise

    def dependent_point(config: RdmaConfig) -> PerfPoint:
        nic = profile.nic
        rtt = model.dependent_read_round_trip(config, record_size)
        messages = 1 if config.use_verb_programs else 2
        cycle = max(rtt / config.queue_depth,
                    messages / (nic.message_rate_mops_per_qp * 1e6))
        throughput = min(
            config.client_threads / cycle,
            nic.message_rate_mops_total * 1e6 / messages)
        return PerfPoint(latency=max(rtt, config.queue_depth * cycle),
                         throughput=throughput)

    def measurer(config: RdmaConfig) -> PerfPoint:
        if dependent_reads:
            point = dependent_point(config)
        else:
            point = model.evaluate(config, record_size)
        if sigma <= 0:
            return point
        return PerfPoint(
            latency=point.latency * float(np.exp(rng.normal(0.0, sigma))),
            throughput=point.throughput * float(np.exp(rng.normal(0.0, sigma))),
        )

    return measurer


def make_engine_measurer(profile: TestbedProfile = AZURE_HPC, *,
                         record_size: int, switch_hops: int = 1,
                         seed: int = 0,
                         batches_per_connection: int = 60,
                         warmup_batches: int = 15,
                         dependent_reads: bool = False) -> Measurer:
    """Measurer that runs the full simulated testbed per grid point."""

    def measurer(config: RdmaConfig) -> PerfPoint:
        result = measure_config(
            config, record_size, profile=profile, switch_hops=switch_hops,
            batches_per_connection=batches_per_connection,
            warmup_batches=warmup_batches, seed=seed,
            dependent_reads=dependent_reads)
        return result.perf

    return measurer


class TestbedMeasurer:
    """An engine measurer that batches grid points through a sweep runner.

    Calling it measures one configuration like
    :func:`make_engine_measurer`'s closure does; :meth:`prefetch` hands a
    whole batch of configurations to a
    :class:`~repro.exec.runner.SweepRunner` first, so a parallel pool
    (and the on-disk result cache) serves the subsequent calls.  Every
    grid point uses the *same* seed -- like the serial engine measurer
    -- so prefetched, cached, and on-demand results are bit-identical.
    """

    def __init__(self, runner, profile: TestbedProfile = AZURE_HPC, *,
                 record_size: int, switch_hops: int = 1, seed: int = 0,
                 batches_per_connection: int = 60,
                 warmup_batches: int = 15,
                 dependent_reads: bool = False):
        self._runner = runner
        self._profile = profile
        self._record_size = record_size
        self._switch_hops = switch_hops
        self._seed = seed
        self._batches = batches_per_connection
        self._warmup = warmup_batches
        self._dependent_reads = dependent_reads
        self._results: Dict[RdmaConfig, PerfPoint] = {}

    def _task(self, config: RdmaConfig):
        from repro.exec.runner import SweepTask
        return SweepTask(
            config=config, record_size=self._record_size,
            profile=self._profile, switch_hops=self._switch_hops,
            read_fraction=0.5, batches_per_connection=self._batches,
            warmup_batches=self._warmup, seed=self._seed,
            dependent_reads=self._dependent_reads)

    def prefetch(self, configs) -> None:
        """Measure ``configs`` as one batch; later calls hit the table."""
        configs = [c for c in configs if c not in self._results]
        if not configs:
            return
        results = self._runner.run([self._task(c) for c in configs])
        for config, result in zip(configs, results):
            self._results[config] = result.perf

    def __call__(self, config: RdmaConfig) -> PerfPoint:
        point = self._results.get(config)
        if point is None:
            self.prefetch([config])
            point = self._results[config]
        return point


def make_testbed_measurer(profile: TestbedProfile = AZURE_HPC, *,
                          record_size: int, switch_hops: int = 1,
                          seed: int = 0,
                          batches_per_connection: int = 60,
                          warmup_batches: int = 15,
                          dependent_reads: bool = False,
                          runner=None) -> TestbedMeasurer:
    """Batch-mode engine measurer backed by ``repro.exec``.

    ``runner`` defaults to a fresh :class:`SweepRunner` with no cache
    (pool-size ``os.cpu_count()``); pass one explicitly to share a
    result cache or a metrics registry with the caller.
    """
    if runner is None:
        from repro.exec.runner import SweepRunner
        runner = SweepRunner()
    return TestbedMeasurer(
        runner, profile, record_size=record_size, switch_hops=switch_hops,
        seed=seed, batches_per_connection=batches_per_connection,
        warmup_batches=warmup_batches, dependent_reads=dependent_reads)
