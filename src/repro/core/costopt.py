"""Spot-market cost optimization (§6.1).

:class:`CostOptimizer` watches the :class:`~repro.cluster.pricing.
SpotMarket` and, whenever a different VM type would host one of the
cache's VMs materially cheaper, provisions the cheaper VM and live-
migrates the regions onto it (the same §6.2 machinery that handles
reclamations -- "Depending on the price of spot VMs, it could be
cheaper (although more disruptive) to allocate a larger VM and migrate
the content of the old VM to the new one").

A hysteresis threshold (``min_saving_fraction``) keeps it from chasing
noise, and one migration runs at a time.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.cluster.pricing import SpotMarket
from repro.cluster.vmtypes import VmType
from repro.core.migration import migrate_regions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.client import RedyCache

__all__ = ["CostOptimizer"]

#: Memory overhead per VM (matches the manager's sizing).
_SERVER_OVERHEAD_GB = 0.5


class CostOptimizer:
    """Keeps one cache on the cheapest adequate spot VMs."""

    def __init__(self, cache: "RedyCache", market: SpotMarket, *,
                 check_interval_s: float = 120.0,
                 min_saving_fraction: float = 0.25):
        if check_interval_s <= 0:
            raise ValueError("check_interval_s must be positive")
        if not 0.0 < min_saving_fraction < 1.0:
            raise ValueError("min_saving_fraction must be in (0, 1)")
        self.cache = cache
        self.env = cache.env
        self.market = market
        self.check_interval_s = check_interval_s
        self.min_saving_fraction = min_saving_fraction
        #: Completed cost-driven migrations and their summed hourly
        #: savings at decision time.
        self.migrations = 0
        self.hourly_savings = 0.0
        self._busy = False
        self.env.process(self._watch(), name="cost-optimizer")

    # ------------------------------------------------------------------

    def current_hourly_cost(self) -> float:
        """What the cache's VMs cost right now at market prices."""
        return sum(self.market.price(vm.vm_type, vm.spot)
                   for vm in self.cache.allocation.vms)

    def _vm_requirements(self, vm) -> tuple[int, float]:
        """(cores, memory_gb) one replacement VM must provide."""
        allocation = self.cache.allocation
        index = allocation.vms.index(vm)
        server = allocation.servers[index]
        n_regions = len(self.cache.table.regions_on(server.endpoint.name))
        memory_gb = (n_regions * self.cache.region_bytes / (1 << 30)
                     + _SERVER_OVERHEAD_GB)
        threads = math.ceil(allocation.config.server_threads
                            / max(len(allocation.vms), 1))
        return threads, memory_gb

    def _best_alternative(self, vm) -> Optional[VmType]:
        """A cheaper adequate VM type, if the saving clears the bar."""
        cores, memory_gb = self._vm_requirements(vm)
        candidates = self.market.cheapest_covering(cores, memory_gb)
        if not candidates:
            return None
        best = candidates[0]
        current_price = self.market.price(vm.vm_type, vm.spot)
        best_price = self.market.spot_price(best)
        if best_price <= current_price * (1.0 - self.min_saving_fraction):
            return best
        return None

    def _watch(self):
        while not self.cache.deleted:
            yield self.env.timeout(self.check_interval_s)
            if self._busy or self.cache.deleted:
                continue
            for vm in list(self.cache.allocation.vms):
                if not (vm.spot and vm.alive
                        and vm.reclaim_deadline is None):
                    continue
                alternative = self._best_alternative(vm)
                if alternative is None:
                    continue
                if not self.cache.claim_migration(vm):
                    continue  # the guard or a notice is already moving it
                saving = (self.market.price(vm.vm_type, vm.spot)
                          - self.market.spot_price(alternative))
                self._busy = True
                try:
                    yield from self._move(vm, alternative, saving)
                finally:
                    self.cache.release_migration_claim(vm)
                    self._busy = False
                break  # at most one move per tick

    def _move(self, vm, vm_type: VmType, saving: float):
        cache = self.cache
        allocation = cache.allocation
        index = allocation.vms.index(vm)
        old_server = allocation.servers[index]
        affected = [m.index for m in
                    cache.table.regions_on(old_server.endpoint.name)]
        if not affected:
            return
        if cache.manager.provisioning_delay_s > 0:
            yield self.env.timeout(cache.manager.provisioning_delay_s)
        _new_vm, new_server = cache.manager.allocate_replacement(
            allocation, len(affected), exclude_vm=vm, vm_type=vm_type)
        try:
            report = yield from migrate_regions(
                cache, old_server, new_server, affected,
                policy=cache.migration_policy)
        except RuntimeError:
            # The source VM died mid-move (a reclamation raced us);
            # standard recovery takes over.
            cache.migration_failures += 1
            yield cache.recover_from_failure(old_server.endpoint.name)
            return
        cache.migrations.append(report)
        if vm in allocation.vms:
            cache.manager.release_vm(allocation, vm)
        self.migrations += 1
        self.hourly_savings += saving
