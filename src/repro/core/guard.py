"""Preemptive spot-VM migration (§6.1).

The reclamation notice (30-120 s) bounds how much cache can be moved
after the warning -- §7.4's "spot VMs of <= 27 GB" rule.  A predictor
(§6.1's cited direction) lifts that bound: :class:`SpotGuard`
periodically compares each spot VM's age against the predicted safe
age for its type and starts moving regions *before* any notice, so
even caches too large for the notice window survive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Set

from repro.cluster.prediction import SpotLifetimePredictor
from repro.sim.kernel import Environment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.client import RedyCache

__all__ = ["SpotGuard"]


class SpotGuard:
    """Watches one cache's spot VMs and migrates preemptively."""

    def __init__(self, cache: "RedyCache",
                 predictor: SpotLifetimePredictor, *,
                 check_interval_s: float = 5.0,
                 risk: float = 0.1):
        if check_interval_s <= 0:
            raise ValueError("check_interval_s must be positive")
        if not 0.0 < risk < 1.0:
            raise ValueError("risk must be in (0, 1)")
        self.cache = cache
        self.env: Environment = cache.env
        self.predictor = predictor
        self.check_interval_s = check_interval_s
        self.risk = risk
        #: VMs already being handled, to fire at most once each.
        self._handled: Set[int] = set()
        #: Preemptive migrations started.
        self.preemptive_migrations = 0
        self._process = self.env.process(self._watch(), name="spot-guard")

    def _watch(self):
        while not self.cache.deleted:
            yield self.env.timeout(self.check_interval_s)
            for vm in list(self.cache.allocation.vms):
                if not (vm.spot and vm.alive):
                    continue
                if vm.reclaim_deadline is not None:
                    continue  # already warned; the normal path handles it
                if vm.vm_id in self._handled:
                    continue
                threshold = self.predictor.safe_age(vm.vm_type.name,
                                                    self.risk)
                if threshold is None:
                    continue
                age = self.env.now - vm.created_at
                if age >= threshold:
                    self._handled.add(vm.vm_id)
                    self.preemptive_migrations += 1
                    self.env.process(  # repro-lint: disable=L006 -- top-level driver; a failed preemptive migration falls back to the reactive lost-region path
                        self.cache._migrate_off(vm),
                        name=f"preemptive-migrate-vm{vm.vm_id}")
