"""Region migration (§6.2).

When a VM hosting cache regions is reclaimed (or a cheaper VM shows up),
the affected regions move to a new VM: the new VM pulls the data with
one-sided READs over a bandwidth-optimized connection, and the client
flips its region table when each region lands.

Two optimizations keep the foreground workload alive (evaluated in
Figures 15/16):

* **unpaused reads** -- reads keep hitting the old VM and "immediately
  switch to the new VM when the migration is over";
* **pause-on-migration writes** -- regions migrate one at a time and
  writes pause "only to the region being migrated".

Both default to on; the benchmarks flip them off to reproduce the
paper's unoptimized baseline (throughput drops proportional to the
migrated fraction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence

from repro.core.server import CacheServer
from repro.net.qp import QueuePair
from repro.net.verbs import RdmaOp, WorkRequest
from repro.obs.metrics import registry_of
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.client import RedyCache

__all__ = ["MigrationPolicy", "MigrationReport", "migrate_regions"]


@dataclass(frozen=True)
class MigrationPolicy:
    """Mechanics and optimizations of a region migration."""

    #: Keep serving reads from the old VM while its regions migrate.
    unpaused_reads: bool = True
    #: Pause writes only to the region currently being migrated (off =
    #: pause every affected region for the whole migration).
    pause_per_region: bool = True
    #: Transfer granularity of the one-sided bulk reads.
    chunk_bytes: int = 1 << 20
    #: In-flight chunks on the migration connection.
    queue_depth: int = 8
    #: Receiver-side ingest rate (copy + registration on the new VM's
    #: single migration thread).  This is the end-to-end bottleneck:
    #: 8 Gbit/s reproduces the paper's 1.09 s per 1 GB region (§7.4).
    ingest_bandwidth_gbps: float = 8.0


@dataclass
class MigrationReport:
    """What a completed migration did and how long it took."""

    regions_moved: List[int]
    bytes_moved: int
    started_at: float
    finished_at: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


def migrate_regions(cache: "RedyCache", old_server: CacheServer,
                    new_server: CacheServer,
                    region_indices: Sequence[int],
                    policy: MigrationPolicy = MigrationPolicy()):
    """Process: move ``region_indices`` from ``old_server`` to
    ``new_server``, updating the cache's region table as each region
    completes.  Returns a :class:`MigrationReport`.
    """
    env = cache.env
    table = cache.table
    started_at = env.now
    metrics = registry_of(env)
    pause_window = bytes_counter = None
    if metrics is not None:
        #: Per-region write-pause windows -- the §7.4 robustness number
        #: the optimizations exist to shrink.
        pause_window = metrics.histogram("migration.pause_window")
        bytes_counter = metrics.counter("migration.bytes_moved")
        metrics.counter("migration.runs").inc()
    pause_started: dict[int, float] = {}

    def _pause(index: int) -> None:
        pause_started[index] = env.now
        table.pause_writes(index)
        if not policy.unpaused_reads:
            table.pause_reads(index)

    def _resume(index: int) -> None:
        table.resume(index)
        if pause_window is not None and index in pause_started:
            pause_window.observe(env.now - pause_started.pop(index))

    # "The cache client needs to tell the new VM to establish a
    # bandwidth-optimized connection with the existing cache" (§6.2).
    qp = QueuePair(env, new_server.endpoint, old_server.endpoint,
                   max_depth=min(policy.queue_depth,
                                 cache.profile.nic.max_queue_depth))
    ingest = Resource(env, slots=1)

    # The migration QP is a temporary bulk pipe: reclaim it no matter
    # how the migration ends, or it stays registered on both endpoints
    # (fault flushes would walk it and reclaim storms would count it)
    # long after the source VM is gone.
    try:
        if not policy.pause_per_region:
            # Unoptimized baseline: everything affected pauses for the
            # whole migration.
            for index in region_indices:
                _pause(index)

        bytes_moved = 0
        for index in region_indices:
            if policy.pause_per_region:
                _pause(index)

            old_token = table.region(index).token
            new_region = new_server.allocate_regions(
                1, cache.region_bytes, backed=cache.backed)[0]

            # Pull the region chunk by chunk; the QP pipelines up to
            # queue_depth chunks while the ingest thread copies.
            chunk_events = []
            offset = 0
            while offset < cache.region_bytes:
                length = min(policy.chunk_bytes,
                             cache.region_bytes - offset)
                wr = WorkRequest(RdmaOp.READ, old_token, offset, length)
                completion_event = qp.post(wr)
                chunk_events.append(env.process(
                    _ingest_chunk(env, completion_event, new_region,
                                  offset, length, ingest, policy),
                    name=f"migrate:r{index}:+{offset}"))
                offset += length
            results = yield env.all_of(chunk_events)
            if not all(results):
                raise RuntimeError(
                    f"migration of region {index} failed: source VM gone")
            bytes_moved += cache.region_bytes
            if bytes_counter is not None:
                bytes_counter.inc(cache.region_bytes)

            # Flip the region table, then resume paused writers: "After
            # a region has been migrated, the cache client updates its
            # region table using the new VM and resumes paused writes."
            cache.ensure_attached(new_server)
            cache.path.add_route(new_region.region_id,
                                 new_server.endpoint.name)
            table.remap(index, new_region.token, new_server.endpoint.name)
            if policy.pause_per_region:
                _resume(index)

        if not policy.pause_per_region:
            for index in region_indices:
                _resume(index)
    finally:
        if not qp.reclaimed:
            qp.reclaim()

    return MigrationReport(
        regions_moved=list(region_indices), bytes_moved=bytes_moved,
        started_at=started_at, finished_at=env.now)


def _ingest_chunk(env, completion_event, new_region, offset, length,
                  ingest: Resource, policy: MigrationPolicy):
    """Receive one chunk and copy it into the new region."""
    completion = yield completion_event
    if not completion.ok:
        return False
    yield ingest.acquire()
    try:
        yield env.timeout(length * 8 / (policy.ingest_bandwidth_gbps * 1e9))
    finally:
        ingest.release()
    if completion.data is not None:
        new_region.local_write(offset, completion.data)
    return True
