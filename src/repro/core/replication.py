"""Replicated caches: the §6.2 alternative to migrate-and-repopulate.

"If this risk is unacceptable or if a VM failure is too disruptive, the
cache manager could hold pre-provisioned VMs as targets for migration.
Another alternative is replicating the cache."  (§6.2)

:class:`ReplicatedCache` keeps ``r`` full copies on disjoint physical
servers.  Writes go to every replica (write-all, read-primary, so a
failover never loses acknowledged data); reads go to the primary and
fail over to the next replica the moment the primary errors.  After a
failover, :meth:`restore_redundancy` builds a fresh replica in the
background from the surviving primary.

The trade is explicit: ~r× the hourly cost buys near-zero unavailability
on a VM failure, versus the migrate/re-populate path's seconds-long
window.  The ``benchmarks/test_abl_replication_recovery.py`` ablation
quantifies it.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from repro.core.client import CacheIoResult, RedyCache, RedyClient
from repro.core.config import Slo
from repro.obs.metrics import registry_of
from repro.sim.kernel import Event

__all__ = ["ReplicatedCache"]


class ReplicatedCache:
    """``r`` RedyCaches behind one read/write interface."""

    def __init__(self, client: RedyClient, replicas: List[RedyCache]):
        if not replicas:
            raise ValueError("need at least one replica")
        self.client = client
        self.env = client.env
        self.replicas = list(replicas)
        #: Failovers that have happened (for tests/benchmarks).
        self.failovers = 0
        metrics = registry_of(self.env)
        if metrics is not None:
            #: Failure-detected -> replica-answered windows, the §6.2
            #: "~10 us" number the availability benchmark reads back.
            self._failover_latency = metrics.histogram(
                "replication.failover_latency")
            self._failover_counter = metrics.counter("replication.failovers")
            self._lost_writes = metrics.counter("replication.lost_writes")
        else:
            self._failover_latency = None
            self._failover_counter = None
            self._lost_writes = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, client: RedyClient, capacity: int, slo: Slo,
               n_replicas: int = 2, *,
               duration_s: float = math.inf,
               file: Optional[bytes] = None,
               region_bytes: int = 1 << 30) -> "ReplicatedCache":
        """Provision ``n_replicas`` copies on disjoint physical servers."""
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        replicas: List[RedyCache] = []
        used_servers: set[int] = set()
        for _ in range(n_replicas):
            cache = client.create(
                capacity, slo, duration_s, file=file,
                region_bytes=region_bytes,
                exclude_servers=frozenset(used_servers))
            replicas.append(cache)
            used_servers.update(vm.server.server_id
                                for vm in cache.allocation.vms)
        return cls(client, replicas)

    @property
    def primary(self) -> RedyCache:
        return self.replicas[0]

    @property
    def capacity(self) -> int:
        return self.primary.capacity

    @property
    def hourly_cost(self) -> float:
        return sum(r.allocation.hourly_cost for r in self.replicas)

    def fault_domains(self) -> List[set]:
        """Physical-server ids per replica (disjoint by construction)."""
        return [
            {vm.server.server_id for vm in replica.allocation.vms}
            for replica in self.replicas
        ]

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def read(self, addr: int, size: int,
             callback: Optional[Callable[[CacheIoResult], None]] = None
             ) -> Event:
        """Read from the primary; on error, fail over and retry."""
        done = self.env.event()
        if callback is not None:
            done._add_callback(lambda event: callback(event.value))
        self.env.process(self._read(addr, size, done),
                         name=f"repl-read@{addr}")
        return done

    def _read(self, addr: int, size: int, done: Event):
        start = self.env.now
        failure_detected_at = None
        for _attempt in range(len(self.replicas)):
            result = yield self.primary.read(addr, size)
            if result.ok:
                if (failure_detected_at is not None
                        and self._failover_latency is not None):
                    self._failover_latency.observe(
                        self.env.now - failure_detected_at)
                result.latency = self.env.now - start
                done.succeed(result)
                return
            if failure_detected_at is None:
                failure_detected_at = self.env.now
            if len(self.replicas) == 1:
                break
            self._fail_over()
        result.latency = self.env.now - start
        done.succeed(result)

    def write(self, addr: int, data: bytes,
              callback: Optional[Callable[[CacheIoResult], None]] = None
              ) -> Event:
        """Write to every replica; completes when all live replicas ack.

        A replica that errors is dropped from the group (its VM died);
        the write succeeds as long as one replica holds the data.
        """
        done = self.env.event()
        if callback is not None:
            done._add_callback(lambda event: callback(event.value))
        self.env.process(self._write(addr, data, done),
                         name=f"repl-write@{addr}")
        return done

    def _write(self, addr: int, data: bytes, done: Event):
        start = self.env.now
        results = yield self.env.all_of(
            [replica.write(addr, data) for replica in self.replicas])
        survivors = [replica for replica, result
                     in zip(self.replicas, results) if result.ok]
        if survivors and len(survivors) < len(self.replicas):
            dropped = len(self.replicas) - len(survivors)
            self.failovers += dropped
            if self._failover_counter is not None:
                self._failover_counter.inc(dropped)
            self.replicas = survivors
        if survivors:
            done.succeed(CacheIoResult(ok=True,
                                       latency=self.env.now - start))
        else:
            # No replica acknowledged: this write is lost for good.
            if self._lost_writes is not None:
                self._lost_writes.inc()
            failed = next(r for r in results if not r.ok)
            done.succeed(CacheIoResult(ok=False, error=failed.error,
                                       latency=self.env.now - start))

    def _fail_over(self) -> None:
        """Drop the dead primary; the next replica takes over.

        The dead cache's VMs are already gone, so there is nothing to
        deallocate -- the surviving VM list is authoritative.
        """
        dead = self.replicas.pop(0)
        dead.deleted = True
        self.failovers += 1
        if self._failover_counter is not None:
            self._failover_counter.inc()

    # ------------------------------------------------------------------
    # Redundancy maintenance
    # ------------------------------------------------------------------

    def restore_redundancy(self, target_replicas: int = 2) -> Event:
        """Rebuild replicas up to ``target_replicas`` from the primary."""
        done = self.env.event()
        self.env.process(self._restore(target_replicas, done),
                         name="repl-restore")
        return done

    def _restore(self, target_replicas: int, done: Event):
        while len(self.replicas) < target_replicas:
            used = {vm.server.server_id
                    for replica in self.replicas
                    for vm in replica.allocation.vms}
            fresh = self.client.create(
                self.primary.capacity, self.primary.slo,
                region_bytes=self.primary.region_bytes,
                exclude_servers=frozenset(used))
            # Copy content region by region from the primary.
            region_bytes = self.primary.region_bytes
            for index in range(len(self.primary.table)):
                result = yield self.primary.read(index * region_bytes,
                                                 region_bytes)
                if not result.ok:
                    fresh.delete()
                    done.fail(RuntimeError(
                        f"re-replication failed: {result.error}"))
                    return
                yield fresh.write(index * region_bytes, result.data)
            self.replicas.append(fresh)
        done.succeed(len(self.replicas))

    def delete(self) -> None:
        for replica in self.replicas:
            if not replica.deleted:
                replica.delete()
