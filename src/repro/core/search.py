"""Online SLO-based configuration search -- the Figure 10 algorithm.

Given a built :class:`~repro.core.modeling.PerfModel`, the searcher
walks the five-level configuration tree in pre-order (s, then c, then b,
then q), evaluating leaves against the SLO:

* latency above the SLO -> INVALID; because modelled latency is
  monotone non-decreasing along every axis, all remaining siblings can
  be pruned;
* latency and throughput both satisfied -> SUCCESS; pre-order guarantees
  this is the configuration "with the fewest server threads among all
  possible configurations and thus incurs minimal cost";
* latency fine but throughput short -> CONTINUE to the next sibling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.core.config import PerfPoint, RdmaConfig, Slo
from repro.core.space import ConfigSpace

__all__ = ["SearchStats", "SearchStatus", "SloSearcher"]

Predictor = Callable[[RdmaConfig], PerfPoint]


class SearchStatus(enum.Enum):
    SUCCESS = "success"
    INVALID = "invalid"
    CONTINUE = "continue"


@dataclass
class SearchStats:
    """Work counters for the §7.3 search-cost numbers."""

    leaves_evaluated: int = 0
    nodes_visited: int = 0
    subtrees_pruned: int = 0


@dataclass
class SloSearcher:
    """Searches one configuration space for an SLO-satisfying config."""

    space: ConfigSpace
    predictor: Predictor
    #: Disable to measure how much work pruning saves (§7.3 reports 25%
    #: fewer explored leaves with pruning on).
    pruning: bool = True
    #: Short-circuit (s, c) subtrees whose best corner (b=B, q=Q) cannot
    #: meet the throughput floor.  Result-equivalent to the plain scan
    #: because modelled throughput is monotone non-decreasing in b and q;
    #: it only changes how much work a doomed subtree costs.
    throughput_bound: bool = True
    #: An object with ``predict_plane(s, c)`` (normally the
    #: :class:`~repro.core.modeling.PerfModel`).  When present, q-rows are
    #: scanned vectorized -- identical outcomes, interactive speed.
    plane_source: Any = None
    stats: SearchStats = field(default_factory=SearchStats)

    @classmethod
    def for_model(cls, model: Any, **kwargs) -> "SloSearcher":
        """Searcher over a built :class:`PerfModel`."""
        return cls(space=model.space, predictor=model.predict,
                   plane_source=model, **kwargs)

    def search(self, slo: Slo) -> Optional[RdmaConfig]:
        """Return the cheapest configuration satisfying ``slo``, or None.

        Fresh statistics are collected on every call.
        """
        self.stats = SearchStats()
        found: list[RdmaConfig] = []
        status = self._traverse_s(slo, found)
        if status is SearchStatus.SUCCESS:
            return found[0]
        return None

    # The four levels below mirror the recursive Traverse of Figure 10,
    # specialized per level so the virtual tree never materializes.

    def _traverse_s(self, slo: Slo, found: list) -> SearchStatus:
        self.stats.nodes_visited += 1
        result = SearchStatus.INVALID
        values = list(self.space.s_values())
        for index, s in enumerate(values):
            child = self._traverse_c(slo, found, s)
            if child is SearchStatus.SUCCESS:
                return SearchStatus.SUCCESS
            if child is SearchStatus.INVALID and self.pruning:
                self.stats.subtrees_pruned += len(values) - index - 1
                return result
            if child is SearchStatus.CONTINUE:
                result = SearchStatus.CONTINUE
        return result

    def _traverse_c(self, slo: Slo, found: list, s: int) -> SearchStatus:
        self.stats.nodes_visited += 1
        result = SearchStatus.INVALID
        values = list(self.space.c_values(s))
        for index, c in enumerate(values):
            child = self._traverse_b(slo, found, s, c)
            if child is SearchStatus.SUCCESS:
                return SearchStatus.SUCCESS
            if child is SearchStatus.INVALID and self.pruning:
                self.stats.subtrees_pruned += len(values) - index - 1
                return result
            if child is SearchStatus.CONTINUE:
                result = SearchStatus.CONTINUE
        return result

    def _subtree_hopeless(self, slo: Slo, s: int, c: int) -> Optional[SearchStatus]:
        """Cheap verdict for a (s, c) subtree that cannot meet throughput.

        Mirrors what the plain scan would conclude, in two predictions:
        the subtree's minimum-latency leaf decides INVALID vs CONTINUE,
        and its maximum-throughput corner decides whether scanning can
        possibly succeed.
        """
        if not self.throughput_bound:
            return None
        b_max = self.space.b_values(s)[-1]
        q_values = self.space.q_values()
        best_corner = self.predictor(RdmaConfig(c, s, b_max, q_values[-1]))
        if best_corner.throughput >= slo.min_throughput:
            return None
        first_leaf = self.predictor(RdmaConfig(c, s, 1, q_values[0]))
        if first_leaf.latency > slo.max_latency:
            return SearchStatus.INVALID
        return SearchStatus.CONTINUE

    def _traverse_b(self, slo: Slo, found: list, s: int,
                    c: int) -> SearchStatus:
        self.stats.nodes_visited += 1
        verdict = self._subtree_hopeless(slo, s, c)
        if verdict is not None:
            return verdict
        planes = (self.plane_source.predict_plane(s, c)
                  if self.plane_source is not None else None)
        result = SearchStatus.INVALID
        values = list(self.space.b_values(s))
        for index, b in enumerate(values):
            if planes is not None:
                child = self._scan_q_row(slo, found, s, c, b,
                                         planes[0][index], planes[1][index])
            else:
                child = self._traverse_q(slo, found, s, c, b)
            if child is SearchStatus.SUCCESS:
                return SearchStatus.SUCCESS
            if child is SearchStatus.INVALID and self.pruning:
                self.stats.subtrees_pruned += len(values) - index - 1
                return result
            if child is SearchStatus.CONTINUE:
                result = SearchStatus.CONTINUE
        return result

    def _scan_q_row(self, slo: Slo, found: list, s: int, c: int, b: int,
                    lat_row: np.ndarray,
                    tput_row: np.ndarray) -> SearchStatus:
        """Vectorized equivalent of :meth:`_traverse_q` on one q-row."""
        self.stats.nodes_visited += 1
        q_values = list(self.space.q_values())
        n = len(q_values)
        invalid = lat_row > slo.max_latency
        success = (~invalid) & (tput_row >= slo.min_throughput)
        first_invalid = int(np.argmax(invalid)) if invalid.any() else n
        if self.pruning:
            success_prefix = success[:first_invalid]
            if success_prefix.any():
                first_success = int(np.argmax(success_prefix))
                self.stats.leaves_evaluated += first_success + 1
                found.append(RdmaConfig(c, s, b, q_values[first_success]))
                return SearchStatus.SUCCESS
            if first_invalid < n:
                self.stats.leaves_evaluated += first_invalid + 1
                self.stats.subtrees_pruned += n - first_invalid - 1
                return (SearchStatus.CONTINUE if first_invalid > 0
                        else SearchStatus.INVALID)
            self.stats.leaves_evaluated += n
            return SearchStatus.CONTINUE
        if success.any():
            first_success = int(np.argmax(success))
            self.stats.leaves_evaluated += first_success + 1
            found.append(RdmaConfig(c, s, b, q_values[first_success]))
            return SearchStatus.SUCCESS
        self.stats.leaves_evaluated += n
        if invalid.all():
            return SearchStatus.INVALID
        return SearchStatus.CONTINUE

    def _traverse_q(self, slo: Slo, found: list, s: int, c: int,
                    b: int) -> SearchStatus:
        self.stats.nodes_visited += 1
        result = SearchStatus.INVALID
        values = list(self.space.q_values())
        for index, q in enumerate(values):
            config = RdmaConfig(c, s, b, q)
            child = self._evaluate_leaf(slo, config)
            if child is SearchStatus.SUCCESS:
                found.append(config)
                return SearchStatus.SUCCESS
            if child is SearchStatus.INVALID and self.pruning:
                self.stats.subtrees_pruned += len(values) - index - 1
                return result
            if child is SearchStatus.CONTINUE:
                result = SearchStatus.CONTINUE
        return result

    def _evaluate_leaf(self, slo: Slo, config: RdmaConfig) -> SearchStatus:
        self.stats.leaves_evaluated += 1
        perf = self.predictor(config)
        if perf.latency > slo.max_latency:
            return SearchStatus.INVALID
        if perf.throughput >= slo.min_throughput:
            return SearchStatus.SUCCESS
        return SearchStatus.CONTINUE
