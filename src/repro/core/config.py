"""RDMA configurations, SLOs, and the Table 2 parameter bounds.

An :class:`RdmaConfig` is the paper's tuple ``(c, s, b, q)``:

* ``client_threads`` (c) -- client threads, one RDMA connection each;
* ``server_threads`` (s) -- cache-server threads, 0 meaning pure
  one-sided access with no batching;
* ``batch_size`` (b) -- requests per RDMA transfer, capped at
  ``ceil(4 KB / record size)`` because bandwidth utilization stops
  improving beyond 4 KB transfers;
* ``queue_depth`` (q) -- in-flight operations per connection, bounded by
  the NIC (16 on the paper's testbed).

The ablation switches (``lock_free``, ``one_sided_fast_path``,
``numa_affinity``) default to on; the Figure 7/8 benchmarks flip them to
rebuild the paper's optimization ladder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import NamedTuple

__all__ = [
    "ConfigurationError",
    "MIN_QUEUE_DEPTH_OPTIMIZED",
    "PerfPoint",
    "RdmaConfig",
    "Slo",
    "config_space_size",
    "max_batch_size",
]

#: Transfers stop improving bandwidth utilization beyond this size (§5.1),
#: which caps the batch size at ``ceil(4 KB / record_size)``.
BATCH_BYTES_CAP = 4096

#: The fully-loaded-QP optimization (§4.3) fixes the *minimum* queue depth:
#: "We measure the performance impact of queue depth, starting from one,
#: and choose the maximum value that improves both latency and
#: throughput."  On the paper's testbed that is 4, making the searchable
#: depths {4..16} -- the "(Q - opt.)" term of the §5.2 space-size formula
#: with opt. = 3.
MIN_QUEUE_DEPTH_OPTIMIZED = 4


class ConfigurationError(ValueError):
    """An RDMA configuration or SLO violates the Table 2 constraints."""


class PerfPoint(NamedTuple):
    """One performance observation: seconds per I/O and I/Os per second."""

    latency: float
    throughput: float

    @property
    def latency_us(self) -> float:
        return self.latency * 1e6

    @property
    def throughput_mops(self) -> float:
        return self.throughput / 1e6


def max_batch_size(record_size: int) -> int:
    """Upper bound for b: ``ceil(4 KB / record_size)`` (Table 2)."""
    if record_size < 1:
        raise ConfigurationError(f"record size must be >= 1, got {record_size}")
    return max(1, math.ceil(BATCH_BYTES_CAP / record_size))


@dataclass(frozen=True)
class RdmaConfig:
    """One point in the Redy configuration space."""

    client_threads: int
    server_threads: int
    batch_size: int
    queue_depth: int
    #: Static-optimization switches (§4.3); off only in ablation baselines.
    lock_free: bool = True
    one_sided_fast_path: bool = True
    numa_affinity: bool = True
    #: Dependent reads (pointer -> record GETs) execute as remote-side
    #: verb programs in one round trip instead of two sequential READs
    #: (see ``repro.net.programs``).  Off by default: the classic
    #: two-hop path is the measured baseline, and endpoints without
    #: chained-WQE support fall back to it anyway.
    use_verb_programs: bool = False
    #: Model control-plane costs (QP create/connect handshakes, memory
    #: registration, NIC QP-context cache pressure -- see
    #: ``repro.cplane``).  Off by default: the paper's benchmarks assume
    #: long-lived clients whose setup cost is amortized away, and the
    #: calibrated data-path timings must not shift.  When on, the engine
    #: creates its per-thread QPs *deferred* (lazy connect on first use).
    model_control_plane: bool = False

    def __post_init__(self) -> None:
        if self.client_threads < 1:
            raise ConfigurationError(
                f"client_threads must be >= 1, got {self.client_threads}")
        if self.server_threads < 0:
            raise ConfigurationError(
                f"server_threads must be >= 0, got {self.server_threads}")
        if self.server_threads > self.client_threads:
            # Table 2: each client thread has one connection and the server
            # runs at most one thread per connection, so s <= c.
            raise ConfigurationError(
                f"server_threads ({self.server_threads}) may not exceed "
                f"client_threads ({self.client_threads})")
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.server_threads == 0 and self.batch_size != 1:
            # No server threads -> nobody to unpack a batch: batching off.
            raise ConfigurationError(
                "batching requires server threads (s=0 forces b=1)")
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}")

    @property
    def uses_one_sided(self) -> bool:
        """True when requests bypass the server CPU entirely."""
        return self.server_threads == 0 or (
            self.batch_size == 1 and self.one_sided_fast_path)

    @property
    def total_cores(self) -> int:
        """Client + server cores the configuration consumes (its cost)."""
        return self.client_threads + self.server_threads

    def with_ablation(self, *, lock_free: bool | None = None,
                      one_sided_fast_path: bool | None = None,
                      numa_affinity: bool | None = None,
                      use_verb_programs: bool | None = None,
                      model_control_plane: bool | None = None,
                      ) -> "RdmaConfig":
        """Copy with some optimization switches flipped."""
        updates = {}
        if lock_free is not None:
            updates["lock_free"] = lock_free
        if one_sided_fast_path is not None:
            updates["one_sided_fast_path"] = one_sided_fast_path
        if numa_affinity is not None:
            updates["numa_affinity"] = numa_affinity
        if use_verb_programs is not None:
            updates["use_verb_programs"] = use_verb_programs
        if model_control_plane is not None:
            updates["model_control_plane"] = model_control_plane
        return replace(self, **updates)

    def describe(self) -> str:
        return (f"c={self.client_threads} s={self.server_threads} "
                f"b={self.batch_size} q={self.queue_depth}")


@dataclass(frozen=True)
class Slo:
    """A cache performance service-level objective.

    The SLO "specifies a maximum average latency and minimum average
    throughput of reads and of writes" (§3.3).  Like the paper's model we
    mix reads and writes into one target by taking the lower-performance
    operation, so one latency bound and one throughput floor suffice.
    """

    #: Maximum acceptable average I/O latency, seconds.
    max_latency: float
    #: Minimum acceptable aggregate throughput, I/Os per second.
    min_throughput: float
    #: Record size the application reads/writes, bytes.
    record_size: int
    #: Fraction of I/Os that are reads (used by the engine's workload mix).
    read_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.max_latency <= 0:
            raise ConfigurationError(
                f"max_latency must be positive, got {self.max_latency}")
        if self.min_throughput < 0:
            raise ConfigurationError(
                f"min_throughput must be >= 0, got {self.min_throughput}")
        if self.record_size < 1:
            raise ConfigurationError(
                f"record_size must be >= 1, got {self.record_size}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}")

    def is_satisfied_by(self, perf: PerfPoint) -> bool:
        return (perf.latency <= self.max_latency
                and perf.throughput >= self.min_throughput)


def config_space_size(max_client_threads: int, max_batch: int,
                      max_queue_depth: int,
                      min_queue_depth: int = MIN_QUEUE_DEPTH_OPTIMIZED) -> int:
    """Size of the configuration space (§5.2 formula).

    With C client cores, B the largest batch size, Q the NIC queue-depth
    limit, and ``opt. = min_queue_depth - 1`` optimized away by the
    fully-loaded-QP technique::

        (sum_{c=1}^{C} (c+1)) * B * (Q - opt.)  -  C * (B-1) * (Q - opt.)

    The subtracted term removes the invalid (s=0, b>1) combinations.
    For the paper's 8-byte-record example (C=30, B=512, Q=16, opt.=3)
    this is 3,095,430 -- the "~3M configurations" of §5.2.
    """
    if max_client_threads < 1 or max_batch < 1:
        raise ConfigurationError("C and B must be >= 1")
    if not 1 <= min_queue_depth <= max_queue_depth:
        raise ConfigurationError(
            f"need 1 <= min_queue_depth <= Q, got {min_queue_depth}, "
            f"{max_queue_depth}")
    c_s_pairs = sum(c + 1 for c in range(1, max_client_threads + 1))
    depth_options = max_queue_depth - (min_queue_depth - 1)
    total = c_s_pairs * max_batch * depth_options
    invalid = max_client_threads * (max_batch - 1) * depth_options
    return total - invalid
