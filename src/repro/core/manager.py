"""The global cache manager (Figure 4).

The cache manager sits between Redy clients and the cluster's VM
allocator.  It offers the three back-end operations of §3.2 --
*Allocate*, *Reallocate*, *Deallocate* -- and implements the §6.1
resource-allocation strategy:

1. translate the capacity + SLO into an RDMA configuration per network
   distance (via the per-distance performance models and the Figure 10
   search);
2. pick VM types from the provider menu that cover the configuration's
   cores and memory, keeping each VM's core-to-memory ratio at least the
   configuration's;
3. choose the least expensive feasible (distance, VM type) combination,
   using spot instances for finite-duration caches;
4. stand up a cache server on every allocated VM and wire reclamation
   notices back to the owning client.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.cluster.allocator import AllocationError, Vm, VmAllocator
from repro.cluster.vmtypes import AZURE_MENU, VmType
from repro.core.config import RdmaConfig, Slo
from repro.core.modeling import (
    OfflineModeler,
    PerfModel,
    make_analytic_measurer,
)
from repro.core.search import SloSearcher
from repro.core.server import CacheServer
from repro.core.space import ConfigSpace
from repro.hardware.profiles import TestbedProfile
from repro.net.fabric import Fabric, Placement
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry

__all__ = ["CacheAllocation", "CacheManager", "SloUnsatisfiableError"]

#: Network distances a cache may be provisioned at, nearest first.
_DISTANCES = (1, 3, 5)

#: Memory overhead per VM for the cache server agent and rings, GB.
_SERVER_OVERHEAD_GB = 0.5


class SloUnsatisfiableError(AllocationError):
    """No configuration/VM combination can satisfy the request (§3.2:
    "the *Allocate* request fails.  The request has no effect")."""


@dataclass
class CacheAllocation:
    """Everything a client gets back from a successful *Allocate*."""

    allocation_id: int
    config: RdmaConfig
    switch_hops: int
    vms: List[Vm]
    servers: List[CacheServer]
    #: Physical regions each server should provide, by endpoint name.
    regions_per_server: Dict[str, int]
    region_bytes: int
    hourly_cost: float
    spot: bool

    @property
    def total_regions(self) -> int:
        return sum(self.regions_per_server.values())


class CacheManager:
    """The global cache manager of one cluster deployment."""

    def __init__(self, env: Environment, profile: TestbedProfile,
                 fabric: Fabric, allocator: VmAllocator,
                 rngs: RngRegistry, menu: List[VmType] = AZURE_MENU,
                 model_noise: float = 0.0,
                 provisioning_delay_s: float = 0.0):
        self.env = env
        self.profile = profile
        self.fabric = fabric
        self.allocator = allocator
        self.rngs = rngs
        self.menu = list(menu)
        self.model_noise = model_noise
        #: Time to stand a replacement VM up (§6.2: "The migration period
        #: depends in part on the time to provision a new VM").  Zero
        #: models the pre-provisioned-VM strategy the paper suggests;
        #: tens of seconds models on-demand provisioning.
        self.provisioning_delay_s = provisioning_delay_s
        #: (record_size, switch_hops) -> PerfModel, built lazily.
        self._models: Dict[tuple[int, int], PerfModel] = {}
        self.allocations: Dict[int, CacheAllocation] = {}
        # Per-manager, not module-global: allocation ids name RNG streams
        # (cache-path-<id>), so they must restart with each run for
        # same-seed runs to be bit-identical (repro.faults contract).
        self._allocation_ids = itertools.count(1)
        #: allocation_id -> callback(vm, deadline) for reclaim notices.
        self._reclaim_handlers: Dict[int, Callable] = {}

    # ------------------------------------------------------------------
    # Performance models
    # ------------------------------------------------------------------

    def model_for(self, record_size: int, switch_hops: int) -> PerfModel:
        """The per-distance performance model (§5.2), built on demand."""
        key = (record_size, switch_hops)
        if key not in self._models:
            space = ConfigSpace(
                max_client_threads=self.profile.modeling_cores,
                record_size=record_size,
                max_queue_depth=self.profile.nic.max_queue_depth)
            measurer = make_analytic_measurer(
                self.profile, record_size=record_size,
                switch_hops=switch_hops, noise=self.model_noise)
            model, _stats = OfflineModeler(
                space, measurer, switch_hops=switch_hops).build()
            self._models[key] = model
        return self._models[key]

    def find_configuration(self, slo: Slo, switch_hops: int,
                           max_server_threads: Optional[int] = None
                           ) -> Optional[RdmaConfig]:
        """Search the (possibly server-thread-capped) space for ``slo``.

        ``max_server_threads=0`` restricts to one-sided configurations:
        all a core-less harvest VM can serve.
        """
        model = self.model_for(slo.record_size, switch_hops)
        space = model.space
        if max_server_threads is not None:
            space = replace(space, max_server_threads=max_server_threads)
        searcher = SloSearcher(space=space, predictor=model.predict,
                               plane_source=model)
        return searcher.search(slo)

    # ------------------------------------------------------------------
    # Allocate / Reallocate / Deallocate
    # ------------------------------------------------------------------

    def _vm_plan(self, config: RdmaConfig, amount_bytes: int,
                 region_bytes: int,
                 spot: bool) -> Optional[tuple[VmType, int, float]]:
        """Cheapest (vm type, count, hourly cost) covering the request.

        Every VM must keep a core-to-memory ratio at least the
        configuration's, "to satisfy the SLO" (§6.1).
        """
        n_regions = max(1, math.ceil(amount_bytes / region_bytes))
        cores_needed = config.server_threads

        best: Optional[tuple[VmType, int, float]] = None
        for vm_type in self.menu:
            usable_gb = vm_type.memory_gb - _SERVER_OVERHEAD_GB
            if usable_gb <= 0 or vm_type.cores < 1:
                continue
            regions_per_vm = int(usable_gb * (1 << 30) // region_bytes)
            if regions_per_vm < 1:
                continue
            # Enough VMs to hold the regions AND to supply the
            # configuration's server threads -- each VM's share of both
            # must fit its shape, the per-VM core-to-memory condition of
            # §6.1 expressed as a count.
            count = max(math.ceil(n_regions / regions_per_vm),
                        math.ceil(cores_needed / vm_type.cores))
            cost = count * vm_type.price(spot)
            if best is None or cost < best[2]:
                best = (vm_type, count, cost)
        return best

    def allocate(self, amount_bytes: int, slo: Slo,
                 duration_s: float = math.inf, *,
                 client_placement: Placement = Placement(),
                 region_bytes: int = 1 << 30,
                 exclude_servers: Optional[frozenset] = None,
                 harvest: bool = False) -> CacheAllocation:
        """Process an *Allocate* request (§3.2).

        Finite durations opt into spot instances for their §6.1 cost
        savings; ``duration_s=inf`` buys full-price VMs.  ``harvest=True``
        carves the cache out of *stranded* memory instead -- essentially
        free (§8.3), always reclaimable, and accessible only one-sided
        (the SLO search is restricted to s=0 configurations).
        """
        if harvest:
            return self._allocate_harvest(
                amount_bytes, slo, client_placement=client_placement,
                region_bytes=region_bytes, exclude_servers=exclude_servers)
        spot = math.isfinite(duration_s)
        plans: list[tuple[float, int, RdmaConfig, VmType, int]] = []
        for hops in _DISTANCES:
            config = self.find_configuration(slo, hops)
            if config is None:
                continue
            plan = self._vm_plan(config, amount_bytes, region_bytes, spot)
            if plan is None:
                continue
            vm_type, count, cost = plan
            plans.append((cost, hops, config, vm_type, count))
        if not plans:
            raise SloUnsatisfiableError(
                f"no configuration satisfies {slo} at any distance")

        # Try plans cheapest-first; a nearer distance may have no
        # capacity left, in which case a farther one still can serve
        # (its SLO search already accounted for the extra hops).
        near = (client_placement.cluster, client_placement.rack)
        plans.sort(key=lambda plan: (plan[0], plan[1]))
        vms: List[Vm] = []
        placed = None
        for cost, hops, config, vm_type, count in plans:
            try:
                for _ in range(count):
                    vms.append(self.allocator.allocate(
                        vm_type, spot=spot, near=near, max_switch_hops=hops,
                        exclude_servers=exclude_servers))
                placed = (cost, hops, config, vm_type, count)
                break
            except AllocationError:
                for vm in vms:
                    self.allocator.release(vm)
                vms = []
        if placed is None:
            raise SloUnsatisfiableError(
                f"insufficient capacity for any feasible plan "
                f"({len(plans)} candidates)")
        cost, hops, config, vm_type, count = placed

        n_regions = max(1, math.ceil(amount_bytes / region_bytes))
        servers, regions_per_server = self._start_servers(
            vms, n_regions, region_bytes)

        allocation = CacheAllocation(
            allocation_id=next(self._allocation_ids),
            config=config, switch_hops=hops, vms=vms, servers=servers,
            regions_per_server=regions_per_server,
            region_bytes=region_bytes, hourly_cost=cost, spot=spot)
        self.allocations[allocation.allocation_id] = allocation
        self._wire_reclaim_notices(allocation)
        return allocation

    #: Largest harvest VM: §7.4's rule of thumb -- what a 30 s notice can
    #: migrate at ~1.09 s/GB.
    HARVEST_VM_MAX_GB = 27.0

    def _allocate_harvest(self, amount_bytes: int, slo: Slo, *,
                          client_placement: Placement,
                          region_bytes: int,
                          exclude_servers: Optional[frozenset]
                          ) -> CacheAllocation:
        """Provision a cache entirely from stranded memory."""
        near = (client_placement.cluster, client_placement.rack)
        n_regions = max(1, math.ceil(amount_bytes / region_bytes))
        regions_per_vm = max(1, int(
            (self.HARVEST_VM_MAX_GB - _SERVER_OVERHEAD_GB) * (1 << 30)
            // region_bytes))
        for hops in _DISTANCES:
            config = self.find_configuration(slo, hops,
                                             max_server_threads=0)
            if config is None:
                continue
            vms: List[Vm] = []
            try:
                remaining = n_regions
                while remaining > 0:
                    share = min(remaining, regions_per_vm)
                    memory_gb = (share * region_bytes / (1 << 30)
                                 + _SERVER_OVERHEAD_GB)
                    vms.append(self.allocator.allocate_harvest(
                        memory_gb, near=near, max_switch_hops=hops,
                        exclude_servers=exclude_servers))
                    remaining -= share
            except AllocationError:
                for vm in vms:
                    self.allocator.release(vm)
                continue
            servers, regions_per_server = self._start_servers(
                vms, n_regions, region_bytes)
            allocation = CacheAllocation(
                allocation_id=next(self._allocation_ids),
                config=config, switch_hops=hops, vms=vms, servers=servers,
                regions_per_server=regions_per_server,
                region_bytes=region_bytes,
                hourly_cost=sum(vm.hourly_cost() for vm in vms),
                spot=True)
            self.allocations[allocation.allocation_id] = allocation
            self._wire_reclaim_notices(allocation)
            return allocation
        raise SloUnsatisfiableError(
            f"no one-sided configuration + stranded capacity satisfies "
            f"{slo} at any distance")

    def _start_servers(self, vms: List[Vm], n_regions: int,
                       region_bytes: int
                       ) -> tuple[List[CacheServer], Dict[str, int]]:
        servers: List[CacheServer] = []
        regions_per_server: Dict[str, int] = {}
        remaining = n_regions
        for vm in vms:
            endpoint = self.fabric.add_endpoint(
                f"cache-vm-{vm.vm_id}",
                Placement(cluster=vm.server.cluster, rack=vm.server.rack))
            server = CacheServer(
                self.env, self.profile, endpoint,
                self.rngs.stream(f"cache-server-{vm.vm_id}"))
            servers.append(server)
            usable_gb = vm.vm_type.memory_gb - _SERVER_OVERHEAD_GB
            fit = max(1, int(usable_gb * (1 << 30) // region_bytes))
            share = min(remaining, fit)
            regions_per_server[endpoint.name] = share
            remaining -= share
        if remaining > 0:
            raise SloUnsatisfiableError(
                f"VM plan left {remaining} regions unplaced (bug in sizing)")
        return servers, regions_per_server

    def _wire_reclaim_notices(self, allocation: CacheAllocation) -> None:
        for vm, server in zip(allocation.vms, allocation.servers):
            vm.on_reclaim_notice.append(
                lambda notice, vm=vm, allocation=allocation:
                    self._on_reclaim(allocation, vm, notice))
            vm.on_terminated.append(
                lambda dead_vm, server=server: server.fail())

    def _on_reclaim(self, allocation: CacheAllocation, vm: Vm,
                    notice) -> None:
        handler = self._reclaim_handlers.get(allocation.allocation_id)
        if handler is not None:
            handler(vm, notice.deadline)

    def on_reclaim_notice(self, allocation: CacheAllocation,
                          handler: Callable) -> None:
        """Register the client's reclaim handler ("the cache manager ...
        alerts the Redy client, which must be able to cope", §3.2)."""
        self._reclaim_handlers[allocation.allocation_id] = handler

    def allocate_replacement(self, allocation: CacheAllocation,
                             n_regions: int,
                             exclude_vm: Optional[Vm] = None,
                             vm_type: Optional[VmType] = None
                             ) -> tuple[Vm, CacheServer]:
        """Provision one replacement VM for migrating ``n_regions``.

        ``vm_type`` overrides the allocation's current type (used by the
        cost optimizer to move onto a cheaper shape).
        """
        if vm_type is None:
            vm_type = allocation.vms[0].vm_type
        exclude_server = exclude_vm.server if exclude_vm is not None else None
        exclude = (frozenset({exclude_server.server_id})
                   if exclude_server is not None else None)
        if vm_type.cores == 0:
            # Harvest caches migrate onto other stranded servers.
            vm = self.allocator.allocate_harvest(
                vm_type.memory_gb, exclude_servers=exclude)
        else:
            vm = self.allocator.allocate(vm_type, spot=allocation.spot,
                                         exclude_servers=exclude)
        endpoint = self.fabric.add_endpoint(
            f"cache-vm-{vm.vm_id}",
            Placement(cluster=vm.server.cluster, rack=vm.server.rack))
        server = CacheServer(self.env, self.profile, endpoint,
                             self.rngs.stream(f"cache-server-{vm.vm_id}"))
        allocation.vms.append(vm)
        allocation.servers.append(server)
        allocation.regions_per_server[endpoint.name] = n_regions
        vm.on_terminated.append(lambda dead, server=server: server.fail())
        # Replacements are as reclaimable as the VMs they replace: the
        # owning client must hear about their notices too.
        vm.on_reclaim_notice.append(
            lambda notice, vm=vm, allocation=allocation:
                self._on_reclaim(allocation, vm, notice))
        return vm, server

    def reallocate(self, allocation: CacheAllocation, *,
                   add_regions: int = 0,
                   drop_vm: Optional[Vm] = None,
                   vm_type: Optional[VmType] = None
                   ) -> Optional[tuple[Vm, CacheServer]]:
        """§3.2 *Reallocate*: revise an existing cache allocation.

        ``add_regions`` provisions a new VM (of ``vm_type``, defaulting
        to the allocation's current type) sized for that many regions and
        returns it; ``drop_vm`` releases a VM whose regions the client
        has already vacated.  Both may be combined (grow-then-shrink
        moves).
        """
        grown = None
        if add_regions > 0:
            grown = self.allocate_replacement(allocation, add_regions,
                                              vm_type=vm_type)
        if drop_vm is not None:
            self.release_vm(allocation, drop_vm)
        return grown

    def release_vm(self, allocation: CacheAllocation, vm: Vm) -> None:
        """Drop one VM from an allocation (post-migration cleanup)."""
        index = allocation.vms.index(vm)
        server = allocation.servers[index]
        server.shutdown()
        allocation.vms.pop(index)
        allocation.servers.pop(index)
        allocation.regions_per_server.pop(server.endpoint.name, None)
        self.allocator.release(vm)

    def deallocate(self, allocation: CacheAllocation) -> None:
        """Release every VM of a cache (*Deallocate*, §3.2)."""
        for vm, server in zip(allocation.vms, allocation.servers):
            server.shutdown()
            self.allocator.release(vm)
        self.allocations.pop(allocation.allocation_id, None)
        self._reclaim_handlers.pop(allocation.allocation_id, None)
