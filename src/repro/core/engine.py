"""Client-side data path: the executable version of Figure 6.

:class:`CacheDataPath` owns the client threads of one Redy cache.  Each
client thread runs one RDMA connection per attached cache server, with:

* a *batch ring* buffering application requests (backpressure included),
* an issuer loop that gathers up to ``b`` requests, takes a queue-depth
  credit, and either posts a one-sided verb (single-op batches on the
  fast path, §4.3) or writes a request batch into the server's message
  ring, and
* a completion loop that reaps response batches from the client's
  response ring, runs callbacks, and returns credits.

All CPU charges go through one per-thread ``Resource`` so that the
issuer and completion sides cannot overlap in time -- they are the same
hardware thread.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import RdmaConfig
from repro.core.protocol import (
    ConnectRequest,
    EngineOp,
    OpResult,
    RequestBatch,
)
from repro.core.server import CacheServer, RING_SLOT_BYTES
from repro.hardware.profiles import TestbedProfile
from repro.net.fabric import Endpoint
from repro.net.memory import MemoryRegion
from repro.net.programs import VerbProgram
from repro.net.qp import QueuePair
from repro.net.verbs import Completion, RdmaOp, WorkRequest
from repro.obs.metrics import registry_of
from repro.sim.kernel import Environment, Event
from repro.sim.resources import Resource, Store

#: Batch-weight histogram buckets: powers of two up to the largest batch
#: size the config space explores.
_BATCH_WEIGHT_BUCKETS = tuple(float(1 << i) for i in range(11))

__all__ = ["CacheDataPath", "EngineError"]


class EngineError(Exception):
    """Data-path misuse (no route for an op, engine not attached, ...)."""


def _lognormal_sigma(median: float, p99: float) -> float:
    if p99 <= median or median <= 0:
        return 0.0
    return math.log(p99 / median) / 2.326


class _Connection:
    """One client thread's connection to one cache server."""

    def __init__(self, env: Environment, connection_id: int,
                 server: CacheServer, qp: QueuePair,
                 request_ring_token, response_ring: MemoryRegion,
                 queue_depth: int):
        self.connection_id = connection_id
        self.server = server
        self.qp = qp
        self.request_ring_token = request_ring_token
        self.response_ring = response_ring
        #: Queue-depth credits: one per allowed in-flight operation.
        self.credits = Store(env, capacity=queue_depth)
        for _ in range(queue_depth):
            self.credits.try_put(object())
        #: The batch ring feeding this connection.
        self.batch_ring: Store = Store(env)
        #: In-flight request batches awaiting a response, by batch id.
        self.outstanding: Dict[int, RequestBatch] = {}
        self.closed = False


class _ClientThread:
    """One client thread: CPU resource + its connections."""

    def __init__(self, env: Environment, index: int):
        self.index = index
        self.cpu = Resource(env, slots=1)
        self.connections: Dict[str, _Connection] = {}
        self.response_store: Store = Store(env)
        #: region_id -> connection, for routing functional ops.
        self.routes: Dict[int, _Connection] = {}


class CacheDataPath:
    """The client half of one Redy cache's data path."""

    def __init__(self, env: Environment, profile: TestbedProfile,
                 config: RdmaConfig, client_endpoint: Endpoint,
                 rng: np.random.Generator, op_timeout: float = 0.05):
        self.env = env
        self.profile = profile
        self.config = config
        self.endpoint = client_endpoint
        self.rng = rng
        #: Response deadline for two-sided batches.  A server that dies
        #: after acknowledging a request never responds; the client
        #: fails those ops instead of hanging (real RDMA surfaces this
        #: as a QP timeout).
        self.op_timeout = op_timeout
        self.threads = [
            _ClientThread(env, i) for i in range(config.client_threads)]
        self._round_robin = 0
        self._connection_counter = 0
        #: Lifetime statistics.
        self.ops_completed = 0
        self.ops_failed = 0
        self._completed_weight = 0
        self._jitter_sigma = _lognormal_sigma(
            profile.cpu.numa_penalty_mean, profile.cpu.numa_penalty_p99)
        self._lock_sigma = _lognormal_sigma(
            profile.cpu.lock_contention_mean, profile.cpu.lock_contention_p99)
        metrics = registry_of(env)
        if metrics is not None:
            self._op_latency = metrics.histogram("engine.op_latency")
            self._credit_wait = metrics.histogram("engine.credit_wait")
            self._batch_weight = metrics.histogram(
                "engine.batch_weight", bounds=_BATCH_WEIGHT_BUCKETS)
            self._completed_counter = metrics.counter("engine.ops_completed")
            self._failed_counter = metrics.counter("engine.ops_failed")
            self._timeout_counter = metrics.counter("engine.timeouts")
            self._programs_counter = metrics.counter("engine.programs")
            self._two_hop_counter = metrics.counter("engine.two_hop_reads")
            self._fallback_counter = metrics.counter(
                "engine.program_fallbacks")
            self._cas_abort_counter = metrics.counter(
                "engine.program_cas_aborts")
            self._cas_ops_counter = metrics.counter("engine.cas_ops")
            self._cas_mismatch_counter = metrics.counter(
                "engine.cas_mismatches")
            self._tenant_ops_family = metrics.counter("engine.tenant_ops")
        else:
            self._op_latency = None
            self._credit_wait = None
            self._batch_weight = None
            self._completed_counter = None
            self._failed_counter = None
            self._timeout_counter = None
            self._programs_counter = None
            self._two_hop_counter = None
            self._fallback_counter = None
            self._cas_abort_counter = None
            self._cas_ops_counter = None
            self._cas_mismatch_counter = None
            self._tenant_ops_family = None
        for thread in self.threads:
            env.process(self._completion_loop(thread),
                        name=f"redy-client:{client_endpoint.name}:"
                             f"t{thread.index}:completions")

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def attach_server(self, server: CacheServer, n_regions: int,
                      region_size: int, backed: bool = True) -> List:
        """Run the *Connect* handshake against ``server``.

        Builds one connection per client thread, registers response rings,
        and returns the data-region tokens the server allocated.
        """
        config = self.config
        response_rings = []
        for _ in self.threads:
            ring = self.endpoint.register(MemoryRegion(
                max(1, config.queue_depth) * RING_SLOT_BYTES, backing=False))
            response_rings.append(ring)
        request = ConnectRequest(
            client_name=self.endpoint.name,
            n_regions=n_regions,
            region_size=region_size,
            server_threads=config.server_threads,
            queue_depth=config.queue_depth,
            connections=len(self.threads),
            response_ring_tokens=[ring.token for ring in response_rings],
            backed=backed,
        )
        reply = server.connect(request, self.endpoint)

        # With control-plane modeling on, per-thread QPs are created
        # deferred: the connect handshake is charged lazily on first
        # use instead of being free (see repro.cplane).
        deferred = (config.model_control_plane
                    or self.endpoint.fabric.model_control_plane)
        for thread, ring, ring_token in zip(
                self.threads, response_rings, reply.request_ring_tokens):
            qp = QueuePair(self.env, self.endpoint, server.endpoint,
                           max_depth=config.queue_depth, deferred=deferred)
            connection = _Connection(
                self.env, self._connection_counter, server, qp,
                ring_token, ring, config.queue_depth)
            self._connection_counter += 1
            ring.attach_mailbox(
                lambda response, store=thread.response_store:
                    store.try_put(response))
            thread.connections[server.endpoint.name] = connection
            for token in reply.region_tokens:
                thread.routes[token.region_id] = connection
            self.env.process(
                self._issuer_loop(thread, connection),
                name=f"redy-client:{self.endpoint.name}:t{thread.index}:"
                     f"issue->{server.endpoint.name}")
        return reply.region_tokens

    def detach_server(self, server_name: str) -> None:
        """Drop all connections to one server (it failed or was reclaimed).

        Releases the client-side control-plane state too -- response
        rings are deregistered and the per-thread QPs reclaimed -- and
        tells a still-alive server to drop its half (request rings,
        response QPs).  Before this fix, every attach/detach cycle
        leaked one region and two QP registrations per client thread
        on each side.
        """
        server: Optional[CacheServer] = None
        for thread in self.threads:
            connection = thread.connections.pop(server_name, None)
            if connection is not None:
                connection.closed = True
                server = connection.server
                stale = [rid for rid, conn in thread.routes.items()
                         if conn is connection]
                for rid in stale:
                    del thread.routes[rid]
                self.endpoint.deregister(connection.response_ring.region_id)
                connection.qp.reclaim()
        if server is not None and server.alive:
            server.disconnect_client(self.endpoint)

    def add_route(self, region_id: int, server_name: str) -> None:
        """Point a region at an (already attached) server on every thread."""
        for thread in self.threads:
            if server_name not in thread.connections:
                raise EngineError(f"no connection to {server_name}")
            thread.routes[region_id] = thread.connections[server_name]

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def submission_overhead(self) -> float:
        """Sampled app-thread cost to hand one op to a client thread.

        Lock-free ring handoff by default; the ablation baseline pays the
        mutex cost plus a fat contention tail.  Non-affinitized threads
        add cross-NUMA jitter.
        """
        cpu = self.profile.cpu
        if self.config.lock_free:
            cost = cpu.handoff_lockfree
        else:
            cost = cpu.handoff_locked + cpu.lock_contention_mean * math.exp(
                self.rng.normal(0.0, self._lock_sigma)
                - self._lock_sigma**2 / 2)
        if not self.config.numa_affinity:
            cost += cpu.numa_penalty_mean * math.exp(
                self.rng.normal(0.0, self._jitter_sigma)
                - self._jitter_sigma**2 / 2)
        return cost

    def submit(self, op: EngineOp, thread_index: Optional[int] = None) -> Event:
        """Queue one op; returns an event that fires when the op is in the
        batch ring (backpressure point).  The op's own ``completion``
        event fires with its :class:`OpResult` when the I/O finishes.
        """
        if op.completion is None:
            op.completion = self.env.event()
        op.enqueued_at = self.env.now
        if thread_index is None:
            thread_index = self._round_robin % len(self.threads)
            self._round_robin += 1
        thread = self.threads[thread_index % len(self.threads)]
        connection = self._route(thread, op)
        if op.is_dependent:
            # Dependent GETs never enter the message-ring batching
            # protocol: they are posted on their own doorbell (as a verb
            # program, or as the classic two-hop READ sequence), so they
            # cannot be folded into a two-sided batch that would lose
            # the pointer-chase semantics.
            if op.token is None:
                raise EngineError("dependent reads need a region token")
            if op.weight != 1:
                raise EngineError("dependent reads are weight-1 ops")
            self.env.process(
                self._dependent_read(thread, connection, op),
                name=f"redy-client:{self.endpoint.name}:"
                     f"t{thread.index}:dependent-read")
            return self.env.timeout(0)
        if op.cas:
            # Standalone CAS: like dependent reads, atomics never enter
            # the message-ring batching protocol -- the NIC executes the
            # compare-and-swap as a single verb on its own doorbell.
            if op.token is None:
                raise EngineError("CAS ops need a region token")
            self.env.process(
                self._cas_op(thread, connection, op),
                name=f"redy-client:{self.endpoint.name}:"
                     f"t{thread.index}:cas")
            return self.env.timeout(0)
        return connection.batch_ring.put(op)

    def _route(self, thread: _ClientThread, op: EngineOp) -> _Connection:
        if op.token is not None:
            connection = thread.routes.get(op.token.region_id)
            if connection is None:
                raise EngineError(
                    f"no route for region {op.token.region_id}")
            return connection
        if not thread.connections:
            raise EngineError("no attached cache server")
        return next(iter(thread.connections.values()))

    def _noise(self) -> float:
        sigma = self.profile.measurement_noise
        return math.exp(self.rng.normal(0.0, sigma)) if sigma else 1.0

    def _issuer_loop(self, thread: _ClientThread, connection: _Connection):
        # Hot loop (once per batch): the profile and config are frozen
        # for the engine's lifetime, so every per-iteration cost below
        # is hoisted.  `base_work + weight * per_op` preserves the exact
        # float association of the original expression.
        cpu, nic = self.profile.cpu, self.profile.nic
        config = self.config
        env = self.env
        ring_get = connection.batch_ring.get
        ring_try_get = connection.batch_ring.try_get
        credits_get = connection.credits.get
        cpu_acquire = thread.cpu.acquire
        cpu_release = thread.cpu.release
        batch_size = config.batch_size
        base_work = cpu.batch_prepare + nic.doorbell
        per_op = cpu.client_per_op
        numa_affinity = config.numa_affinity
        lock_free = config.lock_free
        uses_one_sided = config.uses_one_sided
        batch_weight = self._batch_weight
        credit_wait = self._credit_wait
        sigma = self.profile.measurement_noise
        while not connection.closed:
            first = yield ring_get()
            batch_ops = [first]
            weight = first.weight
            while weight < batch_size:
                ok, op = ring_try_get()
                if not ok:
                    break
                batch_ops.append(op)
                weight += op.weight
            if batch_weight is not None:
                batch_weight.observe(weight)
            credit_wait_started = env.now
            yield credits_get()
            if credit_wait is not None:
                credit_wait.observe(env.now - credit_wait_started)

            yield cpu_acquire()
            work = base_work + weight * per_op
            if not numa_affinity:
                work += weight * cpu.numa_cpu_per_op
            if not lock_free:
                # The consumer side of the mutex-protected queue pays the
                # same lock acquisition + contention as the producer.
                work += weight * (cpu.handoff_locked
                                  + cpu.lock_contention_mean * math.exp(
                                      self.rng.normal(0.0, self._lock_sigma)
                                      - self._lock_sigma**2 / 2))
            # Inlined self._noise(): same single RNG draw.
            noise = math.exp(self.rng.normal(0.0, sigma)) if sigma else 1.0
            yield env.timeout(work * noise)
            cpu_release()

            one_sided = (len(batch_ops) == 1 and first.weight == 1
                         and uses_one_sided and first.token is not None)
            if one_sided:
                self._post_one_sided(thread, connection, first)
            else:
                batch = RequestBatch(ops=batch_ops,
                                     connection_id=connection.connection_id,
                                     created_at=env.now)
                connection.outstanding[batch.batch_id] = batch
                wr = WorkRequest(
                    RdmaOp.WRITE, connection.request_ring_token, 0,
                    batch.wire_bytes, payload_object=batch)
                ack = connection.qp.post(wr)
                # Both watchers are deliberately detached: they exist to
                # observe the batch (ack bookkeeping, response timeout)
                # and settle its per-op events themselves.
                env.process(  # repro-lint: disable=L006 -- detached watchdog; settles batch op events itself
                    self._watch_request_ack(connection, batch, ack),
                    name="redy-client:request-ack")
                env.process(  # repro-lint: disable=L006 -- detached watchdog; settles batch op events itself
                    self._watch_response_timeout(connection, batch),
                    name="redy-client:response-timeout")

    def _post_one_sided(self, thread: _ClientThread, connection: _Connection,
                        op: EngineOp) -> None:
        verb = RdmaOp.READ if op.is_read else RdmaOp.WRITE
        wr = WorkRequest(verb, op.token, op.offset, op.size, data=op.data)
        completion_event = connection.qp.post(wr)
        self.env.process(
            self._one_sided_completion(thread, connection, op,
                                       completion_event),
            name="redy-client:one-sided-completion")

    def _one_sided_completion(self, thread: _ClientThread,
                              connection: _Connection, op: EngineOp,
                              completion_event: Event):
        completion = yield completion_event
        yield thread.cpu.acquire()
        try:
            cpu = self.profile.cpu
            work = self.profile.nic.completion_poll + cpu.callback
            yield self.env.timeout(work * self._noise())
        finally:
            thread.cpu.release()
        if not self.config.numa_affinity:
            yield self.env.timeout(cpu.numa_penalty_mean * math.exp(
                self.rng.normal(0.0, self._jitter_sigma)
                - self._jitter_sigma**2 / 2))
        connection.credits.try_put(object())
        self._finish(op, OpResult(
            ok=completion.ok, data=completion.data, error=completion.error,
            latency=self.env.now - op.enqueued_at))

    def _dependent_read(self, thread: _ClientThread, connection: _Connection,
                        op: EngineOp):
        """One pointer-chasing GET: index word first, then the record.

        With ``use_verb_programs`` on (and a supporting remote NIC) the
        whole chain is one posted program -- one round trip.  Otherwise,
        or when a program completes in error (CAS guard abort, region
        revoked mid-chain, downlevel endpoint), the classic two-hop READ
        sequence runs as the fallback; an op only fails if the fallback
        fails too, so no acked read is lost to the optimization.
        """
        env = self.env
        cpu, nic = self.profile.cpu, self.profile.nic
        credit_wait_started = env.now
        yield connection.credits.get()
        if self._credit_wait is not None:
            self._credit_wait.observe(env.now - credit_wait_started)

        yield thread.cpu.acquire()
        try:
            work = cpu.batch_prepare + nic.doorbell + cpu.client_per_op
            yield env.timeout(work * self._noise())
        finally:
            thread.cpu.release()

        supports = connection.server.endpoint.supports_programs
        use_programs = self.config.use_verb_programs and supports
        completion: Optional[Completion] = None
        if self.config.use_verb_programs and not supports:
            # Graceful degradation: remote NIC cannot run chains.
            if self._fallback_counter is not None:
                self._fallback_counter.inc()
        if use_programs:
            program = VerbProgram.dependent_read(
                pointer_offset=op.lookup_offset,
                pointer_bytes=op.lookup_size,
                fallback_offset=op.offset,
                read_bytes=op.size,
                verify=op.verify,
                label="get:bucket->record")
            if self._programs_counter is not None:
                self._programs_counter.inc()
            completion = yield connection.qp.post_program(program, op.token)
            if completion.cas_aborted and self._cas_abort_counter is not None:
                self._cas_abort_counter.inc()
            if not completion.ok:
                # Abort fallback: re-run the access as the classic
                # two-hop sequence (it re-samples the pointer, so a
                # guard abort resolves to the post-move location).
                if self._fallback_counter is not None:
                    self._fallback_counter.inc()
                completion = None
        if completion is None:
            if self._two_hop_counter is not None:
                self._two_hop_counter.inc()
            completion = yield from self._two_hop_read(thread, connection, op)

        yield thread.cpu.acquire()
        try:
            work = nic.completion_poll + cpu.callback
            yield env.timeout(work * self._noise())
        finally:
            thread.cpu.release()
        if not self.config.numa_affinity:
            yield env.timeout(cpu.numa_penalty_mean * math.exp(
                self.rng.normal(0.0, self._jitter_sigma)
                - self._jitter_sigma**2 / 2))
        connection.credits.try_put(object())
        self._finish(op, OpResult(
            ok=completion.ok, data=completion.data, error=completion.error,
            latency=env.now - op.enqueued_at))

    def _cas_op(self, thread: _ClientThread, connection: _Connection,
                op: EngineOp):
        """One standalone compare-and-swap (server-side eviction marking).

        The QP executes the verb remotely and atomically; a mismatch is
        not a transport failure -- it completes with ``ok=False``,
        ``error="cas mismatch"`` and the observed original word in
        ``data``, which is exactly what optimistic callers need to
        re-read and retry.
        """
        env = self.env
        cpu, nic = self.profile.cpu, self.profile.nic
        credit_wait_started = env.now
        yield connection.credits.get()
        if self._credit_wait is not None:
            self._credit_wait.observe(env.now - credit_wait_started)

        yield thread.cpu.acquire()
        try:
            work = cpu.batch_prepare + nic.doorbell + cpu.client_per_op
            yield env.timeout(work * self._noise())
        finally:
            thread.cpu.release()

        if self._cas_ops_counter is not None:
            self._cas_ops_counter.inc()
        completion = yield connection.qp.post(WorkRequest(
            RdmaOp.CAS, op.token, op.offset, op.size, data=op.data,
            compare=op.compare))
        if completion.cas_aborted and self._cas_mismatch_counter is not None:
            self._cas_mismatch_counter.inc()

        yield thread.cpu.acquire()
        try:
            work = nic.completion_poll + cpu.callback
            yield env.timeout(work * self._noise())
        finally:
            thread.cpu.release()
        connection.credits.try_put(object())
        self._finish(op, OpResult(
            ok=completion.ok, data=completion.data, error=completion.error,
            latency=env.now - op.enqueued_at))

    def _two_hop_read(self, thread: _ClientThread, connection: _Connection,
                      op: EngineOp):
        """The classic dependent GET: READ the pointer word, reap it,
        parse, then READ the record -- two full round trips plus a
        client-CPU turnaround between them."""
        cpu, nic = self.profile.cpu, self.profile.nic
        first = yield connection.qp.post(WorkRequest(
            RdmaOp.READ, op.token, op.lookup_offset, op.lookup_size))
        if not first.ok:
            return first
        # Turnaround: poll the completion, parse the pointer, build and
        # ring the doorbell for the second READ.
        yield thread.cpu.acquire()
        try:
            work = nic.completion_poll + cpu.callback + nic.doorbell
            yield self.env.timeout(work * self._noise())
        finally:
            thread.cpu.release()
        if first.data is not None and len(first.data) >= 1:
            target = int.from_bytes(first.data[:8], "little")
        else:
            # Size-only region: no bytes came back; chase the static
            # fallback offset (same wire timing either way).
            target = op.offset
        second = yield connection.qp.post(WorkRequest(
            RdmaOp.READ, op.token, target, op.size))
        return second

    def _watch_request_ack(self, connection: _Connection, batch: RequestBatch,
                           ack_event: Event):
        """Surface transport errors on the request write (server died)."""
        completion = yield ack_event
        if not completion.ok:
            self._abort_batch(connection, batch, completion.error)

    def _watch_response_timeout(self, connection: _Connection,
                                batch: RequestBatch):
        """Fail a batch whose response never arrives (§6.2 failures)."""
        yield self.env.timeout(self.op_timeout)
        timed_out = self._abort_batch(
            connection, batch,
            f"no response from {connection.server.endpoint.name} within "
            f"{self.op_timeout}s")
        if timed_out and self._timeout_counter is not None:
            self._timeout_counter.inc()

    def _abort_batch(self, connection: _Connection, batch: RequestBatch,
                     error: str) -> bool:
        """Fail every op of an in-flight batch exactly once."""
        if connection.outstanding.pop(batch.batch_id, None) is None:
            return False  # already answered or already aborted
        connection.credits.try_put(object())
        for op in batch.ops:
            self._finish(op, OpResult(
                ok=False, error=error,
                latency=self.env.now - op.enqueued_at))
        return True

    def _completion_loop(self, thread: _ClientThread):
        # Hot loop (once per response batch); hoisted like _issuer_loop.
        cpu, nic = self.profile.cpu, self.profile.nic
        env = self.env
        store_get = thread.response_store.get
        cpu_acquire = thread.cpu.acquire
        cpu_release = thread.cpu.release
        poll = nic.completion_poll
        per_op = cpu.client_per_op + cpu.callback
        numa_affinity = self.config.numa_affinity
        sigma = self.profile.measurement_noise
        finish = self._finish
        while True:
            response = yield store_get()
            yield cpu_acquire()
            weight = sum(op.weight for op in response.ops)
            work = poll + weight * per_op
            # Inlined self._noise(): same single RNG draw.
            noise = math.exp(self.rng.normal(0.0, sigma)) if sigma else 1.0
            yield env.timeout(work * noise)
            cpu_release()
            if not numa_affinity:
                yield env.timeout(cpu.numa_penalty_mean * math.exp(
                    self.rng.normal(0.0, self._jitter_sigma)
                    - self._jitter_sigma**2 / 2))
            connection = self._connection_by_id(thread,
                                                response.connection_id)
            if connection is not None:
                if connection.outstanding.pop(response.batch_id,
                                              None) is None:
                    continue  # batch already timed out and was failed
                connection.credits.try_put(object())
            now = env.now
            for op, result in zip(response.ops, response.results):
                result.latency = now - op.enqueued_at
                finish(op, result)

    def _connection_by_id(self, thread: _ClientThread,
                          connection_id: int) -> Optional[_Connection]:
        for connection in thread.connections.values():
            if connection.connection_id == connection_id:
                return connection
        return None

    def _finish(self, op: EngineOp, result: OpResult) -> None:
        if result.ok:
            self.ops_completed += 1
            self._completed_weight += op.weight
            if self._completed_counter is not None:
                self._completed_counter.inc(op.weight)
        else:
            self.ops_failed += 1
            if self._failed_counter is not None:
                self._failed_counter.inc(op.weight)
        if self._op_latency is not None:
            self._op_latency.observe(result.latency)
        if op.tenant is not None and self._tenant_ops_family is not None:
            # The family caches its children, so steady-state accounting
            # is one dict hit plus an attribute add per op.
            self._tenant_ops_family.labels(tenant=op.tenant).inc(op.weight)
        if op.completion is not None and not op.completion.triggered:
            op.completion.succeed(result)

    @property
    def completed_weight(self) -> int:
        """Total logical requests completed (weights summed)."""
        return self._completed_weight
