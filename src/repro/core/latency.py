"""Analytic performance model of the Redy data path.

:class:`DataPathModel` maps an :class:`~repro.core.config.RdmaConfig` plus
a record size to ``(latency, throughput)`` -- the function *f* of §5.2.
It mirrors, component by component, the costs the simulated engine
charges (see :mod:`repro.core.engine`), which is why model predictions
and engine "measurements" agree to within measurement noise in the
Figure 13/14 experiments.

The model is a pipeline/queueing abstraction of Figure 6:

* a *round trip* ``T_rtt`` -- everything one request batch experiences
  end to end; and
* a *cycle* ``T_cycle`` -- the per-batch occupancy of the slowest pipeline
  stage (client CPU, app handoff, shared wire, server CPU, NIC message
  rate, or the pipelining bound ``T_rtt / q``).

With the queue pair kept fully loaded (q batches in flight), Little's law
gives per-connection throughput ``b / T_cycle`` and latency
``q * T_cycle`` (which degenerates to ``T_rtt`` when the connection is
propagation-bound), plus the time spent filling a batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PerfPoint, RdmaConfig
from repro.hardware.profiles import TestbedProfile

__all__ = ["DataPathModel", "LatencyBreakdown", "OP_HEADER_BYTES",
           "RESP_HEADER_BYTES"]

#: Per-request framing inside a request batch (opcode, address, length).
OP_HEADER_BYTES = 16

#: Per-request framing inside a response batch (status, length).
RESP_HEADER_BYTES = 8


@dataclass(frozen=True)
class LatencyBreakdown:
    """Latency decomposition for the Figure 7 bars."""

    #: Median time on the network (propagation + serialization), the
    #: light-blue bar.
    network: float
    #: Median end-to-end latency, the dark-blue bar.
    median: float
    #: 99th-percentile end-to-end latency, the whisker.
    p99: float


class DataPathModel:
    """Analytic model of one Redy cache's data path.

    One instance models one network distance (``switch_hops``), matching
    the paper's per-distance performance models (§5.2).
    """

    def __init__(self, profile: TestbedProfile, switch_hops: int = 1):
        if switch_hops < 0:
            raise ValueError(f"switch_hops must be >= 0, got {switch_hops}")
        self.profile = profile
        self.switch_hops = switch_hops

    # ------------------------------------------------------------------
    # Component helpers
    # ------------------------------------------------------------------

    def _handoff(self, config: RdmaConfig) -> float:
        cpu = self.profile.cpu
        if config.lock_free:
            return cpu.handoff_lockfree
        return cpu.handoff_locked + cpu.lock_contention_mean

    def _numa_latency(self, config: RdmaConfig) -> float:
        """Observed-latency penalty per direction without affinitization."""
        return 0.0 if config.numa_affinity else self.profile.cpu.numa_penalty_mean

    def _numa_cpu(self, config: RdmaConfig) -> float:
        """Client-thread per-op cost penalty without affinitization."""
        return 0.0 if config.numa_affinity else self.profile.cpu.numa_cpu_per_op

    def _batch_wire_bytes(self, config: RdmaConfig, record_size: int,
                          is_read: bool) -> tuple[int, int]:
        """(request, response) wire payload bytes for one batch."""
        b = config.batch_size
        if is_read:
            request = b * OP_HEADER_BYTES
            response = b * (RESP_HEADER_BYTES + record_size)
        else:
            request = b * (OP_HEADER_BYTES + record_size)
            response = b * RESP_HEADER_BYTES
        return request, response

    # ------------------------------------------------------------------
    # Round trip
    # ------------------------------------------------------------------

    def round_trip(self, config: RdmaConfig, record_size: int,
                   is_read: bool) -> float:
        """End-to-end time for one batch (one op on the one-sided path)."""
        if config.uses_one_sided:
            return self._one_sided_round_trip(config, record_size, is_read)
        return self._two_sided_round_trip(config, record_size, is_read)

    def network_round_trip(self, config: RdmaConfig, record_size: int,
                           is_read: bool) -> float:
        """The pure network component (Figure 7's light-blue bar)."""
        nic = self.profile.nic
        base = self.profile.fabric.round_trip_base(self.switch_hops)
        if config.uses_one_sided:
            return base + nic.wire_time(record_size)
        request, response = self._batch_wire_bytes(config, record_size, is_read)
        return base + nic.wire_time(request) + nic.wire_time(response)

    def _one_sided_round_trip(self, config: RdmaConfig, record_size: int,
                              is_read: bool) -> float:
        nic, cpu = self.profile.nic, self.profile.cpu
        numa = self._numa_latency(config)
        total = (self._handoff(config) + numa + cpu.batch_prepare
                 + nic.doorbell + nic.per_message_processing)
        if is_read:
            # Responder NIC fetches the payload; requester delivers it.
            total += nic.dma_fetch(record_size) + nic.rx_dma
        else:
            if not nic.can_inline(record_size):
                total += nic.dma_fetch(record_size)
            total += nic.rx_dma
        total += self.profile.fabric.round_trip_base(self.switch_hops)
        total += nic.wire_time(record_size)
        total += nic.completion_poll + cpu.callback + numa
        return total

    def _two_sided_round_trip(self, config: RdmaConfig, record_size: int,
                              is_read: bool) -> float:
        nic, cpu = self.profile.nic, self.profile.cpu
        b, s = config.batch_size, config.server_threads
        numa = self._numa_latency(config)
        request_bytes, response_bytes = self._batch_wire_bytes(
            config, record_size, is_read)

        client_out = (self._handoff(config) + numa + cpu.batch_prepare
                      + b * cpu.client_per_op + nic.doorbell
                      + nic.per_message_processing)
        if not nic.can_inline(request_bytes):
            client_out += nic.dma_fetch(request_bytes)

        wire_out = nic.wire_time(request_bytes)
        one_way = self.profile.fabric.one_way_base(self.switch_hops)

        server = (nic.rx_dma + cpu.server_poll_cycle / 2
                  + cpu.server_batch_overhead
                  + b * cpu.server_op_cost(record_size, s)
                  + nic.doorbell + nic.per_message_processing)
        if not nic.can_inline(response_bytes):
            server += nic.dma_fetch(response_bytes)

        wire_back = nic.wire_time(response_bytes)
        client_in = (nic.rx_dma + nic.completion_poll
                     + b * cpu.client_per_op + cpu.callback + numa)

        return (client_out + wire_out + one_way + server
                + wire_back + one_way + client_in)

    def dependent_read_round_trip(self, config: RdmaConfig,
                                  record_size: int, *,
                                  pointer_bytes: int = 8,
                                  verify: bool = False) -> float:
        """Latency of one pointer-chasing GET (index word -> record).

        Mirrors the engine's dependent-read path component by component:
        with ``config.use_verb_programs`` the chase runs as a remote-side
        verb program in one round trip (wire once, per-step NIC service);
        otherwise it is two sequential one-sided READs with the second
        issued straight out of the first's completion handler.
        """
        from repro.net.programs import VerbProgram

        nic, cpu = self.profile.nic, self.profile.cpu
        numa = self._numa_latency(config)
        base = self.profile.fabric.round_trip_base(self.switch_hops)
        issue = (cpu.batch_prepare + cpu.client_per_op + nic.doorbell
                 + nic.per_message_processing + numa)
        complete = nic.completion_poll + cpu.callback + numa

        if config.use_verb_programs:
            program = VerbProgram.dependent_read(
                pointer_offset=0, read_bytes=record_size,
                pointer_bytes=pointer_bytes, verify=verify)
            service = len(program) * nic.program_step_latency
            service += nic.dma_fetch(pointer_bytes)
            service += nic.dma_fetch(record_size)
            if verify:
                service += nic.dma_fetch(8)
            return (issue + base + nic.wire_time(program.request_wire_bytes)
                    + nic.wire_time(program.response_wire_bytes)
                    + service + nic.rx_dma + complete)

        def hop(size: int) -> float:
            return (nic.per_message_processing + base + nic.wire_time(size)
                    + nic.dma_fetch(size) + nic.rx_dma)

        # Client-side turnaround between the hops: reap the pointer
        # completion, run the callback, ring the second doorbell.
        turnaround = nic.completion_poll + cpu.callback + nic.doorbell
        return (issue + hop(pointer_bytes) + turnaround
                + hop(record_size) + complete)

    # ------------------------------------------------------------------
    # Steady state
    # ------------------------------------------------------------------

    def _stage_cycle(self, config: RdmaConfig, record_size: int,
                     is_read: bool) -> float:
        """Per-batch occupancy of the slowest pipeline stage.

        Excludes the pipelining bound ``T_rtt / q`` -- that is applied in
        :meth:`evaluate_op` -- so this quantity is monotone non-decreasing
        in every configuration parameter, the invariant the Figure 10
        search's pruning rule relies on.
        """
        nic, cpu = self.profile.nic, self.profile.cpu
        c, s, b = (config.client_threads, config.server_threads,
                   config.batch_size)
        request_bytes, response_bytes = self._batch_wire_bytes(
            config, record_size, is_read)

        # Client thread: build the batch, reap the response, run callbacks.
        per_op_cpu = 2 * cpu.client_per_op + cpu.callback + self._numa_cpu(config)
        if not config.lock_free:
            # Consumer side of the contended queue (see the engine's
            # issuer loop for the matching charge).
            per_op_cpu += cpu.handoff_locked + cpu.lock_contention_mean
        client = (cpu.batch_prepare + nic.doorbell + nic.completion_poll
                  + b * per_op_cpu)

        # Application thread feeding the batch ring (paired 1:1).
        app = b * self._handoff(config)

        stages = [client, app]

        # Wire serialization: each direction is a distinct link, shared by
        # all c connections of this cache.
        stages.append(c * nic.wire_time(request_bytes))
        stages.append(c * nic.wire_time(response_bytes))

        # NIC message rate: per-QP and aggregate (one message per batch
        # per direction; the aggregate NIC processes c connections).
        stages.append(1.0 / (nic.message_rate_mops_per_qp * 1e6))
        stages.append(c / (nic.message_rate_mops_total * 1e6))

        if not config.uses_one_sided and s > 0:
            # Each server thread multiplexes c/s connections.
            per_batch = (cpu.server_poll_cycle + cpu.server_batch_overhead
                         + b * cpu.server_op_cost(record_size, s))
            stages.append(per_batch * c / s)

        return max(stages)

    def evaluate_op(self, config: RdmaConfig, record_size: int,
                    is_read: bool) -> PerfPoint:
        """Latency/throughput for a pure-read or pure-write workload."""
        b, c, q = config.batch_size, config.client_threads, config.queue_depth
        rtt = self.round_trip(config, record_size, is_read)
        stage = self._stage_cycle(config, record_size, is_read)
        cycle = max(stage, rtt / q)
        throughput = c * b / cycle
        # An op waits ~half a batch-fill time before its batch departs.
        fill_wait = (b - 1) / (2.0 * b) * stage if b > 1 else 0.0
        latency = max(rtt, q * stage) + fill_wait
        return PerfPoint(latency=latency, throughput=throughput)

    def evaluate(self, config: RdmaConfig, record_size: int) -> PerfPoint:
        """Mixed-workload performance.

        As in the paper (§5.2), reads and writes share one model "by
        taking the lower-performance operation".
        """
        read = self.evaluate_op(config, record_size, is_read=True)
        write = self.evaluate_op(config, record_size, is_read=False)
        return PerfPoint(latency=max(read.latency, write.latency),
                         throughput=min(read.throughput, write.throughput))

    def breakdown(self, config: RdmaConfig, record_size: int,
                  is_read: bool) -> LatencyBreakdown:
        """Median/p99/network decomposition for the Figure 7 bars."""
        cpu = self.profile.cpu
        perf = self.evaluate_op(config, record_size, is_read)
        network = self.network_round_trip(config, record_size, is_read)
        # Tail: baseline jitter plus the fat contention/NUMA tails the
        # static optimizations remove.
        p99 = perf.latency * 1.3
        if not config.lock_free:
            p99 += cpu.lock_contention_p99
        if not config.numa_affinity:
            p99 += cpu.numa_penalty_p99
        return LatencyBreakdown(network=network, median=perf.latency, p99=p99)
