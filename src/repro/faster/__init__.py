"""A FASTER-style key-value store (the paper's §8 integration target).

FASTER [SIGMOD'18] is a hash-indexed key-value store over a *hybrid
log*: the log's tail lives in memory (with an in-place-updatable mutable
region), the rest spills to storage through an ``IDevice`` abstraction.
Tiered storage composes devices, each tier a replica of a suffix of the
log; reads are served by the lowest tier holding the address.

This package implements those data structures functionally -- reads
really traverse index -> log -> device and return the bytes that were
written -- with CPU/IO costs charged in simulated time so the Figure
18-20 experiments reproduce:

* :mod:`repro.faster.address` -- log addresses and segment math;
* :mod:`repro.faster.index` -- the hash index;
* :mod:`repro.faster.hlog` -- the hybrid log;
* :mod:`repro.faster.devices` -- IDevice + Local/SSD/SMB-Direct/Redy/
  Tiered devices;
* :mod:`repro.faster.store` -- the FasterKv facade;
* :mod:`repro.faster.remote` -- the remote-index variant: bucket table
  and log both in the cache, GETs chased in one round trip via verb
  programs.
"""

from repro.faster.address import NULL_ADDRESS, record_bytes
from repro.faster.devices import (
    DeviceReadResult,
    IDevice,
    LocalMemoryDevice,
    RedyDevice,
    SmbDirectDevice,
    SsdDevice,
    TieredDevice,
)
from repro.faster.hashtable import OpenAddressingIndex
from repro.faster.hlog import HybridLog
from repro.faster.index import HashIndex
from repro.faster.remote import RemoteFasterStore, RemoteReadOutcome
from repro.faster.store import FasterCosts, FasterKv

__all__ = [
    "DeviceReadResult",
    "FasterCosts",
    "FasterKv",
    "HashIndex",
    "HybridLog",
    "IDevice",
    "LocalMemoryDevice",
    "NULL_ADDRESS",
    "OpenAddressingIndex",
    "RedyDevice",
    "RemoteFasterStore",
    "RemoteReadOutcome",
    "SmbDirectDevice",
    "SsdDevice",
    "TieredDevice",
    "record_bytes",
]
