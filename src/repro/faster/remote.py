"""FASTER-over-Redy with a *remote* index: one-RTT dependent GETs.

The classic :class:`~repro.faster.devices.RedyDevice` integration keeps
the hash index in client memory and only spills log pages to the cache.
This module pushes the index itself into the cache -- the layout real
disaggregated deployments want once the working set outgrows the client
VM -- and makes the resulting pointer chase cheap again:

* the cache's address space starts with an open-addressed **bucket
  table** (16-byte slots: ``int64`` key, ``u64`` record address, with
  address 0 as the NULL sentinel -- no record ever lives at offset 0
  because the table itself does);
* the **hybrid-log records** follow, appended at a client-tracked tail.

A GET then needs the bucket's address word *and* the record it points
at: a dependent read.  With ``use_verb_programs`` enabled on the cache
this runs as one remote-side verb program (READ word, READ record, CAS
guard on the word) in a single round trip; otherwise it is the classic
two sequential READs.  Either way the client never materializes the
index: collisions are detected from the fetched record's embedded key
and resolved by a remote probe fallback.

Writes order record-before-slot-swing, so a concurrent dependent GET
observes either the old or the new version, never a torn one -- and the
program path's CAS guard additionally detects a slot that changed while
the chase was in flight.
"""

from __future__ import annotations

import struct

from repro.faster.address import record_bytes, unpack_record
from repro.faster.hashtable import _mix
from repro.obs.metrics import registry_of
from repro.sim.clock import US
from repro.sim.resources import Resource

__all__ = ["RemoteFasterStore", "RemoteReadOutcome", "SLOT_BYTES"]

#: Bucket-slot footprint: int64 key + u64 record address.
SLOT_BYTES = 16

#: NULL record address (the bucket table occupies offset 0).
_NULL = 0

_SLOT = struct.Struct("<qQ")
_WORD = struct.Struct("<Q")


class RemoteReadOutcome:
    """Result of one remote GET."""

    __slots__ = ("found", "value", "one_rtt", "probes", "error")

    def __init__(self, found: bool, value: bytes | None = None, *,
                 one_rtt: bool = False, probes: int = 0,
                 error: str | None = None):
        self.found = found
        self.value = value
        self.one_rtt = one_rtt
        self.probes = probes
        self.error = error


class RemoteFasterStore:
    """A FASTER read path whose index *and* log live in a Redy cache."""

    #: Client CPU to hash the key and build the chase descriptor.
    issue_cost = 0.15 * US
    #: Client CPU to unpack and validate the fetched record.
    completion_cost = 0.25 * US

    def __init__(self, cache, *, capacity_slots: int, value_bytes: int):
        if capacity_slots < 8 or capacity_slots & (capacity_slots - 1):
            raise ValueError("capacity_slots must be a power of two >= 8")
        self.env = cache.env
        self.cache = cache
        self.capacity_slots = capacity_slots
        self.value_bytes = value_bytes
        self.record_size = record_bytes(value_bytes)
        self.table_bytes = capacity_slots * SLOT_BYTES
        if cache.capacity <= self.table_bytes:
            raise ValueError(
                f"cache capacity {cache.capacity} cannot hold a "
                f"{self.table_bytes}-byte bucket table plus a log")
        if len(cache.table) != 1:
            # Dependent reads chase region-local offsets, so table and
            # log must share one region (= one cache region).
            raise ValueError("RemoteFasterStore needs a single-region cache")
        #: Next log append offset (client-owned, like FASTER's tail).
        self.tail = self.table_bytes
        #: Lifetime statistics.
        self.gets_one_rtt = 0
        self.gets_probed = 0
        self.gets_missing = 0
        self.evictions = 0
        self.evict_races = 0
        metrics = registry_of(self.env)
        if metrics is not None:
            self._one_rtt_counter = metrics.counter("faster.remote.one_rtt")
            self._probe_counter = metrics.counter(
                "faster.remote.probe_fallbacks")
            self._miss_counter = metrics.counter("faster.remote.misses")
            self._evict_counter = metrics.counter(
                "faster.remote.cas_evictions")
            self._evict_race_counter = metrics.counter(
                "faster.remote.evict_races")
        else:
            self._one_rtt_counter = None
            self._probe_counter = None
            self._miss_counter = None
            self._evict_counter = None
            self._evict_race_counter = None

    # ------------------------------------------------------------------

    def _slot_offset(self, slot: int) -> int:
        return slot * SLOT_BYTES

    def _start_slot(self, key: int) -> int:
        return _mix(key) & (self.capacity_slots - 1)

    # ------------------------------------------------------------------
    # Untimed bulk load (benchmark setup)
    # ------------------------------------------------------------------

    def load(self, n_records: int, value_of=None) -> None:
        """Insert keys ``0..n_records-1`` without charging simulated time.

        Occupancy is tracked in a throwaway local map purely to place
        slots quickly; it is discarded afterwards -- steady-state
        operation never consults client-side index state.
        """
        if value_of is None:
            def value_of(key: int) -> bytes:
                return key.to_bytes(8, "little") * (self.value_bytes // 8) \
                    + b"\x00" * (self.value_bytes % 8)
        from repro.faster.address import pack_record
        occupied: dict[int, int] = {}
        mask = self.capacity_slots - 1
        for key in range(n_records):
            value = value_of(key)
            if len(value) != self.value_bytes:
                raise ValueError(
                    f"value_of returned {len(value)} B, store expects "
                    f"{self.value_bytes} B")
            slot = self._start_slot(key)
            while slot in occupied and occupied[slot] != key:
                slot = (slot + 1) & mask
            occupied[slot] = key
            addr = self.tail
            self.tail += self.record_size
            if self.tail > self.cache.capacity:
                raise ValueError("cache too small for the requested load")
            self.cache.load(addr, pack_record(key, value))
            self.cache.load(self._slot_offset(slot), _SLOT.pack(key, addr))

    # ------------------------------------------------------------------
    # Timed operations (run inside simulation processes)
    # ------------------------------------------------------------------

    def get(self, key: int, cpu: Resource):
        """Process: read one key, optimistically in one round trip.

        The happy path issues a single dependent read against the key's
        home slot; the fetched record's embedded key validates the hit
        (an empty or colliding slot yields a mismatch).  The miss path
        probes the table remotely with plain reads -- exactly what the
        chase would have done, so correctness never depends on the
        optimistic hit.
        """
        yield cpu.acquire()
        try:
            yield self.env.timeout(self.issue_cost)
            slot = self._start_slot(key)
        finally:
            cpu.release()
        pointer_addr = self._slot_offset(slot) + 8
        result = yield self.cache.dependent_read(pointer_addr,
                                                 self.record_size)
        yield cpu.acquire()
        try:
            yield self.env.timeout(self.completion_cost)
        finally:
            cpu.release()
        if result.ok and result.data is not None:
            try:
                record_key, value = unpack_record(result.data)
            except ValueError:
                # Empty or torn slot: the chase fetched non-record bytes
                # (e.g. a NULL pointer dereferencing into the table).
                record_key, value = None, None
            if record_key == key:
                self.gets_one_rtt += 1
                if self._one_rtt_counter is not None:
                    self._one_rtt_counter.inc()
                return RemoteReadOutcome(True, value, one_rtt=True)
        elif not result.ok:
            return RemoteReadOutcome(False, error=result.error)
        outcome = yield from self._probe(key, slot, cpu)
        return outcome

    def _probe(self, key: int, start_slot: int, cpu: Resource):
        """Process: linear-probe the remote table (collision fallback)."""
        mask = self.capacity_slots - 1
        slot = start_slot
        for probes in range(1, self.capacity_slots + 1):
            result = yield self.cache.read(self._slot_offset(slot),
                                           SLOT_BYTES)
            if not result.ok:
                return RemoteReadOutcome(False, error=result.error,
                                         probes=probes)
            slot_key, addr = _SLOT.unpack(result.data)
            if addr == _NULL:
                if slot_key != 0 and slot_key != key:
                    # Tombstone: another key's record was evicted here
                    # (address word swung to NULL, key preserved).  The
                    # probe chain continues past it -- only a pristine
                    # (0, NULL) slot terminates the chain.
                    slot = (slot + 1) & mask
                    continue
                self.gets_missing += 1
                if self._miss_counter is not None:
                    self._miss_counter.inc()
                return RemoteReadOutcome(False, probes=probes)
            if slot_key == key:
                record = yield self.cache.read(addr, self.record_size)
                if not record.ok:
                    return RemoteReadOutcome(False, error=record.error,
                                             probes=probes)
                yield cpu.acquire()
                try:
                    yield self.env.timeout(self.completion_cost)
                finally:
                    cpu.release()
                _key, value = unpack_record(record.data)
                self.gets_probed += 1
                if self._probe_counter is not None:
                    self._probe_counter.inc()
                return RemoteReadOutcome(True, value, probes=probes)
            slot = (slot + 1) & mask
        self.gets_missing += 1
        if self._miss_counter is not None:
            self._miss_counter.inc()
        return RemoteReadOutcome(False, probes=self.capacity_slots)

    def evict(self, key: int, cpu: Resource, max_races: int = 4):
        """Process: server-side eviction marking via a standalone CAS.

        Finds the key's bucket slot with remote reads, then atomically
        swings the slot's *address word* from the observed record
        address to NULL -- one remote CAS, no read-modify-write window.
        The key stays in the slot as a tombstone, so probe chains for
        displaced keys survive the mark and a later upsert can reuse the
        slot.  A concurrent upsert that moves the record between the
        observation and the CAS surfaces as a mismatch; the mark retries
        against the fresh address up to ``max_races`` times.

        Returns True when the record was marked evicted, False when the
        key is absent (or was re-upserted faster than ``max_races``).
        Key 0 is not evictable: its tombstone would be indistinguishable
        from a pristine empty slot and would break probe chains.
        """
        if key == 0:
            raise ValueError("key 0 cannot be evicted (tombstone would "
                             "look like an empty slot)")
        yield cpu.acquire()
        try:
            yield self.env.timeout(self.issue_cost)
            slot = self._start_slot(key)
        finally:
            cpu.release()
        mask = self.capacity_slots - 1
        for _ in range(self.capacity_slots):
            result = yield self.cache.read(self._slot_offset(slot),
                                           SLOT_BYTES)
            if not result.ok:
                return False
            slot_key, addr = _SLOT.unpack(result.data)
            if slot_key == key:
                break
            if addr == _NULL and slot_key == 0:
                return False  # pristine chain end: key absent
            slot = (slot + 1) & mask
        else:
            return False
        for _ in range(max_races + 1):
            if addr == _NULL:
                return False  # already evicted (or never present)
            swung = yield self.cache.cas(self._slot_offset(slot) + 8,
                                         _WORD.pack(addr), _WORD.pack(_NULL))
            if swung.ok:
                self.evictions += 1
                if self._evict_counter is not None:
                    self._evict_counter.inc()
                return True
            # CAS mismatch: a concurrent upsert swung the word.  The
            # completion carries the observed original -- retry on it.
            self.evict_races += 1
            if self._evict_race_counter is not None:
                self._evict_race_counter.inc()
            if swung.data is None:
                return False
            addr = _WORD.unpack(swung.data)[0]
        return False

    def upsert(self, key: int, value: bytes, cpu: Resource):
        """Process: insert or update one key.

        Appends the record at the client-owned tail, *then* swings the
        bucket's address word -- readers chasing the old word still land
        on a complete record.  Returns False when the table is full or
        the log overflows the cache.
        """
        if len(value) != self.value_bytes:
            raise ValueError(
                f"value is {len(value)} B, store expects {self.value_bytes}")
        from repro.faster.address import pack_record
        yield cpu.acquire()
        try:
            yield self.env.timeout(self.issue_cost)
            slot = self._start_slot(key)
        finally:
            cpu.release()
        mask = self.capacity_slots - 1
        for _ in range(self.capacity_slots):
            result = yield self.cache.read(self._slot_offset(slot),
                                           SLOT_BYTES)
            if not result.ok:
                return False
            slot_key, addr = _SLOT.unpack(result.data)
            if addr == _NULL or slot_key == key:
                break
            slot = (slot + 1) & mask
        else:
            return False
        record_addr = self.tail
        if record_addr + self.record_size > self.cache.capacity:
            return False
        self.tail = record_addr + self.record_size
        written = yield self.cache.write(record_addr,
                                         pack_record(key, value))
        if not written.ok:
            return False
        swung = yield self.cache.write(self._slot_offset(slot),
                                       _SLOT.pack(key, record_addr))
        return bool(swung.ok)
