"""Log addresses and record layout.

The hybrid log is one logical byte-addressable sequence starting at 0.
Records are fixed-shape for a given store: an 8-byte header (key and
value lengths packed), an 8-byte key, and the value.  The paper's 8-byte
key / 8-byte value database is thus 24 bytes per record -- which is how
250 M records come to "~6 GB in total in FASTER".
"""

from __future__ import annotations

import struct

__all__ = [
    "NULL_ADDRESS",
    "RECORD_HEADER_BYTES",
    "KEY_BYTES",
    "is_tombstone",
    "pack_record",
    "pack_tombstone",
    "record_bytes",
    "unpack_record",
]

#: value-length sentinel marking a deletion record.
TOMBSTONE_LENGTH = 0xFFFFFFFF

#: Sentinel for "key not present".
NULL_ADDRESS = -1

#: Fixed record-header size (packed key/value lengths + flags).
RECORD_HEADER_BYTES = 8

#: Keys are 64-bit integers, as in the paper's YCSB setup.
KEY_BYTES = 8

_HEADER = struct.Struct("<II")
_KEY = struct.Struct("<q")


def record_bytes(value_bytes: int) -> int:
    """On-log footprint of one record with a ``value_bytes`` value."""
    if value_bytes < 0:
        raise ValueError("value size must be >= 0")
    return RECORD_HEADER_BYTES + KEY_BYTES + value_bytes


def pack_record(key: int, value: bytes) -> bytes:
    """Serialize one record."""
    return _HEADER.pack(KEY_BYTES, len(value)) + _KEY.pack(key) + value


def pack_tombstone(key: int, value_bytes: int) -> bytes:
    """Serialize a deletion record, padded to the store's record size.

    Log-structured deletion: the tombstone supersedes earlier versions
    so that compaction and recovery observe the delete.
    """
    return (_HEADER.pack(KEY_BYTES, TOMBSTONE_LENGTH) + _KEY.pack(key)
            + b"\x00" * value_bytes)


def is_tombstone(blob: bytes) -> bool:
    """Whether a serialized record is a deletion marker."""
    _key_len, value_len = _HEADER.unpack_from(blob, 0)
    return value_len == TOMBSTONE_LENGTH


def unpack_record(blob: bytes) -> tuple[int, bytes]:
    """Deserialize one record; returns (key, value)."""
    key_len, value_len = _HEADER.unpack_from(blob, 0)
    if key_len != KEY_BYTES:
        raise ValueError(f"corrupt record header: key_len={key_len}")
    (key,) = _KEY.unpack_from(blob, RECORD_HEADER_BYTES)
    start = RECORD_HEADER_BYTES + KEY_BYTES
    value = blob[start:start + value_len]
    if len(value) != value_len:
        raise ValueError("corrupt record: truncated value")
    return key, value
