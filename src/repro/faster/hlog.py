"""The hybrid log (§8.1).

One logical append-only address space: "the tail of the log is stored in
main memory and the remainder is spilled to storage".  The in-memory
portion is a ring buffer over ``[head_address, tail_address)``; its
youngest ``mutable_fraction`` supports in-place updates, the rest is
read-only.  When an append needs room, the oldest in-memory page spills
to the device and the head advances.
"""

from __future__ import annotations

from typing import Optional

from repro.faster.devices import IDevice
from repro.sim.kernel import Environment

__all__ = ["HybridLog"]

#: Spill granularity: FASTER flushes whole pages, not single records.
DEFAULT_PAGE_BYTES = 1 << 16


class HybridLog:
    """The in-memory half of the log plus its spill mechanics."""

    def __init__(self, env: Environment, memory_bytes: int,
                 device: Optional[IDevice],
                 mutable_fraction: float = 0.9,
                 page_bytes: int = DEFAULT_PAGE_BYTES):
        if memory_bytes < 1:
            raise ValueError("memory_bytes must be >= 1")
        if not 0.0 <= mutable_fraction <= 1.0:
            raise ValueError("mutable_fraction must be in [0, 1]")
        self.env = env
        self.memory_bytes = memory_bytes
        self.device = device
        self.mutable_fraction = mutable_fraction
        self.page_bytes = min(page_bytes, memory_bytes)
        self._buf = bytearray(memory_bytes)
        self.begin_address = 0
        self.head_address = 0
        self.tail_address = 0
        #: Lifetime statistics.
        self.bytes_spilled = 0
        self.records_appended = 0

    # ------------------------------------------------------------------
    # Boundaries
    # ------------------------------------------------------------------

    @property
    def read_only_address(self) -> int:
        """Below this (and >= head) the in-memory log is immutable."""
        mutable_bytes = int(self.memory_bytes * self.mutable_fraction)
        return max(self.head_address, self.tail_address - mutable_bytes)

    def in_memory(self, addr: int) -> bool:
        return self.head_address <= addr < self.tail_address

    def in_mutable_region(self, addr: int) -> bool:
        return self.read_only_address <= addr < self.tail_address

    @property
    def memory_used(self) -> int:
        return self.tail_address - self.head_address

    # ------------------------------------------------------------------
    # Ring-buffer plumbing
    # ------------------------------------------------------------------

    def _ring_write(self, addr: int, data: bytes) -> None:
        start = addr % self.memory_bytes
        first = min(len(data), self.memory_bytes - start)
        self._buf[start:start + first] = data[:first]
        if first < len(data):
            self._buf[0:len(data) - first] = data[first:]

    def _ring_read(self, addr: int, size: int) -> bytes:
        start = addr % self.memory_bytes
        first = min(size, self.memory_bytes - start)
        chunk = bytes(self._buf[start:start + first])
        if first < size:
            chunk += bytes(self._buf[0:size - first])
        return chunk

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def _evict_page(self) -> None:
        """Spill the oldest page and advance the head."""
        page_len = min(self.page_bytes, self.memory_used)
        page = self._ring_read(self.head_address, page_len)
        if self.device is not None:
            self.device.spill(self.head_address, page)
        self.bytes_spilled += page_len
        self.head_address += page_len

    def append(self, record: bytes) -> int:
        """Append one record; returns its log address.

        Evicts old pages as needed.  Without a device, evicted data is
        simply lost (a pure in-memory cache configuration).
        """
        if len(record) > self.memory_bytes:
            raise ValueError(
                f"record ({len(record)} B) larger than log memory "
                f"({self.memory_bytes} B)")
        while self.memory_used + len(record) > self.memory_bytes:
            self._evict_page()
        addr = self.tail_address
        self._ring_write(addr, record)
        self.tail_address += len(record)
        self.records_appended += 1
        return addr

    def read(self, addr: int, size: int) -> Optional[bytes]:
        """Read from the in-memory portion; None if already spilled."""
        if not self.in_memory(addr) or addr + size > self.tail_address:
            return None
        return self._ring_read(addr, size)

    def update_in_place(self, addr: int, data: bytes) -> bool:
        """Overwrite a record body; only legal in the mutable region."""
        if not self.in_mutable_region(addr):
            return False
        if addr + len(data) > self.tail_address:
            return False
        self._ring_write(addr, data)
        return True
