"""The FASTER hash index: keys to log addresses.

FASTER's index "maps keys to record addresses" and "is stored in the
client's memory" (§8.1).  This implementation keeps FASTER's semantics
-- last-writer-wins address per key, no storage of values -- behind a
small API, with bucket-count accounting so its memory footprint can be
reported alongside the log's.
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.faster.address import NULL_ADDRESS

__all__ = ["HashIndex"]


class HashIndex:
    """In-memory key -> address map."""

    #: Approximate bytes per entry (key + address + bucket overhead),
    #: used for memory-footprint reporting.
    BYTES_PER_ENTRY = 24

    def __init__(self):
        self._entries: Dict[int, int] = {}
        #: Lifetime statistics.
        self.lookups = 0
        self.updates = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[int]:
        return iter(self._entries)

    @property
    def memory_bytes(self) -> int:
        return len(self._entries) * self.BYTES_PER_ENTRY

    def lookup(self, key: int) -> int:
        """Address of the latest record for ``key``; NULL_ADDRESS if absent."""
        self.lookups += 1
        return self._entries.get(key, NULL_ADDRESS)

    def update(self, key: int, address: int) -> None:
        """Point ``key`` at a new record address (insert or supersede)."""
        if address < 0:
            raise ValueError(f"invalid address {address}")
        self.updates += 1
        self._entries[key] = address

    def compare_and_update(self, key: int, expected: int,
                           address: int) -> bool:
        """CAS-style update, mirroring FASTER's concurrent index ops.

        In the single-threaded simulation this never races, but callers
        use it where real FASTER would, so the logic reads the same.
        """
        current = self._entries.get(key, NULL_ADDRESS)
        if current != expected:
            return False
        self.update(key, address)
        return True

    def delete(self, key: int) -> bool:
        self.updates += 1
        return self._entries.pop(key, None) is not None
