"""FASTER's storage devices.

``IDevice`` "exposes storage as a byte-addressable sequential address
space" (§8.2).  The hybrid log spills pages into the device; reads fetch
them back with device-appropriate cost:

* :class:`SsdDevice` -- server-local SSD: ~100 us log-normal latency
  with garbage-collection stalls and bounded internal parallelism;
* :class:`SmbDirectDevice` -- the paper's RDMA file-server baseline:
  lower latency than SSD but a heavy per-op client stack and no
  batching;
* :class:`RedyDevice` -- a Redy cache wrapped as a device, holding the
  most recent ``capacity`` bytes of the log as a ring;
* :class:`TieredDevice` -- the tiered meta-device: every spill lands in
  all tiers, a read is served by the lowest (fastest) tier that covers
  its address, and the *commit point* selects which tier's write
  acknowledgement completes an append.

Every device also carries ``client_cpu_per_read`` -- the FASTER-thread
CPU consumed per asynchronous read against it (I/O code path, context
switching), the overhead §8.3 calls out.  It is what separates Redy's
user-level client library from the kernel SMB/SSD stacks in Figures
18-20.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.hardware.ssd import SsdSpec
from repro.obs.metrics import registry_of
from repro.sim.clock import US
from repro.sim.kernel import Environment, Event
from repro.sim.resources import Resource


def _service_histogram(env: Environment, device_name: str):
    """Per-device service-time histogram, or None when uninstrumented."""
    metrics = registry_of(env)
    if metrics is None:
        return None
    return metrics.histogram(f"device.{device_name}.service_time")

__all__ = [
    "DeviceReadResult",
    "IDevice",
    "LocalMemoryDevice",
    "RedyDevice",
    "SmbDirectDevice",
    "SsdDevice",
    "TieredDevice",
]


@dataclass
class DeviceReadResult:
    """Outcome of one device read or write."""

    ok: bool
    data: Optional[bytes] = None
    error: Optional[str] = None
    #: The device that actually served a tiered read (None elsewhere).
    tier: Optional["IDevice"] = None


class IDevice(abc.ABC):
    """A byte-addressable sequential storage address space."""

    name: str = "device"
    #: FASTER-thread CPU per asynchronous read on this device.
    client_cpu_per_read: float = 0.0

    @abc.abstractmethod
    def read(self, addr: int, size: int) -> Event:
        """Asynchronous read; fires with a :class:`DeviceReadResult`."""

    @abc.abstractmethod
    def write(self, addr: int, data: bytes) -> Event:
        """Asynchronous write; fires with a :class:`DeviceReadResult`."""

    @abc.abstractmethod
    def spill(self, addr: int, data: bytes) -> None:
        """Untimed ingestion of a flushed log page (setup/bulk load)."""

    @abc.abstractmethod
    def covers(self, addr: int) -> bool:
        """Whether this device currently holds ``addr``."""


class _BufferedDevice(IDevice):
    """Shared machinery: a byte buffer plus a spill watermark."""

    def __init__(self, env: Environment, capacity: int):
        if capacity < 1:
            raise ValueError("device capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._buf = bytearray(capacity)
        self._watermark = 0  # exclusive end of spilled data
        self._service_time = _service_histogram(env, self.name)

    @property
    def watermark(self) -> int:
        return self._watermark

    def covers(self, addr: int) -> bool:
        return 0 <= addr < self._watermark

    def _store(self, addr: int, data: bytes) -> None:
        if addr < 0 or addr + len(data) > self.capacity:
            raise ValueError(
                f"{self.name}: write [{addr}, {addr + len(data)}) outside "
                f"capacity {self.capacity}")
        self._buf[addr:addr + len(data)] = data
        self._watermark = max(self._watermark, addr + len(data))

    def _fetch(self, addr: int, size: int) -> bytes:
        return bytes(self._buf[addr:addr + size])

    def spill(self, addr: int, data: bytes) -> None:
        self._store(addr, data)


class LocalMemoryDevice(_BufferedDevice):
    """DRAM as a device tier: near-instant, used in tests and as the
    reference point for the Figure 19 local-memory sweep."""

    name = "local-memory"
    client_cpu_per_read = 0.05 * US

    def __init__(self, env: Environment, capacity: int):
        super().__init__(env, capacity)
        self._latency = 0.1 * US

    def read(self, addr: int, size: int) -> Event:
        event = self.env.event()
        data = self._fetch(addr, size)
        self.env.process(self._complete(event, data), name="mem-read")
        return event

    def write(self, addr: int, data: bytes) -> Event:
        event = self.env.event()
        self._store(addr, data)
        self.env.process(self._complete(event, None), name="mem-write")
        return event

    def _complete(self, event: Event, data: Optional[bytes]):
        yield self.env.timeout(self._latency)
        if self._service_time is not None:
            self._service_time.observe(self._latency)
        event.succeed(DeviceReadResult(ok=True, data=data))


class SsdDevice(_BufferedDevice):
    """Server-attached SSD with log-normal latency and GC stalls."""

    name = "ssd"
    #: Kernel block-I/O stack + async completion per read.
    client_cpu_per_read = 3.5 * US

    def __init__(self, env: Environment, capacity: int,
                 rng: np.random.Generator, spec: SsdSpec = SsdSpec()):
        super().__init__(env, capacity)
        self.spec = spec
        self.rng = rng
        self._slots = Resource(env, slots=spec.internal_parallelism)

    def read(self, addr: int, size: int) -> Event:
        return self._io(addr, size, None)

    def write(self, addr: int, data: bytes) -> Event:
        return self._io(addr, len(data), data)

    def _io(self, addr: int, size: int, data: Optional[bytes]) -> Event:
        event = self.env.event()
        self.env.process(self._service(event, addr, size, data),
                         name=f"ssd-{'w' if data else 'r'}@{addr}")
        return event

    def _service(self, event: Event, addr: int, size: int,
                 data: Optional[bytes]):
        started = self.env.now
        yield self._slots.acquire()
        try:
            latency = self.spec.sample_latency(size, data is not None,
                                               self.rng)
            yield self.env.timeout(latency)
        finally:
            self._slots.release()
        if self._service_time is not None:
            # Queueing for an internal slot counts: that is the latency
            # the log's read path actually sees.
            self._service_time.observe(self.env.now - started)
        if data is not None:
            self._store(addr, data)
            event.succeed(DeviceReadResult(ok=True))
        else:
            event.succeed(DeviceReadResult(ok=True,
                                           data=self._fetch(addr, size)))


class SmbDirectDevice(_BufferedDevice):
    """The SMB Direct baseline: an RDMA-enabled file-server protocol.

    Faster than SSD (its data sits in the file server's memory and moves
    over RDMA) but request/response per operation with a kernel client
    stack -- no Redy-style batching -- which is why it trails Redy by
    ~10x in Figure 18.
    """

    name = "smb-direct"
    #: Kernel SMB3 client + RDMA transport per read.
    client_cpu_per_read = 10.5 * US

    #: Server-side service time per request (file-server CPU + RDMA).
    service_time = 6.0 * US
    #: Effective per-connection bandwidth, Gbit/s.
    bandwidth_gbps = 50.0
    #: Concurrent requests the file server services for one client.
    server_slots = 4

    def __init__(self, env: Environment, capacity: int,
                 rng: np.random.Generator, network_rtt: float = 2.9 * US):
        super().__init__(env, capacity)
        self.rng = rng
        self.network_rtt = network_rtt
        self._slots = Resource(env, slots=self.server_slots)

    def _service_latency(self, size: int) -> float:
        transfer = size * 8 / (self.bandwidth_gbps * 1e9)
        jitter = float(np.exp(self.rng.normal(0.0, 0.15)))
        return (self.network_rtt + self.service_time * jitter + transfer)

    def read(self, addr: int, size: int) -> Event:
        return self._io(addr, size, None)

    def write(self, addr: int, data: bytes) -> Event:
        return self._io(addr, len(data), data)

    def _io(self, addr: int, size: int, data: Optional[bytes]) -> Event:
        event = self.env.event()
        self.env.process(self._service(event, addr, size, data),
                         name=f"smb-{'w' if data else 'r'}@{addr}")
        return event

    def _service(self, event: Event, addr: int, size: int,
                 data: Optional[bytes]):
        started = self.env.now
        yield self._slots.acquire()
        try:
            yield self.env.timeout(self._service_latency(size))
        finally:
            self._slots.release()
        if self._service_time is not None:
            self._service_time.observe(self.env.now - started)
        if data is not None:
            self._store(addr, data)
            event.succeed(DeviceReadResult(ok=True))
        else:
            event.succeed(DeviceReadResult(ok=True,
                                           data=self._fetch(addr, size)))


class RedyDevice(IDevice):
    """A Redy cache wrapped as an ``IDevice`` (Figure 17).

    The cache holds the most recent ``cache.capacity`` bytes of the log
    as a ring: log address ``a`` lives at cache address
    ``a % capacity``.  Older addresses fall out of the window and must
    be served by the next tier.
    """

    name = "redy"
    #: Redy's user-level client library is far cheaper per op than the
    #: kernel storage stacks -- the core of the §8.3 result.
    client_cpu_per_read = 0.2 * US

    def __init__(self, cache):
        self.env = cache.env
        self.cache = cache
        self._watermark = 0
        self._service_time = _service_histogram(self.env, self.name)

    @property
    def capacity(self) -> int:
        return self.cache.capacity

    @property
    def window_start(self) -> int:
        return max(0, self._watermark - self.capacity)

    def covers(self, addr: int) -> bool:
        return self.window_start <= addr < self._watermark

    def _ring_pieces(self, addr: int, size: int):
        """Split [addr, addr+size) at the ring boundary."""
        start = addr % self.capacity
        first = min(size, self.capacity - start)
        yield start, 0, first
        if first < size:
            yield 0, first, size - first

    def read(self, addr: int, size: int) -> Event:
        event = self.env.event()
        self.env.process(self._read(event, addr, size),
                         name=f"redy-dev-r@{addr}")
        return event

    def _read(self, event: Event, addr: int, size: int):
        started = self.env.now
        pieces = list(self._ring_pieces(addr, size))
        results = yield self.env.all_of([
            self.cache.read(cache_addr, length)
            for cache_addr, _buffer_offset, length in pieces])
        if addr < self.window_start:
            # The address aged out of the ring while the read was in
            # flight: its slot now holds newer log bytes.  Callers fall
            # back to the next tier (the log's full copy).
            event.succeed(DeviceReadResult(
                ok=False, error=f"address {addr} fell out of the cache "
                                f"window during the read"))
            return
        if not all(r.ok for r in results):
            failed = next(r for r in results if not r.ok)
            event.succeed(DeviceReadResult(ok=False, error=failed.error))
            return
        buffer = bytearray(size)
        for (_cache_addr, buffer_offset, length), result in zip(pieces,
                                                                results):
            buffer[buffer_offset:buffer_offset + length] = result.data
        if self._service_time is not None:
            self._service_time.observe(self.env.now - started)
        event.succeed(DeviceReadResult(ok=True, data=bytes(buffer)))

    def write(self, addr: int, data: bytes) -> Event:
        event = self.env.event()
        self.env.process(self._write(event, addr, data),
                         name=f"redy-dev-w@{addr}")
        return event

    def _write(self, event: Event, addr: int, data: bytes):
        pieces = list(self._ring_pieces(addr, len(data)))
        results = yield self.env.all_of([
            self.cache.write(cache_addr,
                             data[buffer_offset:buffer_offset + length])
            for cache_addr, buffer_offset, length in pieces])
        self._watermark = max(self._watermark, addr + len(data))
        ok = all(r.ok for r in results)
        error = None if ok else next(r for r in results if not r.ok).error
        event.succeed(DeviceReadResult(ok=ok, error=error))

    def spill(self, addr: int, data: bytes) -> None:
        for cache_addr, buffer_offset, length in self._ring_pieces(
                addr, len(data)):
            self.cache.load(cache_addr,
                            data[buffer_offset:buffer_offset + length])
        self._watermark = max(self._watermark, addr + len(data))


class TieredDevice(IDevice):
    """FASTER's tiered-storage meta-device (§8.2).

    ``tiers`` run fastest-first.  Spills/writes go to every tier; a read
    is served by the first tier that covers its address; the *commit
    point* (index into ``tiers``) selects how many tiers must
    acknowledge a write before it completes.
    """

    name = "tiered"

    def __init__(self, env: Environment, tiers: List[IDevice],
                 commit_point: int = 0):
        if not tiers:
            raise ValueError("tiered device needs at least one tier")
        if not 0 <= commit_point < len(tiers):
            raise ValueError(f"commit_point {commit_point} out of range")
        self.env = env
        self.tiers = list(tiers)
        self.commit_point = commit_point

    def resolve(self, addr: int) -> Optional[IDevice]:
        """The lowest tier currently holding ``addr``."""
        for tier in self.tiers:
            if tier.covers(addr):
                return tier
        return None

    def covers(self, addr: int) -> bool:
        return self.resolve(addr) is not None

    def read(self, addr: int, size: int) -> Event:
        event = self.env.event()
        self.env.process(self._read(event, addr, size),
                         name=f"tiered-r@{addr}")
        return event

    def _read(self, event: Event, addr: int, size: int):
        """Serve from the lowest covering tier, falling back to higher
        tiers when a cache tier's copy aged out mid-read."""
        last_error = f"address {addr} on no tier"
        for tier in self.tiers:
            if not tier.covers(addr):
                continue
            result = yield tier.read(addr, size)
            if result.ok:
                result.tier = tier
                event.succeed(result)
                return
            last_error = result.error
        event.succeed(DeviceReadResult(ok=False, error=last_error))

    def write(self, addr: int, data: bytes) -> Event:
        """Apply to all tiers; complete at the commit point."""
        events = [tier.write(addr, data) for tier in self.tiers]
        done = self.env.event()
        self.env.process(self._commit(events, done), name="tiered-commit")
        return done

    def _commit(self, events: List[Event], done: Event):
        results = yield self.env.all_of(events[:self.commit_point + 1])
        ok = all(r.ok for r in results)
        done.succeed(DeviceReadResult(ok=ok))

    def spill(self, addr: int, data: bytes) -> None:
        for tier in self.tiers:
            tier.spill(addr, data)
