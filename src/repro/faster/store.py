"""FasterKv: the store facade tying index, hybrid log, and devices.

The timed operations (:meth:`FasterKv.read`, :meth:`FasterKv.upsert`,
:meth:`FasterKv.rmw`) are generators meant to run inside simulation
processes; they charge FASTER-thread CPU against the caller-supplied
``cpu`` resource so that one thread's issue and completion work never
overlaps in time, while device waits release the thread (the
asynchronous device interface of §8.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faster.address import (
    NULL_ADDRESS,
    is_tombstone,
    pack_record,
    pack_tombstone,
    record_bytes,
    unpack_record,
)
from repro.faster.devices import IDevice
from repro.faster.hlog import HybridLog
from repro.faster.index import HashIndex
from repro.sim.clock import US
from repro.sim.kernel import Environment
from repro.sim.resources import Resource

__all__ = ["FasterCosts", "FasterKv", "ReadOutcome"]


@dataclass(frozen=True)
class FasterCosts:
    """FASTER-thread CPU costs, calibrated to §8.3.

    * all-in-memory: ~0.78 us/read -> 4 threads reach the paper's
      ~5 MOPS (Figure 19's 8 GB point);
    * the asynchronous device path adds issue + completion work -- with
      Redy's cheap client library the miss path totals ~1.45 us, giving
      the 0.8 MOPS single-thread figure of 18a.
    """

    in_memory_read: float = 0.78 * US
    async_issue: float = 0.70 * US
    async_completion: float = 0.55 * US
    upsert: float = 0.90 * US
    copy_to_tail: float = 0.35 * US
    #: Per-value-byte handling cost (copies through the session stack,
    #: cache misses on large records).  Negligible for the paper's 8-byte
    #: values; ~1 us per op for the 1 KB runs of Figure 18d.
    per_value_byte: float = 1.0e-9


@dataclass
class ReadOutcome:
    """Result of one read."""

    found: bool
    value: Optional[bytes] = None
    served_by: str = "memory"
    error: Optional[str] = None


class FasterKv:
    """A FASTER-style key-value store over one (possibly tiered) device."""

    def __init__(self, env: Environment, device: Optional[IDevice],
                 memory_bytes: int, value_bytes: int, *,
                 costs: FasterCosts = FasterCosts(),
                 copy_reads_to_tail: bool = True,
                 mutable_fraction: float = 0.9,
                 durable_writes: bool = False,
                 index=None):
        self.env = env
        self.device = device
        self.value_bytes = value_bytes
        self.costs = costs
        #: Write-through mode: an upsert is acknowledged only once the
        #: device has it -- "an append operation is applied to all
        #: tiers.  It is acknowledged to the client after all tiers have
        #: applied the append", modulated by the tiered device's *commit
        #: point* (§8.2).
        self.durable_writes = durable_writes
        #: FASTER's read-cache behaviour: a record served by a device is
        #: appended back to the tail so hot records migrate into memory.
        #: This is what makes the Zipfian runs of Figure 18b faster than
        #: uniform -- "FASTER uses local memory to cache frequently-
        #: accessed records".
        self.copy_reads_to_tail = copy_reads_to_tail
        #: Any HashIndex-compatible map; the default is the light
        #: dict-backed index, :class:`~repro.faster.hashtable.
        #: OpenAddressingIndex` is the faithful open-addressed one.
        self.index = index if index is not None else HashIndex()
        self.hlog = HybridLog(env, memory_bytes, device,
                              mutable_fraction=mutable_fraction)
        self.record_size = record_bytes(value_bytes)
        #: Lifetime statistics.
        self.reads_memory = 0
        self.reads_device = 0
        self.reads_missing = 0

    # ------------------------------------------------------------------
    # Untimed bulk load (benchmark setup)
    # ------------------------------------------------------------------

    def load(self, n_records: int,
             value_of=None) -> None:
        """Insert keys ``0..n_records-1`` without charging simulated time.

        ``value_of(key)`` supplies values; default encodes the key so
        that round-trip tests can verify content integrity.
        """
        if value_of is None:
            def value_of(key: int) -> bytes:
                return key.to_bytes(8, "little") * (self.value_bytes // 8) \
                    + b"\x00" * (self.value_bytes % 8)
        for key in range(n_records):
            value = value_of(key)
            if len(value) != self.value_bytes:
                raise ValueError(
                    f"value_of returned {len(value)} B, store expects "
                    f"{self.value_bytes} B")
            addr = self.hlog.append(pack_record(key, value))
            self.index.update(key, addr)

    @property
    def log_size(self) -> int:
        """Total logical log bytes (memory + spilled)."""
        return self.hlog.tail_address

    # ------------------------------------------------------------------
    # Timed operations (run inside simulation processes)
    # ------------------------------------------------------------------

    def read(self, key: int, cpu: Resource):
        """Process: read one key; returns a :class:`ReadOutcome`."""
        yield cpu.acquire()
        try:
            address = self.index.lookup(key)
            if address == NULL_ADDRESS:
                yield self.env.timeout(self.costs.in_memory_read)
                self.reads_missing += 1
                return ReadOutcome(found=False)

            if self.hlog.in_memory(address):
                # Copy the record before yielding: a concurrent append
                # could evict this page mid-wait (real FASTER pins it via
                # epoch protection; copying first gives the same
                # guarantee here).
                blob = self.hlog.read(address, self.record_size)
                yield self.env.timeout(
                    self.costs.in_memory_read
                    + self.value_bytes * self.costs.per_value_byte)
                self.reads_memory += 1
                _key, value = unpack_record(blob)
                return ReadOutcome(found=True, value=value,
                                   served_by="memory")

            # Asynchronous device path: issue, release the thread while
            # the I/O is in flight, then pay completion costs.
            yield self.env.timeout(self.costs.async_issue)
        finally:
            cpu.release()
        if self.device is None:
            self.reads_missing += 1
            return ReadOutcome(found=False,
                               error="record evicted and no device")
        result = yield self.device.read(address, self.record_size)
        yield cpu.acquire()
        try:
            serving = (result.tier if result.tier is not None
                       else self.device)
            completion = (self.costs.async_completion
                          + serving.client_cpu_per_read
                          + self.value_bytes * self.costs.per_value_byte)
            yield self.env.timeout(completion)
            if not result.ok:
                self.reads_missing += 1
                return ReadOutcome(found=False, error=result.error)
            if is_tombstone(result.data):
                self.reads_missing += 1
                return ReadOutcome(found=False)
            key_read, value = unpack_record(result.data)
            if self.copy_reads_to_tail:
                # Promote the record so subsequent reads hit memory.
                # Only if the index still points at the address we
                # fetched.
                yield self.env.timeout(self.costs.copy_to_tail)
                new_address = self.hlog.append(result.data)
                self.index.compare_and_update(key, address, new_address)
        finally:
            cpu.release()
        self.reads_device += 1
        return ReadOutcome(found=True, value=value, served_by=serving.name)

    def upsert(self, key: int, value: bytes, cpu: Resource):
        """Process: insert or update one key.

        Updates in the mutable region happen in place; everything else
        appends to the tail and swings the index (§8.1).
        """
        if len(value) != self.value_bytes:
            raise ValueError(
                f"value is {len(value)} B, store expects {self.value_bytes}")
        yield cpu.acquire()
        try:
            yield self.env.timeout(self.costs.upsert
                                   + len(value) * self.costs.per_value_byte)
            record = pack_record(key, value)
            address = self.index.lookup(key)
            if (address != NULL_ADDRESS
                    and self.hlog.in_mutable_region(address)):
                self.hlog.update_in_place(address, record)
                written_at = address
            else:
                written_at = self.hlog.append(record)
                self.index.update(key, written_at)
        finally:
            cpu.release()
        if self.durable_writes and self.device is not None:
            # Commit semantics: wait for the device (the tiered device
            # acks at its commit point) while the thread serves others.
            result = yield self.device.write(written_at, record)
            if not result.ok:
                return False
        return True

    def delete(self, key: int, cpu: Resource):
        """Process: delete one key.  Returns False when absent.

        Appends a tombstone (so the log records the deletion for
        compaction/recovery) and unhooks the index entry.
        """
        yield cpu.acquire()
        try:
            yield self.env.timeout(self.costs.upsert)
            existed = self.index.lookup(key) != NULL_ADDRESS
            if existed:
                self.hlog.append(pack_tombstone(key, self.value_bytes))
                self.index.delete(key)
        finally:
            cpu.release()
        return existed

    def rmw(self, key: int, transform, cpu: Resource):
        """Process: read-modify-write.  ``transform(old) -> new value``.

        Returns False when the key does not exist.
        """
        outcome = yield from self.read(key, cpu)
        if not outcome.found:
            return False
        yield from self.upsert(key, transform(outcome.value), cpu)
        return True

    # ------------------------------------------------------------------
    # Log compaction (§8.1)
    # ------------------------------------------------------------------

    def compact(self, until_address: int, cpu: Resource):
        """Process: reclaim log space below ``until_address``.

        "To free up storage, the oldest segment is read, its reachable
        records are appended to the log tail, and then it is
        deallocated" (§8.1).  A record is *reachable* when the index
        still points at its address; superseded versions and tombstoned
        keys are dropped.  Returns (records_scanned, records_relocated).
        """
        until_address = min(until_address, self.hlog.head_address)
        address = self.hlog.begin_address
        if until_address <= address:
            return 0, 0
        scanned = relocated = 0
        while address < until_address:
            if self.device is None:
                break
            result = yield self.device.read(address, self.record_size)
            yield cpu.acquire()
            try:
                yield self.env.timeout(
                    self.costs.async_completion
                    + self.value_bytes * self.costs.per_value_byte)
                scanned += 1
                if result.ok and not is_tombstone(result.data):
                    key, _value = unpack_record(result.data)
                    if self.index.lookup(key) == address:
                        # Still the live version: relocate to the tail.
                        new_address = self.hlog.append(result.data)
                        self.index.update(key, new_address)
                        relocated += 1
            finally:
                cpu.release()
            address += self.record_size
        self.hlog.begin_address = address
        return scanned, relocated

    @property
    def live_log_bytes(self) -> int:
        """Log bytes not yet reclaimed by compaction."""
        return self.hlog.tail_address - self.hlog.begin_address
