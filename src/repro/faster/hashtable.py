"""An open-addressing hash index over numpy arrays.

FASTER's hash index is a cache-friendly open-addressed table of
key-to-address entries, not a chained map.  This implementation mirrors
that design at the algorithmic level: power-of-two capacity, linear
probing with deletion markers, amortized resizing, and 16 bytes of
payload per slot (key + address as int64).  It is API-compatible with
the lighter :class:`~repro.faster.index.HashIndex`, so
:class:`~repro.faster.store.FasterKv` accepts either.
"""

from __future__ import annotations

import numpy as np

from repro.faster.address import NULL_ADDRESS

__all__ = ["OpenAddressingIndex"]

#: Slot-state sentinels, stored in the key array.  Callers may not use
#: these two values as keys (they sit at the very bottom of int64).
_EMPTY = np.iinfo(np.int64).min
_DELETED = _EMPTY + 1

#: splitmix64 constants for key mixing.
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
_MASK = (1 << 64) - 1


def _mix(key: int) -> int:
    """splitmix64 finalizer: spreads nearby keys across the table."""
    z = (key + 0x9E3779B97F4A7C15) & _MASK
    z = ((z ^ (z >> 30)) * _MIX_1) & _MASK
    z = ((z ^ (z >> 27)) * _MIX_2) & _MASK
    return (z ^ (z >> 31)) & _MASK


class OpenAddressingIndex:
    """Linear-probing key -> address table with amortized growth."""

    #: Bytes per slot: int64 key + int64 address.
    BYTES_PER_SLOT = 16

    #: Grow when occupancy (live + deleted) exceeds this fraction.
    MAX_LOAD = 0.7

    def __init__(self, initial_capacity: int = 1024):
        if initial_capacity < 8:
            initial_capacity = 8
        capacity = 1
        while capacity < initial_capacity:
            capacity *= 2
        self._keys = np.full(capacity, _EMPTY, dtype=np.int64)
        self._addresses = np.full(capacity, NULL_ADDRESS, dtype=np.int64)
        self._live = 0
        self._occupied = 0  # live + deletion markers
        #: Lifetime statistics (matches HashIndex).
        self.lookups = 0
        self.updates = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._live

    def __contains__(self, key: int) -> bool:
        return self._probe(key) >= 0

    @property
    def capacity(self) -> int:
        return len(self._keys)

    @property
    def memory_bytes(self) -> int:
        return self.capacity * self.BYTES_PER_SLOT

    @property
    def load_factor(self) -> float:
        return self._live / self.capacity

    @staticmethod
    def _check_key(key: int) -> None:
        if key in (_EMPTY, _DELETED):
            raise ValueError(f"key {key} collides with a slot sentinel")

    def _probe(self, key: int) -> int:
        """Slot index holding ``key``, or -1."""
        mask = self.capacity - 1
        slot = _mix(key) & mask
        keys = self._keys
        while True:
            current = keys[slot]
            if current == key:
                return slot
            if current == _EMPTY:
                return -1
            slot = (slot + 1) & mask

    def _insert_slot(self, key: int) -> int:
        """Slot to write ``key`` into (existing, or first free)."""
        mask = self.capacity - 1
        slot = _mix(key) & mask
        keys = self._keys
        first_free = -1
        while True:
            current = keys[slot]
            if current == key:
                return slot
            if current == _DELETED and first_free < 0:
                first_free = slot
            if current == _EMPTY:
                return first_free if first_free >= 0 else slot
            slot = (slot + 1) & mask

    def _grow(self) -> None:
        live = (self._keys != _EMPTY) & (self._keys != _DELETED)
        live_keys = self._keys[live]
        live_addresses = self._addresses[live]
        new_capacity = self.capacity * 2
        self._keys = np.full(new_capacity, _EMPTY, dtype=np.int64)
        self._addresses = np.full(new_capacity, NULL_ADDRESS,
                                  dtype=np.int64)
        self._live = 0
        self._occupied = 0
        for key, address in zip(live_keys.tolist(),
                                live_addresses.tolist()):
            self._raw_update(key, address)

    # ------------------------------------------------------------------
    # HashIndex-compatible API
    # ------------------------------------------------------------------

    def lookup(self, key: int) -> int:
        self.lookups += 1
        self._check_key(key)
        slot = self._probe(key)
        return int(self._addresses[slot]) if slot >= 0 else NULL_ADDRESS

    def _raw_update(self, key: int, address: int) -> None:
        if self._occupied + 1 > self.capacity * self.MAX_LOAD:
            self._grow()
        slot = self._insert_slot(key)
        if self._keys[slot] != key:
            self._live += 1
            if self._keys[slot] == _EMPTY:
                self._occupied += 1
        self._keys[slot] = key
        self._addresses[slot] = address

    def update(self, key: int, address: int) -> None:
        if address < 0:
            raise ValueError(f"invalid address {address}")
        self._check_key(key)
        self.updates += 1
        self._raw_update(key, address)

    def compare_and_update(self, key: int, expected: int,
                           address: int) -> bool:
        self._check_key(key)
        slot = self._probe(key)
        current = int(self._addresses[slot]) if slot >= 0 else NULL_ADDRESS
        if current != expected:
            return False
        self.update(key, address)
        return True

    def delete(self, key: int) -> bool:
        self._check_key(key)
        self.updates += 1
        slot = self._probe(key)
        if slot < 0:
            return False
        self._keys[slot] = _DELETED
        self._addresses[slot] = NULL_ADDRESS
        self._live -= 1
        return True
