"""The control-plane facade: pools, predictor, harvester, and wiring.

One :class:`ControlPlane` per fabric.  It flips the fabric into
control-plane cost modeling (QP/connect/MR costs + NIC context caches),
owns one :class:`~repro.cplane.pool.QpPool` per (local, remote)
endpoint pair, sizes the pools' warm targets from admission traffic via
the :class:`~repro.cplane.predictor.WarmPoolPredictor`, and runs the
periodic idle harvester.  The serving layers wire into it at two
points:

* :meth:`bind_router` -- a rebalance that removes a member reclaims
  every QP pooled against the departed endpoint (fast teardown), so a
  storm landing mid-rebalance cannot strand QPs on a corpse;
* :meth:`note_admission` -- the tenant tier reports admitted requests,
  feeding the predictor that sizes pre-connected warm pools.

Installing a plane sets ``fabric.control_plane``, which the engine's
attach path consults to lease pooled QPs instead of creating naive
per-thread ones.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, Optional, Tuple

from repro.cplane.log import CplaneLog
from repro.cplane.pool import PoolPolicy, QpPool
from repro.cplane.predictor import WarmPoolPredictor
from repro.cplane.session import ClientSession
from repro.net.fabric import Endpoint, Fabric
from repro.sim.kernel import Environment, Event

__all__ = ["ControlPlane"]


class ControlPlane:
    """Connection control plane layered over one fabric."""

    def __init__(self, env: Environment, fabric: Fabric, *,
                 policy: Optional[PoolPolicy] = None,
                 predictor: Optional[WarmPoolPredictor] = None,
                 harvest_interval_s: float = 0.1):
        if harvest_interval_s <= 0:
            raise ValueError("harvest_interval_s must be positive")
        self.env = env
        self.fabric = fabric
        self.policy = policy if policy is not None else PoolPolicy()
        self.predictor = (predictor if predictor is not None
                          else WarmPoolPredictor())
        self.harvest_interval_s = harvest_interval_s
        self.log = CplaneLog()
        #: (local name, remote name) -> pool; session ids are unique
        #: across all pools (shared counter).
        self.pools: Dict[Tuple[str, str], QpPool] = {}
        self._session_ids = itertools.count(1)
        self._harvester_running = False
        self.tenants: Dict[str, int] = {}
        # Control-plane costs become real the moment a plane exists:
        # deferred QPs, timed registration, and NIC context caches.
        fabric.enable_control_plane_model()
        fabric.control_plane = self

    # ------------------------------------------------------------------
    # Pools
    # ------------------------------------------------------------------

    def pool(self, local: Endpoint, remote: Endpoint) -> QpPool:
        """The pool carrying ``local``'s sessions to ``remote``
        (created on first use)."""
        key = (local.name, remote.name)
        pool = self.pools.get(key)
        if pool is None:
            pool = QpPool(self.env, local, remote, self.policy, self.log,
                          session_ids=self._session_ids)
            self.pools[key] = pool
        return pool

    def open_session(self, local: Endpoint, remote: Endpoint,
                     tenant: Optional[str] = None
                     ) -> Generator[Event, object, ClientSession]:
        """Process: open one logical session through the right pool."""
        self.predictor.observe(self.env.now)
        session = yield from self.pool(local, remote).open_session(tenant)
        return session

    def close_session(self, session: ClientSession) -> None:
        pool = self.pools.get((session.local_name, session.remote_name))
        if pool is not None:
            pool.close_session(session)

    # ------------------------------------------------------------------
    # Warm pool + harvesting
    # ------------------------------------------------------------------

    def establish_latency_estimate(self) -> float:
        """Analytic cold-connect latency (command cost + handshake
        RTTs) used to size the warm pool via Little's law."""
        nic = self.fabric.profile.nic
        fab = self.fabric.profile.fabric
        rtt = 2 * (nic.wire_time(nic.connect_message_bytes)
                   + fab.one_way_base(1))
        return nic.qp_setup_cpu_latency() + nic.connect_handshake_rtts * rtt

    def warm_target(self) -> int:
        return self.predictor.target_warm(self.establish_latency_estimate())

    def prewarm(self) -> Generator[Event, object, int]:
        """Process: push every pool's warm pool up to the predictor's
        current target.  Returns total QPs pre-connected."""
        target = self.warm_target()
        total = 0
        for key in sorted(self.pools):
            total += yield from self.pools[key].ensure_warm(target)
        return total

    def harvest_once(self) -> int:
        """One harvester pass over every pool (sorted order)."""
        total = 0
        for key in sorted(self.pools):
            pool = self.pools[key]
            pool.warm_target = min(self.warm_target(),
                                   self.policy.warm_max)
            total += pool.harvest()
        return total

    def start_harvester(self) -> None:
        """Spawn the periodic idle-harvest process (idempotent)."""
        if self._harvester_running:
            return
        self._harvester_running = True
        self.env.process(self._harvest_loop(), name="cplane-harvester")

    def _harvest_loop(self):
        while True:
            yield self.env.timeout(self.harvest_interval_s)
            self.harvest_once()

    # ------------------------------------------------------------------
    # Serving-layer wiring
    # ------------------------------------------------------------------

    def bind_router(self, router) -> None:
        """Reclaim pooled QPs when a rebalance removes members: every
        pool whose remote endpoint is dead or gone tears down fast
        instead of letting sessions time out against a corpse."""
        router.on_rebalance.append(self._on_rebalance)

    def _on_rebalance(self, report) -> None:
        reclaimed = 0
        for key in sorted(self.pools):
            pool = self.pools[key]
            if not pool.remote.alive:
                reclaimed += pool.reclaim_all(reason="rebalance: remote gone")
        self.log.append(self.env.now, "storm.rebalance", "plane",
                        reclaimed=reclaimed,
                        lost_slots=getattr(report, "lost_slots", 0))

    def register_tenant(self, name: str) -> None:
        """Track one serving tenant (admission feed identity)."""
        self.tenants.setdefault(name, 0)

    def note_admission(self, tenant: Optional[str] = None) -> None:
        """Feed one admitted request into the warm-pool predictor (the
        tenant tier calls this on every ADMIT verdict)."""
        if tenant is not None:
            self.tenants[tenant] = self.tenants.get(tenant, 0) + 1
        self.predictor.observe(self.env.now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Aggregate control-plane state (deterministic ordering)."""
        pools = {f"{k[0]}->{k[1]}": self.pools[k].stats()
                 for k in sorted(self.pools)}
        return {
            "pools": pools,
            "predictor": self.predictor.snapshot(),
            "warm_target": self.warm_target(),
            "tenants": dict(sorted(self.tenants.items())),
            "mr_registrations": self.fabric.mr_registrations,
            "mr_registered_bytes": self.fabric.mr_registered_bytes,
            "log_events": len(self.log),
            "log_digest": self.log.digest(),
        }
