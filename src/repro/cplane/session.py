"""Logical client sessions: the unit the pool multiplexes.

A :class:`ClientSession` is one elastic client's relationship with one
remote cache endpoint -- what would be a dedicated QP (plus registered
recv buffers) in the naive model.  The pool maps many sessions onto few
QPs; the session object carries the identity the demultiplexer routes
completions back to, and the idle bookkeeping the harvester reads.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["ClientSession"]


class ClientSession:
    """One logical client connection, as the control plane sees it."""

    __slots__ = ("session_id", "local_name", "remote_name", "tenant",
                 "opened_at", "ready_at", "closed_at", "last_active",
                 "qp_id", "recv_region_id", "reads", "writes")

    def __init__(self, session_id: int, local_name: str, remote_name: str,
                 opened_at: float, tenant: Optional[str] = None):
        self.session_id = session_id
        self.local_name = local_name
        self.remote_name = remote_name
        self.tenant = tenant
        #: Simulated instant the client asked to connect.
        self.opened_at = opened_at
        #: Instant the session became usable (QP assigned; includes any
        #: establishment the strategy put on the open path).
        self.ready_at: Optional[float] = None
        self.closed_at: Optional[float] = None
        self.last_active = opened_at
        #: The pooled QP currently carrying this session (None before
        #: assignment / after close).
        self.qp_id: Optional[int] = None
        #: Per-session recv region (naive strategy only; pooled
        #: sessions share the QP's region).
        self.recv_region_id: Optional[int] = None
        self.reads = 0
        self.writes = 0

    @property
    def open(self) -> bool:
        return self.closed_at is None

    def touch(self, now: float) -> None:
        self.last_active = now

    def __repr__(self) -> str:
        state = "open" if self.open else "closed"
        return (f"<ClientSession {self.session_id} "
                f"{self.local_name}->{self.remote_name} {state} "
                f"qp={self.qp_id}>")
