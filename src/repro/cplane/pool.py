"""QP pooling: few shared queue pairs carrying many client sessions.

The naive elastic-client model gives every logical client its own QP
and its own registered recv buffers -- so a connection storm pays the
full control-plane bill (QP create + state transitions + handshake
RTTs + memory registration) *per client*, and the per-QP NIC context
state of 10^5 live QPs thrashes the on-NIC cache long after the storm.

A :class:`QpPool` instead multiplexes sessions onto shared QPs, one
pool per (local endpoint, remote endpoint) pair:

* **Sharing** -- up to ``sessions_per_qp`` sessions ride one QP; the
  QP's recv region is registered once, not per session.
* **Request tagging + completion demux** -- every submitted work
  request is tagged with its session id; completions are routed back
  to the owning session's event, and a tag mismatch is counted (the
  invariant the interleaved-completion tests pin down).
* **Lazy establishment** -- ``pooled-lazy`` defers the connect
  handshake to the first posted verb (:meth:`QueuePair.post` backlogs
  and connects); ``pooled`` connects at session open through the
  batched connect worker; ``per-client`` is the naive baseline.
* **Doorbell-batched connect** -- establishment requests drain through
  one worker modeling the serialized NIC command queue: the first QP
  of a drain pays full command cost, followers the batched discount.
* **Warm pool + harvesting** -- :meth:`ensure_warm` pre-connects idle
  QPs ahead of demand (target set by the plane's predictor);
  :meth:`harvest` reclaims QPs idle beyond ``idle_timeout_s`` past the
  warm target, releasing QP state, NIC cache entries, and regions.

Determinism: sessions and QPs are picked by sorted ``(load, qp_id)``
keys, ids come from per-run counters, and every decision is appended
to the shared :class:`~repro.cplane.log.CplaneLog`.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Generator, List, Optional, Tuple

from repro.cplane.log import CplaneLog
from repro.cplane.session import ClientSession
from repro.net.fabric import Endpoint
from repro.net.memory import AccessToken, MemoryRegion
from repro.net.qp import QueuePair
from repro.net.verbs import RdmaOp, WorkRequest
from repro.obs.metrics import registry_of
from repro.sim.kernel import Environment, Event

__all__ = ["PoolPolicy", "QpPool", "STRATEGIES"]

#: Recognized pool strategies, in ablation order.
STRATEGIES = ("per-client", "pooled", "pooled-lazy")


@dataclass(frozen=True)
class PoolPolicy:
    """Knobs of one connection pool (frozen; safe to share)."""

    strategy: str = "pooled-lazy"
    #: Logical sessions multiplexed per shared QP.
    sessions_per_qp: int = 16
    #: Hard cap on live QPs per endpoint pair; at the cap new sessions
    #: oversubscribe the least-loaded QP instead of creating one.
    max_qps: int = 4096
    #: In-flight depth of pooled QPs.
    queue_depth: int = 16
    #: Recv-buffer bytes registered per session (naive) or per QP
    #: (pooled) -- the memory-registration cost surface.
    recv_region_bytes: int = 4096
    #: A QP idle this long (no sessions) becomes harvestable.
    idle_timeout_s: float = 0.25
    #: Warm-pool bounds (the predictor's target is clamped into these).
    warm_min: int = 0
    warm_max: int = 64

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r} (have {STRATEGIES})")
        if self.sessions_per_qp < 1:
            raise ValueError("sessions_per_qp must be >= 1")
        if self.max_qps < 1:
            raise ValueError("max_qps must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.recv_region_bytes < 1:
            raise ValueError("recv_region_bytes must be >= 1")
        if self.idle_timeout_s < 0:
            raise ValueError("idle_timeout_s must be >= 0")
        if self.warm_min < 0 or self.warm_max < self.warm_min:
            raise ValueError("need 0 <= warm_min <= warm_max")

    @property
    def shared(self) -> bool:
        return self.strategy != "per-client"


class _PooledQp:
    """One pool-owned QP plus its multiplexing bookkeeping."""

    __slots__ = ("qp", "sessions", "region", "idle_since", "created_at")

    def __init__(self, qp: QueuePair, created_at: float):
        self.qp = qp
        #: Session ids currently riding this QP.
        self.sessions: set = set()
        #: Pool-registered recv region (shared across the QP's sessions
        #: in pooled modes; per-session regions live on the session).
        self.region: Optional[MemoryRegion] = None
        #: Instant the QP last became session-free (None while in use).
        self.idle_since: Optional[float] = created_at
        self.created_at = created_at

    @property
    def usable(self) -> bool:
        return not self.qp.reclaimed and not self.qp.in_error


class QpPool:
    """Shared-QP connection pool for one (local, remote) endpoint pair."""

    def __init__(self, env: Environment, local: Endpoint, remote: Endpoint,
                 policy: PoolPolicy, log: CplaneLog,
                 session_ids: Optional[itertools.count] = None):
        self.env = env
        self.local = local
        self.remote = remote
        self.policy = policy
        self.log = log
        self.name = f"{local.name}->{remote.name}"
        self._session_ids = (session_ids if session_ids is not None
                             else itertools.count(1))
        self._tag_seq = itertools.count(1)
        #: qp_id -> entry, insertion (creation) ordered.
        self._qps: Dict[int, _PooledQp] = {}
        self.sessions: Dict[int, ClientSession] = {}
        self._session_qp: Dict[int, _PooledQp] = {}
        #: In-flight demux table: tag -> (session_id, user ctx, event).
        self._pending: Dict[int, Tuple[int, object, Event]] = {}
        # Serialized connect worker (the NIC command queue).
        self._connect_queue: Deque[QueuePair] = deque()
        self._connect_waiters: Dict[int, Event] = {}
        self._connect_worker_busy = False
        #: Predictor-fed warm target (the plane updates this).
        self.warm_target = policy.warm_min
        # Lifetime counters.
        self.opened = 0
        self.closed = 0
        self.qps_created = 0
        self.qps_reclaimed = 0
        self.establishments = 0
        self.batched_establishments = 0
        self.demux_routed = 0
        self.demux_misroutes = 0
        self.oversubscriptions = 0
        m = registry_of(env)
        self._c_sessions = m.counter("cplane.sessions_opened") if m else None
        self._c_reclaims = m.counter("cplane.qps_reclaimed") if m else None
        self._c_misroutes = m.counter("cplane.demux_misroutes") if m else None
        self._g_live_qps = m.gauge("cplane.live_qps") if m else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def live_qps(self) -> int:
        return len(self._qps)

    @property
    def active_sessions(self) -> int:
        return len(self._session_qp)

    def warm_ready(self) -> int:
        """Idle, usable QPs held ready for future sessions."""
        return sum(1 for entry in self._qps.values()
                   if not entry.sessions and entry.usable)

    def qp_ids(self) -> List[int]:
        return sorted(self._qps)

    def stats(self) -> dict:
        return {
            "strategy": self.policy.strategy,
            "opened": self.opened, "closed": self.closed,
            "active_sessions": self.active_sessions,
            "live_qps": self.live_qps, "warm_ready": self.warm_ready(),
            "qps_created": self.qps_created,
            "qps_reclaimed": self.qps_reclaimed,
            "establishments": self.establishments,
            "batched_establishments": self.batched_establishments,
            "demux_routed": self.demux_routed,
            "demux_misroutes": self.demux_misroutes,
            "oversubscriptions": self.oversubscriptions,
        }

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def open_session(self, tenant: Optional[str] = None
                     ) -> Generator[Event, object, ClientSession]:
        """Process: open one logical session and bind it to a QP.

        What the open path costs depends on the strategy: ``per-client``
        pays a dedicated QP establishment plus a per-session recv-region
        registration; ``pooled`` joins (or creates) a shared QP and
        waits for it to connect through the batched worker; cold
        ``pooled-lazy`` returns immediately -- the handshake rides on
        the first posted verb instead.
        """
        env = self.env
        now = env.now
        session = ClientSession(next(self._session_ids), self.local.name,
                                self.remote.name, now, tenant)
        self.sessions[session.session_id] = session
        self.opened += 1
        if self._c_sessions is not None:
            self._c_sessions.inc()
        self.log.append(now, "session.open", self.name,
                        session=session.session_id,
                        strategy=self.policy.strategy, tenant=tenant)
        if self.policy.strategy == "per-client":
            # Naive baseline: everything on the critical path, nothing
            # shared, nothing batched.
            region = MemoryRegion(self.policy.recv_region_bytes,
                                  backing=False)
            region = yield from self.local.register_timed(region)
            session.recv_region_id = region.region_id
            entry = self._create_qp()
            self._bind(session, entry)
            yield entry.qp.establish()
        else:
            entry = self._assign_shared_qp()
            if entry is None:
                entry = yield from self._create_shared_qp()
            self._bind(session, entry)
            if self.policy.strategy == "pooled" and not entry.qp.established:
                yield self._request_establish(entry.qp)
        session.ready_at = env.now
        return session

    def close_session(self, session: ClientSession) -> None:
        """Detach the session; a QP left session-free starts idling
        toward harvest (``per-client`` QPs are reclaimed on the spot --
        there is nobody left to share them with)."""
        if not session.open:
            return
        session.closed_at = self.env.now
        self.closed += 1
        entry = self._session_qp.pop(session.session_id, None)
        self.log.append(self.env.now, "session.close", self.name,
                        session=session.session_id)
        if entry is None:
            return
        entry.sessions.discard(session.session_id)
        if entry.sessions:
            return
        if self.policy.strategy == "per-client":
            self._reclaim(entry, reason="session closed")
            if session.recv_region_id is not None:
                self.local.deregister(session.recv_region_id)
                session.recv_region_id = None
        else:
            entry.idle_since = self.env.now

    def _bind(self, session: ClientSession, entry: _PooledQp) -> None:
        entry.sessions.add(session.session_id)
        entry.idle_since = None
        self._session_qp[session.session_id] = entry
        session.qp_id = entry.qp.qp_id

    # ------------------------------------------------------------------
    # QP management
    # ------------------------------------------------------------------

    def _create_qp(self) -> _PooledQp:
        qp = QueuePair(self.env, self.local, self.remote,
                       max_depth=self.policy.queue_depth, deferred=True)
        entry = _PooledQp(qp, self.env.now)
        self._qps[qp.qp_id] = entry
        self.qps_created += 1
        if self._g_live_qps is not None:
            self._g_live_qps.set(len(self._qps))
        self.log.append(self.env.now, "qp.create", self.name, qp=qp.qp_id,
                        strategy=self.policy.strategy)
        return entry

    def _create_shared_qp(self) -> Generator[Event, object, _PooledQp]:
        """Process: create a pooled QP and register its shared recv
        region (one registration amortized over every session that will
        ride it)."""
        entry = self._create_qp()
        region = MemoryRegion(self.policy.recv_region_bytes, backing=False)
        entry.region = yield from self.local.register_timed(region)
        return entry

    def _assign_shared_qp(self) -> Optional[_PooledQp]:
        """Least-loaded usable QP with session capacity (ties to the
        lowest qp_id -- deterministic).  At ``max_qps``, oversubscribes
        the least-loaded QP rather than failing."""
        best: Optional[_PooledQp] = None
        best_key: Optional[Tuple[int, int]] = None
        for qp_id in sorted(self._qps):
            entry = self._qps[qp_id]
            if not entry.usable:
                continue
            key = (len(entry.sessions), qp_id)
            if best_key is None or key < best_key:
                best_key = key
                best = entry
        if best is not None and len(best.sessions) < self.policy.sessions_per_qp:
            return best
        if len(self._qps) < self.policy.max_qps:
            return None  # caller creates a fresh one
        if best is not None:
            self.oversubscriptions += 1
            return best
        return None

    def _reclaim(self, entry: _PooledQp, reason: str) -> None:
        qp = entry.qp
        if not qp.reclaimed:
            qp.reclaim()
        if entry.region is not None:
            self.local.deregister(entry.region.region_id)
            entry.region = None
        self._qps.pop(qp.qp_id, None)
        self.qps_reclaimed += 1
        if self._c_reclaims is not None:
            self._c_reclaims.inc()
        if self._g_live_qps is not None:
            self._g_live_qps.set(len(self._qps))
        self.log.append(self.env.now, "qp.reclaim", self.name, qp=qp.qp_id,
                        reason=reason)

    def reclaim_all(self, reason: str) -> int:
        """Tear down every QP (remote endpoint died / left the ring).

        Open sessions are closed; their in-flight requests complete in
        error through the QPs' flush path, never silently vanish.
        """
        count = 0
        for qp_id in sorted(self._qps):
            self._reclaim(self._qps[qp_id], reason=reason)
            count += 1
        for session_id in sorted(self._session_qp):
            session = self.sessions[session_id]
            session.closed_at = self.env.now
            self.closed += 1
        self._session_qp.clear()
        return count

    # ------------------------------------------------------------------
    # Establishment: serialized command queue + doorbell batching
    # ------------------------------------------------------------------

    def _request_establish(self, qp: QueuePair) -> Event:
        """Queue one QP for establishment through the connect worker;
        returns an event firing with the handshake outcome."""
        env = self.env
        if qp.established or qp.reclaimed:
            done = env.event()
            done.succeed(qp.established and not qp.in_error)
            return done
        waiter = self._connect_waiters.get(qp.qp_id)
        if waiter is not None:
            return waiter
        waiter = env.event()
        self._connect_waiters[qp.qp_id] = waiter
        self._connect_queue.append(qp)
        if not self._connect_worker_busy:
            self._connect_worker_busy = True
            env.process(self._connect_worker(),
                        name=f"cplane-connect:{self.name}")
        return waiter

    def _connect_worker(self):
        """Drain the connect queue: the first establishment of a drain
        pays the full command cost, followers the batched discount (one
        command-queue doorbell covers the batch)."""
        first = True
        while self._connect_queue:
            qp = self._connect_queue.popleft()
            batched = not first
            first = False
            if qp.reclaimed:
                ok = False
            elif qp.established:
                ok = not qp.in_error
            else:
                ok = yield qp.establish(batched=batched)
                self.establishments += 1
                if batched:
                    self.batched_establishments += 1
            self.log.append(self.env.now, "qp.establish", self.name,
                            qp=qp.qp_id, ok=bool(ok), batched=batched)
            waiter = self._connect_waiters.pop(qp.qp_id, None)
            if waiter is not None:
                waiter.succeed(bool(ok))
        self._connect_worker_busy = False

    def ensure_warm(self, target: Optional[int] = None
                    ) -> Generator[Event, object, int]:
        """Process: pre-connect idle QPs until ``target`` warm QPs are
        ready (clamped to the policy's bounds; no-op for the naive
        strategy, which has nothing to share)."""
        if not self.policy.shared:
            return 0
        if target is None:
            target = self.warm_target
        target = max(self.policy.warm_min, min(self.policy.warm_max, target))
        self.warm_target = target
        created: List[Event] = []
        # warm_ready() already counts each freshly created (idle,
        # usable) QP, so it is the sole progress measure here.
        while (self.warm_ready() < target
               and len(self._qps) < self.policy.max_qps):
            entry = yield from self._create_shared_qp()
            created.append(self._request_establish(entry.qp))
        for waiter in created:
            yield waiter
        if created:
            self.log.append(self.env.now, "warm.target", self.name,
                            warm=target, preconnected=len(created))
        return len(created)

    def harvest(self) -> int:
        """Reclaim QPs idle beyond ``idle_timeout_s``, keeping
        ``warm_target`` of them alive as the warm pool.  Oldest-idle
        QPs are reclaimed first (deterministic ``(idle_since, qp_id)``
        order).  Session-free QPs in the error state (remote died, link
        fault) are reclaimed immediately regardless of the timeout or
        the warm target -- a broken QP can never serve a session, so
        keeping it "warm" would just strand its NIC state and recv
        region.  Returns the number reclaimed."""
        now = self.env.now
        idle = [entry for entry in self._qps.values()
                if not entry.sessions and entry.idle_since is not None]
        broken = sorted((entry for entry in idle if not entry.usable),
                        key=lambda entry: (entry.idle_since, entry.qp.qp_id))
        expired = sorted(
            (entry for entry in idle if entry.usable
             and now - entry.idle_since >= self.policy.idle_timeout_s),
            key=lambda entry: (entry.idle_since, entry.qp.qp_id))
        reclaimed = 0
        for entry in broken:
            self._reclaim(entry, reason="broken at harvest")
            reclaimed += 1
        keep = max(0, self.warm_target - (self.warm_ready() - len(expired)))
        for entry in expired[:max(0, len(expired) - keep)]:
            self._reclaim(entry, reason="idle harvest")
            reclaimed += 1
        if reclaimed:
            self.log.append(now, "harvest", self.name, reclaimed=reclaimed,
                            kept_warm=self.warm_ready())
        return reclaimed

    # ------------------------------------------------------------------
    # Data path: tagged submission + completion demux
    # ------------------------------------------------------------------

    def submit(self, session: ClientSession, wr: WorkRequest) -> Event:
        """Post ``wr`` on the session's QP, tagged with the session
        identity; returns an event firing with the completion after the
        demultiplexer has routed (and verified) it.

        The user's ``wr.context`` is restored on the delivered
        completion -- callers never see the pool's tag.
        """
        entry = self._session_qp.get(session.session_id)
        if entry is None:
            raise KeyError(
                f"session {session.session_id} is not bound to a QP")
        env = self.env
        session.touch(env.now)
        if wr.op is RdmaOp.READ:
            session.reads += 1
        elif wr.op is RdmaOp.WRITE:
            session.writes += 1
        tag = next(self._tag_seq)
        done = env.event()
        self._pending[tag] = (session.session_id, wr.context, done)
        wr.context = ("cplane", tag, session.session_id)
        completion_event = entry.qp.post(wr)
        completion_event._add_callback(
            lambda event, t=tag: self._demux(t, event.value))
        return done

    def session_read(self, session: ClientSession, token: AccessToken,
                     offset: int, nbytes: int,
                     context: object = None) -> Event:
        """Convenience: submit one tagged READ for ``session``."""
        wr = WorkRequest(RdmaOp.READ, token, offset, nbytes, context=context)
        return self.submit(session, wr)

    def session_write(self, session: ClientSession, token: AccessToken,
                      offset: int, data: bytes,
                      context: object = None) -> Event:
        """Convenience: submit one tagged WRITE for ``session``."""
        wr = WorkRequest(RdmaOp.WRITE, token, offset, len(data), data=data,
                         context=context)
        return self.submit(session, wr)

    def _demux(self, tag: int, completion) -> None:
        """Route one completion back to its session by tag.

        Interleaved completions from multiplexed sessions arrive on the
        shared QP in wire order, not per-session order; the tag is what
        keeps them apart.  A mismatch between the tag table and the
        completion's carried tag would mean the pool delivered one
        session's bytes to another -- counted, never silent.
        """
        session_id, user_context, done = self._pending.pop(tag)
        carried = completion.context
        if (isinstance(carried, tuple) and len(carried) == 3
                and carried[0] == "cplane" and carried[1] == tag
                and carried[2] == session_id):
            self.demux_routed += 1
        else:
            self.demux_misroutes += 1
            if self._c_misroutes is not None:
                self._c_misroutes.inc()
        completion.context = user_context
        session = self.sessions.get(session_id)
        if session is not None:
            session.touch(self.env.now)
        done.succeed(completion)
