"""The connection-storm workload: elastic clients arriving in a burst.

``run_connection_storm`` slams one simulated cache tier with N logical
clients arriving inside a short window.  Each client opens a session
(through the configured pool strategy), issues one READ -- the
*time-to-first-byte* measurement, which includes every control-plane
cost the strategy left on the critical path -- lingers briefly, and
closes.  The run then idles past the harvest timeout and reclaims,
so the blob also captures the leak surface (QPs/regions left behind).

This is the ablation the Swift argument predicts: naive per-client QPs
pay QP create + handshake + per-session registration per arrival and
then thrash the NIC's QP-context cache; pooling amortizes setup across
``sessions_per_qp`` arrivals; lazy establishment moves the remaining
handshakes off the open path and overlaps them with the storm.

Deterministic: one seeded RNG stream drawn *before* any process runs,
ids from per-run counters, and the control-plane log digest is part of
the result blob -- same seed, bit-identical blob.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.cplane.plane import ControlPlane
from repro.cplane.pool import PoolPolicy, STRATEGIES
from repro.hardware.profiles import AZURE_HPC, TestbedProfile
from repro.net.fabric import Fabric
from repro.net.memory import MemoryRegion
from repro.obs.metrics import MetricsRegistry
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry

__all__ = ["run_connection_storm"]

#: Region each storm server exposes (size-only; the storm measures
#: timing, not cache contents).
_SERVER_REGION_BYTES = 1 << 20


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 on empty)."""
    if not sorted_values:
        return 0.0
    n = len(sorted_values)
    index = min(n - 1, max(0, math.ceil(q * n) - 1))
    return sorted_values[index]


def run_connection_storm(seed: int, *, clients: int = 2000,
                         strategy: str = "pooled-lazy",
                         servers: int = 2, client_hosts: int = 8,
                         read_bytes: int = 128,
                         window_s: float = 0.05,
                         linger_s: float = 0.002,
                         reads_per_session: int = 1,
                         sessions_per_qp: int = 16,
                         prewarm: int = 0,
                         prewarm_lead_s: float = 0.005,
                         profile: TestbedProfile = AZURE_HPC,
                         metrics: Optional[MetricsRegistry] = None) -> Dict:
    """Run one connection storm; returns the canonical result blob."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r} (have {STRATEGIES})")
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if reads_per_session < 1:
        raise ValueError("reads_per_session must be >= 1")

    env = Environment()
    metrics = (MetricsRegistry() if metrics is None else metrics).install(env)
    rngs = RngRegistry(seed)
    fabric = Fabric(env, profile, model_control_plane=True)

    server_eps = []
    tokens = []
    for i in range(servers):
        endpoint = fabric.add_endpoint(f"storm-srv{i}")
        region = endpoint.register(MemoryRegion(_SERVER_REGION_BYTES,
                                                backing=False))
        server_eps.append(endpoint)
        tokens.append(region.token)
    host_eps = [fabric.add_endpoint(f"storm-host{j}")
                for j in range(client_hosts)]

    policy = PoolPolicy(strategy=strategy, sessions_per_qp=sessions_per_qp,
                        warm_max=max(64, prewarm))
    plane = ControlPlane(env, fabric, policy=policy)

    # Every random draw happens here, before the first process runs, so
    # the schedule cannot perturb the stream order.  With a prewarm,
    # arrivals start after the lead so the warm pool can actually be
    # built before the storm front hits it.
    lead = prewarm_lead_s if prewarm else 0.0
    rng = rngs.stream("cplane.storm")
    arrivals = sorted(lead + float(rng.uniform(0.0, window_s))
                      for _ in range(clients))

    ttfb: List[Optional[float]] = [None] * clients
    failures = [0]

    if prewarm:
        def prewarm_proc():
            for i in range(min(servers * client_hosts,
                               len(host_eps) * len(server_eps))):
                pool = plane.pool(host_eps[i % client_hosts],
                                  server_eps[i % servers])
                yield from pool.ensure_warm(prewarm)
        env.process(prewarm_proc(), name="storm-prewarm")

    def session_proc(index: int, at: float):
        host = host_eps[index % client_hosts]
        server_index = index % servers
        server = server_eps[server_index]
        yield env.timeout(at)
        session = yield from plane.open_session(host, server)
        pool = plane.pool(host, server)
        offset = (index * read_bytes) % (_SERVER_REGION_BYTES - read_bytes)
        completion = yield pool.session_read(session, tokens[server_index],
                                             offset, read_bytes)
        ttfb[index] = env.now - at
        if not completion.ok:
            failures[0] += 1
        # The session's remaining life: follow-up reads spread across
        # the linger window keep the QP's NIC context warm or thrashing
        # -- depending on how many other QPs are alive.
        gap = linger_s / reads_per_session
        for _ in range(reads_per_session - 1):
            yield env.timeout(gap)
            completion = yield pool.session_read(
                session, tokens[server_index], offset, read_bytes)
            if not completion.ok:
                failures[0] += 1
        yield env.timeout(gap)
        plane.close_session(session)

    for index, at in enumerate(arrivals):
        env.process(session_proc(index, at), name=f"storm-client:{index}")
    env.run()

    # Idle past the harvest timeout, then drain the pools completely
    # (warm target forced to zero: the storm is over, anything still
    # registered afterwards is a leak).
    def idle():
        yield env.timeout(policy.idle_timeout_s * 2)
    env.run_process(idle(), name="storm-idle")
    harvested = 0
    for key in sorted(plane.pools):
        pool = plane.pools[key]
        pool.warm_target = 0
        harvested += pool.harvest()

    observed = sorted(t for t in ttfb if t is not None)
    leaked_qps = len({qp.qp_id for ep in host_eps + server_eps
                      for qp in ep.qps})
    leaked_regions = sum(len(ep.regions) for ep in host_eps)
    cache_stats = {ep.name: ep.qp_context_cache.stats()
                   for ep in server_eps if ep.qp_context_cache is not None}
    pool_stats = {f"{k[0]}->{k[1]}": plane.pools[k].stats()
                  for k in sorted(plane.pools)}
    totals: Dict[str, int] = {}
    for stats in pool_stats.values():
        for key, value in stats.items():
            if isinstance(value, int):
                totals[key] = totals.get(key, 0) + value

    return {
        "schema": "repro.cplane/v1",
        "seed": seed,
        "strategy": strategy,
        "clients": clients,
        "reads_per_session": reads_per_session,
        "prewarm": prewarm,
        "completed": len(observed),
        "failures": failures[0],
        "ttfb_us": {
            "p50": _percentile(observed, 0.50) * 1e6,
            "p95": _percentile(observed, 0.95) * 1e6,
            "p99": _percentile(observed, 0.99) * 1e6,
            "max": (observed[-1] * 1e6) if observed else 0.0,
            "mean": (sum(observed) / len(observed) * 1e6
                     if observed else 0.0),
        },
        "pool_totals": totals,
        "pools": pool_stats,
        "harvested": harvested,
        "leaked_qps": leaked_qps,
        "leaked_client_regions": leaked_regions,
        "mr_registrations": fabric.mr_registrations,
        "mr_registered_bytes": fabric.mr_registered_bytes,
        "qp_context_caches": cache_stats,
        "log_events": len(plane.log),
        "log_digest": plane.log.digest(),
        "sim_seconds": env.now,
        "qp_establishments": int(_counter_value(metrics, "qp.establishments")),
        "qp_context_misses": int(_counter_value(metrics, "qp.context_misses")),
    }


def _counter_value(metrics: MetricsRegistry, name: str) -> float:
    """Read one counter's value off the registry (0.0 if never used)."""
    counter = metrics.get(name)
    return counter.value if counter is not None else 0.0
