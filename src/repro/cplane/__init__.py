"""The elastic RDMA connection control plane.

Redy's evaluation assumes long-lived clients, so connection setup is
free and static.  At the ROADMAP's north-star scale -- bursty
serverless/elastic clients connecting and vanishing by the thousand --
the *control plane* dominates: QP creation and connect handshakes,
memory-registration latency, and per-QP NIC context-cache pressure
(Swift, "Rethinking RDMA Control Plane for Elastic Computing").  This
package models those costs and builds the mitigations Swift argues for:

* :class:`QpPool` -- shared QPs multiplexing logical client sessions,
  with request tagging and completion demultiplexing;
* lazy establishment (first use connects) and doorbell-batched connect
  (followers of a connect batch pay a discounted command cost);
* a warm pool pre-connected ahead of demand, sized by an
  admission-fed :class:`WarmPoolPredictor`;
* fast teardown/reclaim with idle harvesting, releasing QPs, NIC
  context-cache entries, and registered recv regions.

Everything is deterministic: RNG only through seeded streams, QP ids
from the fabric's per-run counter, and every decision appended to a
digestable :class:`CplaneLog` so the sanitizer can replay a connection
storm bit-identically.
"""

from repro.cplane.log import CplaneLog
from repro.cplane.plane import ControlPlane
from repro.cplane.pool import PoolPolicy, QpPool
from repro.cplane.predictor import WarmPoolPredictor
from repro.cplane.session import ClientSession
from repro.cplane.storm import run_connection_storm

__all__ = [
    "ClientSession",
    "ControlPlane",
    "CplaneLog",
    "PoolPolicy",
    "QpPool",
    "WarmPoolPredictor",
    "run_connection_storm",
]
