"""The control plane's append-only decision log.

Every control-plane action -- session open/close, QP create, establish,
reclaim, warm-pool resize, harvest -- is recorded with its simulated
timestamp.  Like the fault log it imitates, the log is the subsystem's
determinism contract: same seed, bit-identical log, checkable in one
:meth:`CplaneLog.digest` comparison (canonical JSON lines, sorted keys,
``repr``-exact floats).
"""

from __future__ import annotations

from repro.faults.log import FaultEvent, FaultLog

__all__ = ["CplaneEvent", "CplaneLog"]

#: One control-plane action at one simulated instant (same canonical
#: shape as a fault event: time, kind, target, detail).
CplaneEvent = FaultEvent


class CplaneLog(FaultLog):
    """Append-only record of everything the control plane decided.

    Event kinds in use: ``session.open``, ``session.close``,
    ``qp.create``, ``qp.establish``, ``qp.reclaim``, ``mr.register``,
    ``warm.target``, ``harvest``, ``storm.rebalance``.  The replay
    sanitizer and the connection-storm smoke gate compare whole logs
    via :meth:`digest`.
    """
