"""Warm-pool sizing from observed admission traffic.

Pre-connecting QPs ahead of demand only pays if the pool knows how much
demand is coming.  The predictor watches session-open (or tenant
admission) arrivals and keeps an exponentially weighted estimate of the
arrival rate; the warm target is then Little's law over the connect
path: with sessions arriving at ``rate`` per second and establishment
taking ``establish_latency`` seconds, ``rate * latency`` connects are
in flight at steady state, so that many pre-connected QPs (times a
safety factor) absorb a burst without a handshake on the critical path.

Deterministic: state is a pure function of the ``observe()`` call times
-- no wall clock, no randomness.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = ["WarmPoolPredictor"]


class WarmPoolPredictor:
    """EWMA arrival-rate estimator feeding the warm-pool target."""

    __slots__ = ("alpha", "safety", "min_warm", "max_warm",
                 "observations", "_rate", "_last", "_coincident")

    def __init__(self, *, alpha: float = 0.3, safety: float = 2.0,
                 min_warm: int = 0, max_warm: int = 64):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if safety <= 0:
            raise ValueError(f"safety must be positive, got {safety}")
        if min_warm < 0 or max_warm < min_warm:
            raise ValueError(
                f"need 0 <= min_warm <= max_warm, got {min_warm}, {max_warm}")
        self.alpha = alpha
        self.safety = safety
        self.min_warm = min_warm
        self.max_warm = max_warm
        self.observations = 0
        self._rate: Optional[float] = None
        self._last: Optional[float] = None
        #: Arrivals at exactly the same instant as the last one (batch
        #: arrivals in a discrete-event schedule); folded into the next
        #: nonzero interval's instantaneous rate.
        self._coincident = 0

    @property
    def rate_per_s(self) -> float:
        """Current smoothed arrival-rate estimate (0.0 before data)."""
        return self._rate if self._rate is not None else 0.0

    def observe(self, now: float) -> None:
        """Record one arrival at simulated time ``now``."""
        self.observations += 1
        last = self._last
        if last is None:
            self._last = now
            return
        dt = now - last
        if dt <= 0.0:
            self._coincident += 1
            return
        arrivals = 1 + self._coincident
        self._coincident = 0
        self._last = now
        instantaneous = arrivals / dt
        if self._rate is None:
            self._rate = instantaneous
        else:
            self._rate += self.alpha * (instantaneous - self._rate)

    def target_warm(self, establish_latency_s: float) -> int:
        """Warm QPs to hold ready given the connect-path latency."""
        if establish_latency_s < 0:
            raise ValueError("establish_latency_s must be >= 0")
        in_flight = self.rate_per_s * establish_latency_s * self.safety
        target = int(math.ceil(in_flight))
        return max(self.min_warm, min(self.max_warm, target))

    def snapshot(self) -> dict:
        return {"rate_per_s": self.rate_per_s,
                "observations": self.observations}
