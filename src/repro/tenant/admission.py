"""Token-bucket admission control with bounded, deterministic queueing.

Every request a tenant offers either

* **admits** immediately (a whole token was available),
* **delays** for a computed, deterministic interval (the bucket is in
  deficit but the per-tenant queue has room -- the request's token is
  *reserved* and matures at a known simulation time), or
* **sheds** with a ``retry_after`` hint (the queue is full, or the
  bucket can never produce another token).

The bucket uses continuous lazy refill on simulation time and allows a
bounded deficit: each queued request decrements the level below zero,
reserving the token that the refill stream will mint for it.  The wait
until that token matures is a pure function of the deficit and the
rate, so arrival order fixes service order (FIFO per tenant) and the
whole admission schedule is bit-reproducible from the seed.

Shedding is reject-newest: an arrival that finds ``max_queue`` tokens
already reserved is refused on the spot.  Requests that have been
promised a token are never revoked -- the paper's "never unbounded
queueing" discipline with a deterministic victim choice.
"""

from __future__ import annotations

import math

__all__ = ["ADMIT", "AdmissionController", "DELAY", "SHED", "TokenBucket"]

#: Admission verdicts.
ADMIT = "admit"
DELAY = "delay"
SHED = "shed"


class TokenBucket:
    """A continuous-refill token bucket on simulation time.

    ``rate_per_s`` tokens are minted per simulated second, capped at
    ``burst`` stored tokens.  The level may go negative through
    :meth:`reserve` -- that deficit is the queue of promised tokens.
    """

    __slots__ = ("rate_per_s", "burst", "_level", "_last")

    def __init__(self, env, rate_per_s: float, burst: float):
        if rate_per_s < 0:
            raise ValueError("rate_per_s must be >= 0")
        if burst < 0:
            raise ValueError("burst must be >= 0")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._level = float(burst)
        self._last = env.now

    def refill(self, now: float) -> None:
        if now > self._last:
            if self.rate_per_s > 0.0:
                self._level = min(
                    self.burst,
                    self._level + (now - self._last) * self.rate_per_s)
            self._last = now

    def level(self, now: float) -> float:
        """Current token level (negative = reserved deficit)."""
        self.refill(now)
        return self._level

    @property
    def viable(self) -> bool:
        """Can this bucket *ever* mint a whole token after depletion?

        ``burst < 1`` can never store one; ``rate == 0`` can never
        replace one.  Non-viable buckets shed with ``retry_after=inf``
        once empty instead of promising a token that never matures.
        """
        return self.rate_per_s > 0.0 and self.burst >= 1.0

    def try_take(self, now: float) -> bool:
        """Take one whole token if available right now."""
        self.refill(now)
        if self._level >= 1.0:
            self._level -= 1.0
            return True
        return False

    def reserve(self, now: float) -> float:
        """Take one token on credit; return seconds until it matures.

        The returned wait is exact: after sleeping it, the refill stream
        has minted this reservation's token (all earlier reservations
        included, since each one pushed the level further down).
        """
        self.refill(now)
        self._level -= 1.0
        if self._level >= 0.0:
            return 0.0
        if not self.viable:
            return math.inf
        return -self._level / self.rate_per_s

    def maturity_wait(self, now: float) -> float:
        """Seconds until the *next* reservation's token would mature,
        without reserving it (the shed path's ``retry_after`` hint)."""
        self.refill(now)
        if self._level >= 1.0:
            return 0.0
        if not self.viable:
            return math.inf
        return (1.0 - self._level) / self.rate_per_s


class AdmissionController:
    """Per-tenant admission: one bucket plus a bounded reservation queue."""

    __slots__ = ("env", "bucket", "max_queue", "queued",
                 "admitted", "delayed", "shed")

    def __init__(self, env, rate_per_s: float, burst: float,
                 max_queue: int = 16):
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.env = env
        self.bucket = TokenBucket(env, rate_per_s, burst)
        self.max_queue = max_queue
        #: Reservations currently waiting for their token to mature.
        self.queued = 0
        #: Lifetime verdict counts.
        self.admitted = 0
        self.delayed = 0
        self.shed = 0

    def admit(self) -> tuple[str, float]:
        """Decide one arrival: ``(verdict, seconds)``.

        ``(ADMIT, 0.0)`` -- proceed immediately.
        ``(DELAY, wait)`` -- a token was reserved; the caller must sleep
        ``wait`` seconds, then call :meth:`release` and proceed.
        ``(SHED, retry_after)`` -- rejected; ``retry_after`` is when a
        retry could find queue room (``inf`` for a dead bucket).
        """
        now = self.env.now
        if self.bucket.try_take(now):
            self.admitted += 1
            return ADMIT, 0.0
        retry_after = self.bucket.maturity_wait(now)
        if not self.bucket.viable or self.queued >= self.max_queue:
            self.shed += 1
            return SHED, retry_after
        wait = self.bucket.reserve(now)
        self.queued += 1
        self.delayed += 1
        return DELAY, wait

    def release(self) -> None:
        """A delayed request's token matured; it leaves the queue."""
        if self.queued <= 0:
            raise RuntimeError("release() without a queued reservation")
        self.queued -= 1
