"""SLO classes: named tiers mapped onto the offline model's frontier.

A tenant does not pick an RDMA configuration; it picks a *class*
(``premium`` / ``standard`` / ``scavenger``).  The class's
latency/throughput target is expressed relative to the offline model's
:meth:`~repro.core.modeling.PerfModel.bounds` corners, and
:class:`~repro.core.search.SloSearcher` -- the paper's §5 config-space
search -- resolves it to the cheapest configuration on the Pareto
frontier that satisfies it.  The serving tier then enforces the class
through weighted scheduling: the class weight is the tenant's share of
the shard pool when it is contended, and the searched configuration's
queue depth bounds the tenant's in-flight ops.

Everything here is a pure function of its arguments: the analytic
measurer runs with ``noise=0``, so two calls with the same parameters
produce bit-identical plans (the determinism contract).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PerfPoint, RdmaConfig, Slo
from repro.core.modeling import OfflineModeler, make_analytic_measurer
from repro.core.search import SloSearcher
from repro.core.space import ConfigSpace

__all__ = ["ClassPlan", "SLO_CLASS_WEIGHTS", "plan_slo_classes"]

#: Relative scheduling weight of each class when shards are contended.
SLO_CLASS_WEIGHTS = {"premium": 8, "standard": 4, "scavenger": 1}

#: Where each class sits between the model's (best, worst) latency
#: corners: target = best * (worst/best)**fraction (geometric blend),
#: and the throughput floor interpolates the same way toward the low
#: corner.  Premium hugs the fast corner; scavenger accepts anything.
_CLASS_LATENCY_FRACTION = {"premium": 0.25, "standard": 0.55,
                           "scavenger": 1.0}
_CLASS_THROUGHPUT_FRACTION = {"premium": 0.5, "standard": 0.25,
                              "scavenger": 0.0}


@dataclass(frozen=True)
class ClassPlan:
    """One SLO class resolved to a point on the Pareto frontier."""

    name: str
    #: Scheduling weight across the shared shard pool.
    weight: int
    #: The class's latency/throughput target handed to the searcher.
    slo: Slo
    #: The cheapest configuration satisfying the target.
    config: RdmaConfig
    #: The model's prediction for that configuration -- the per-tenant
    #: latency/throughput budget the isolation benchmark asserts on.
    predicted: PerfPoint

    @property
    def max_inflight(self) -> int:
        """In-flight cap the tier enforces for tenants of this class:
        the searched configuration's aggregate queue depth."""
        return max(1, self.config.queue_depth * self.config.client_threads)


def plan_slo_classes(record_size: int = 64, *,
                     max_client_threads: int = 4,
                     max_queue_depth: int = 8,
                     switch_hops: int = 1,
                     seed: int = 0) -> dict[str, ClassPlan]:
    """Map every SLO class to a searched config + predicted perf point.

    Builds a small offline model (noise-free analytic measurer, so the
    result is deterministic and cheap) over the given config space and
    runs the §5 SLO search once per class.  ``scavenger`` targets the
    worst corner and is always satisfiable; the tighter classes fall
    back to the nearest satisfiable target (latency relaxed toward the
    worst corner) rather than failing the whole plan, mirroring how the
    paper's search degrades an unsatisfiable SLO request.
    """
    space = ConfigSpace(max_client_threads=max_client_threads,
                        record_size=record_size,
                        max_queue_depth=max_queue_depth)
    measurer = make_analytic_measurer(record_size=record_size,
                                      switch_hops=switch_hops,
                                      noise=0.0, seed=seed)
    model, _stats = OfflineModeler(space, measurer,
                                   switch_hops=switch_hops).build()
    best, worst = model.bounds()
    searcher = SloSearcher.for_model(model)

    plans: dict[str, ClassPlan] = {}
    for name in sorted(SLO_CLASS_WEIGHTS):
        latency_fraction = _CLASS_LATENCY_FRACTION[name]
        tput_fraction = _CLASS_THROUGHPUT_FRACTION[name]
        ratio = worst.latency / best.latency
        floor = (worst.throughput
                 + tput_fraction * (best.throughput - worst.throughput))
        config = None
        slo = None
        # Relax latency toward the worst corner until the search
        # succeeds; the worst corner itself is in the model, so the
        # loop terminates with a config for every class.
        while config is None:
            slo = Slo(max_latency=best.latency * ratio ** latency_fraction,
                      min_throughput=floor,
                      record_size=record_size)
            config = searcher.search(slo)
            if config is None:
                if latency_fraction >= 1.0 and floor <= worst.throughput:
                    raise RuntimeError(
                        f"SLO class {name!r}: even the worst corner is "
                        f"unsatisfiable -- degenerate model")
                latency_fraction = min(1.0, latency_fraction + 0.25)
                floor = max(worst.throughput, floor * 0.5)
        plans[name] = ClassPlan(name=name,
                                weight=SLO_CLASS_WEIGHTS[name],
                                slo=slo, config=config,
                                predicted=model.predict(config))
    return plans
